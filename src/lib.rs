//! Umbrella crate re-exporting the SLAP reproduction workspace.
#![warn(missing_docs)]

pub use hypercube_machine as hypercube;
pub use mesh_machine as mesh;
pub use slap_baselines as baselines;
pub use slap_cc as cc;
pub use slap_image as image;
pub use slap_machine as machine;
pub use slap_serve as serve;
pub use slap_unionfind as unionfind;
