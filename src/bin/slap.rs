//! `slap` — command-line front end for the SLAP reproduction.
//!
//! ```text
//! slap gen <workload> <n> [seed]            # write a PBM image to stdout
//! slap label [--uf KIND] [--conn 4|8] [f]   # label a PBM (stdin if omitted)
//!            [--threads N]                  #   N>=1: host engine, N strips
//! slap bench [--uf KIND] <workload> <n>     # step-count one workload
//! slap trace [--pass uf|label] <workload> <n> [seed]
//!                                           # ASCII space-time diagram
//! slap features [--conn 4|8] [file.pbm]     # per-component geometry
//! slap stream [--conn 4|8] [file.pbm]       # streaming label pass: rows in,
//!                                           #   retired components out,
//!                                           #   O(cols + live) memory
//! slap compare <workload> <n> [seed]        # CC vs baselines step counts
//! slap workloads                            # list generator names
//! ```

use slap_repro::baselines::{divide_conquer_labels, naive_slap_labels};
use slap_repro::cc::features::{component_features, euler_number};
use slap_repro::cc::spacetime::left_pass_trace;
use slap_repro::cc::{label_components_kind, label_components_runs, CcOptions};
use slap_repro::hypercube::sv_labels_conn;
use slap_repro::image::{
    fast_labels_conn, gen, parallel_labels_conn, pbm, Bitmap, Connectivity, RetiredComponent,
    RowSource, StreamLabeler,
};
use slap_repro::machine::render_gantt;
use slap_repro::unionfind::{TarjanUf, UfKind};
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rest: Vec<&str> = args.iter().map(String::as_str).collect();
    if rest.is_empty() {
        usage();
    }
    let cmd = rest.remove(0);
    let uf = take_flag(&mut rest, "--uf")
        .map(|v| UfKind::parse(v).unwrap_or_else(|| die(&format!("unknown union-find kind {v:?}"))))
        .unwrap_or(UfKind::Tarjan);
    let conn = take_flag(&mut rest, "--conn")
        .map(|v| {
            Connectivity::parse(v)
                .unwrap_or_else(|| die(&format!("connectivity must be 4 or 8, got {v:?}")))
        })
        .unwrap_or(Connectivity::Four);
    let pass = take_flag(&mut rest, "--pass").unwrap_or("uf");
    // `--threads N` selects the host labeling engine (the strip-parallel
    // fast engine, sequential when N == 1) instead of the SLAP simulation.
    let threads = take_flag(&mut rest, "--threads").map(|v| {
        v.parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| die(&format!("--threads needs a positive integer, got {v:?}")))
    });
    let opts = CcOptions {
        connectivity: conn,
        ..CcOptions::default()
    };
    match cmd {
        "gen" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            pbm::write_plain(&img, std::io::stdout().lock()).expect("write PBM");
        }
        "label" => {
            let img = read_image(&rest);
            match threads {
                Some(t) => host_report(&img, conn, t),
                None => report(&img, uf, &opts),
            }
        }
        "bench" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            report(&img, uf, &opts);
        }
        "trace" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            let tr = left_pass_trace::<TarjanUf>(&img, &opts);
            let (spans, rep, title) = match pass {
                "label" => (&tr.label_spans, &tr.label_report, "Label-Pass (Fig. 6)"),
                _ => (&tr.uf_spans, &tr.uf_report, "Union-Find-Pass (Fig. 5)"),
            };
            println!(
                "{title} on {name} {n}x{n}: makespan {} steps, {} messages",
                rep.makespan, rep.messages
            );
            print!("{}", render_gantt(spans, 100));
        }
        "features" => {
            let img = read_image(&rest);
            let labels = match threads {
                Some(t) if t > 1 => parallel_labels_conn(&img, conn, t),
                _ => fast_labels_conn(&img, conn),
            };
            let run = component_features(&img, &labels, conn);
            let euler = euler_number(&img, conn);
            println!(
                "{} component(s), Euler number {} ({} hole(s)), measured in {} SLAP steps",
                run.per_component.len(),
                euler.euler,
                run.per_component.len() as i64 - euler.euler,
                run.metrics.total_steps
            );
            println!(
                "{:>10} {:>7} {:>12} {:>14} {:>9} {:>8}",
                "label", "area", "bbox", "centroid", "perim", "extent"
            );
            for (label, f) in &run.per_component {
                let (cr, cc) = f.centroid();
                println!(
                    "{label:>10} {:>7} {:>5}x{:<6} ({cr:6.1},{cc:6.1}) {:>9} {:>8.2}",
                    f.area,
                    f.height(),
                    f.width(),
                    f.perimeter,
                    f.extent()
                );
            }
        }
        "stream" => stream_report(&rest, conn),
        "compare" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            let cc = label_components_kind(&img, uf, &opts);
            let runs = label_components_runs::<TarjanUf>(&img, &opts);
            println!("workload {name} {n}x{n} (seed {seed}), union-find {uf}, {conn}");
            println!("{:<28} {:>12} {:>10}", "algorithm", "steps", "PEs");
            println!(
                "{:<28} {:>12} {:>10}",
                "Algorithm CC (pixels)", cc.metrics.total_steps, n
            );
            println!(
                "{:<28} {:>12} {:>10}",
                "Algorithm CC (runs)", runs.metrics.total_steps, n
            );
            if conn == Connectivity::Four {
                let (nl, nr) = naive_slap_labels(&img);
                assert_eq!(nl, cc.labels);
                println!("{:<28} {:>12} {:>10}", "naive label passing", nr.steps, n);
                let (dl, dr) = divide_conquer_labels(&img);
                assert_eq!(dl, cc.labels);
                println!(
                    "{:<28} {:>12} {:>10}",
                    "divide & conquer [2,12]", dr.steps, n
                );
            }
            let (hl, hr) = sv_labels_conn(&img, conn);
            assert_eq!(hl, cc.labels);
            println!(
                "{:<28} {:>12} {:>10}",
                "hypercube S-V [5]-style", hr.rounds, hr.pes
            );
        }
        "workloads" => {
            for w in gen::WORKLOADS {
                println!("{w}");
            }
            eprintln!("\nunion-find kinds for --uf:");
            for k in UfKind::ALL {
                eprintln!("  {k}");
            }
        }
        _ => usage(),
    }
}

fn take_flag<'a>(rest: &mut Vec<&'a str>, flag: &str) -> Option<&'a str> {
    let pos = rest.iter().position(|a| *a == flag)?;
    if pos + 1 >= rest.len() {
        die(&format!("{flag} needs a value"));
    }
    let v = rest[pos + 1];
    rest.drain(pos..=pos + 1);
    Some(v)
}

fn read_image(rest: &[&str]) -> Bitmap {
    match rest.first() {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            pbm::read(f).unwrap_or_else(|e| die(&format!("parse {path}: {e}")))
        }
        None => {
            let mut buf = Vec::new();
            std::io::stdin().read_to_end(&mut buf).expect("read stdin");
            pbm::read(&buf[..]).unwrap_or_else(|e| die(&format!("parse stdin: {e}")))
        }
    }
}

fn parse_workload<'a>(rest: &[&'a str]) -> (&'a str, usize, u64) {
    let name = rest.first().copied().unwrap_or_else(|| usage());
    let n: usize = rest
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die("size must be a positive integer"));
    let seed: u64 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    (name, n, seed)
}

fn make_image(name: &str, n: usize, seed: u64) -> Bitmap {
    gen::by_name(name, n, seed)
        .unwrap_or_else(|| die(&format!("unknown workload {name:?}; try `slap workloads`")))
}

fn report(img: &Bitmap, uf: UfKind, opts: &CcOptions) {
    let run = label_components_kind(img, uf, opts);
    let stats = run.labels.component_stats();
    let m = &run.metrics;
    println!(
        "{}x{} image, {:.1}% foreground, {} component(s) under {}",
        img.rows(),
        img.cols(),
        100.0 * img.density(),
        stats.len(),
        opts.connectivity,
    );
    if let Some(largest) = stats.iter().max_by_key(|s| s.pixels) {
        println!(
            "largest component: label {} with {} px ({}x{} bbox)",
            largest.label,
            largest.pixels,
            largest.height(),
            largest.width()
        );
    }
    println!(
        "SLAP/{uf}: {} steps on {} PEs ({:.1} steps/column); \
         messages: {} union-find + {} label",
        m.total_steps,
        img.cols(),
        m.total_steps as f64 / img.cols() as f64,
        m.left.uf_pass.messages + m.right.uf_pass.messages,
        m.left.label_pass.messages + m.right.label_pass.messages,
    );
}

/// `label --threads N`: labels with the host engine (strip-parallel for
/// N > 1) and reports the components, timing the labeling instead of
/// counting SLAP steps.
fn host_report(img: &Bitmap, conn: Connectivity, threads: usize) {
    let t0 = std::time::Instant::now();
    let labels = if threads > 1 {
        parallel_labels_conn(img, conn, threads)
    } else {
        fast_labels_conn(img, conn)
    };
    let elapsed = t0.elapsed();
    let stats = labels.component_stats();
    println!(
        "{}x{} image, {:.1}% foreground, {} component(s) under {}",
        img.rows(),
        img.cols(),
        100.0 * img.density(),
        stats.len(),
        conn,
    );
    if let Some(largest) = stats.iter().max_by_key(|s| s.pixels) {
        println!(
            "largest component: label {} with {} px ({}x{} bbox)",
            largest.label,
            largest.pixels,
            largest.height(),
            largest.width()
        );
    }
    let engine = if threads > 1 {
        "strip-parallel"
    } else {
        "fast"
    };
    println!(
        "host/{engine}: {} thread(s), {:.3} ms",
        threads,
        elapsed.as_secs_f64() * 1e3
    );
}

/// `stream`: labels a PBM row by row — the image is never materialized and
/// retired components are drained per row into a bounded preview, so
/// arbitrarily tall or component-dense files and pipes really do run in
/// `O(cols + live components)` memory.
fn stream_report(rest: &[&str], conn: Connectivity) {
    /// Components listed in the report table.
    const LISTED: usize = 32;

    /// Streams from an already-opened reader (file or stdin).
    fn run<R: std::io::Read>(r: R, conn: Connectivity, what: &str) {
        let mut reader =
            pbm::PbmRowReader::new(r).unwrap_or_else(|e| die(&format!("parse {what}: {e}")));
        let rows = reader.rows();
        let mut labeler = StreamLabeler::new(reader.cols(), conn);
        let mut words = Vec::new();
        let mut total: u64 = 0;
        // The LISTED smallest records by label order; trimmed whenever the
        // buffer doubles, so memory never scales with the component count.
        let mut preview: Vec<RetiredComponent> = Vec::new();
        let t0 = std::time::Instant::now();
        loop {
            match reader.next_row(&mut words) {
                Ok(true) => {
                    labeler.push_row(&words);
                    for rec in labeler.drain_retired() {
                        total += 1;
                        preview.push(rec);
                    }
                    if preview.len() > 2 * LISTED {
                        preview.sort_unstable();
                        preview.truncate(LISTED);
                    }
                }
                Ok(false) => break,
                Err(e) => die(&format!("read {what}: {e}")),
            }
        }
        let stats = labeler.finish();
        for rec in labeler.drain_retired() {
            total += 1;
            preview.push(rec);
        }
        let elapsed = t0.elapsed();
        println!(
            "{}x{} image, {:.1}% foreground, {total} component(s) under {conn}",
            stats.rows,
            stats.cols,
            100.0 * stats.pixels as f64 / (stats.rows as f64 * stats.cols as f64).max(1.0),
        );
        println!(
            "stream engine: peak frontier {} run(s), {} live node(s); \
             {} rows in {:.3} ms ({:.0} rows/s)",
            stats.peak_frontier_runs,
            stats.peak_nodes,
            stats.rows,
            elapsed.as_secs_f64() * 1e3,
            stats.rows as f64 / elapsed.as_secs_f64().max(1e-9),
        );
        preview.sort_unstable();
        preview.truncate(LISTED);
        println!(
            "{:>10} {:>7} {:>12} {:>14} {:>9}",
            "label", "area", "bbox", "centroid", "perim"
        );
        for rec in &preview {
            let (cr, cc) = rec.centroid();
            println!(
                "{:>10} {:>7} {:>5}x{:<6} ({cr:6.1},{cc:6.1}) {:>9}",
                rec.label(rows),
                rec.area,
                rec.height(),
                rec.width(),
                rec.perimeter,
            );
        }
        if total > preview.len() as u64 {
            println!("  ... and {} more", total - preview.len() as u64);
        }
    }
    match rest.first() {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            run(f, conn, path);
        }
        None => run(std::io::stdin().lock(), conn, "stdin"),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  slap gen <workload> <n> [seed]\n  slap label [--uf KIND] [--conn 4|8] [--threads N] [file.pbm]\n  \
         slap bench [--uf KIND] [--conn 4|8] <workload> <n> [seed]\n  \
         slap trace [--pass uf|label] <workload> <n> [seed]\n  \
         slap features [--conn 4|8] [--threads N] [file.pbm]\n  \
         slap stream [--conn 4|8] [file.pbm]\n  \
         slap compare [--uf KIND] [--conn 4|8] <workload> <n> [seed]\n  slap workloads"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
