//! `slap` — command-line front end for the SLAP reproduction.
//!
//! ```text
//! slap gen <workload> <n> [seed]            # write a PBM image to stdout
//! slap label [--uf KIND] [--conn 4|8] [f]   # label a PBM (stdin if omitted)
//!            [--engine E] [--threads N]     #   host engine E from the
//!            [--tiles RxC]                  #   registry (default: the
//!                                           #   simulated SLAP Algorithm CC);
//!                                           #   --tiles shapes (and implies)
//!                                           #   the tiled engine
//! slap label --out-of-core [--band-rows N]  # stream a PBM taller than
//!            [--tiles RxC] [--conn 4|8] [f] #   memory band by band through
//!                                           #   the tiled engine,
//!                                           #   O(cols + live) carried state
//! slap bench [--uf KIND] <workload> <n>     # step-count one workload
//! slap trace [--pass uf|label] <workload> <n> [seed]
//!                                           # ASCII space-time diagram
//! slap features [--conn 4|8] [--engine E]   # per-component geometry via any
//!               [--threads N] [file.pbm]    #   registered engine
//! slap stream [--conn 4|8] [--framed] [f]   # streaming label pass: rows in,
//!                                           #   retired components out,
//!                                           #   O(cols + live) memory;
//!                                           #   --framed: length-prefixed
//!                                           #   multi-image P4 ingest
//! slap compare <workload> <n> [seed]        # CC vs baselines step counts
//! slap serve [--addr H:P] [--conn 4|8]      # slapd: fault-tolerant TCP
//!            [--workers N] [--queue-cap N]  #   labeling service; bounded
//!            [--queue-budget-mb N]          #   queue, deadlines, panic
//!            [--max-dim N] [--max-pixels N] #   isolation; readiness-based
//!            [--max-stream-pixels N]        #   conns; frames past
//!            [--ooc-band-rows N]            #   --max-pixels stream
//!            [--deadline-ms N] [--threads N]#   out-of-core; SIGINT/SIGTERM
//!            [--io-timeout-ms N]            #   drains and prints stats
//! slap client [--addr H:P] [--attempts N]   # submit PBM jobs to slapd with
//!             [--base-delay-ms N]           #   retry/backoff (stdin if no
//!             [--stream] [f ...]            #   files); --stream: protocol
//!                                           #   v2 feature records, no grid
//! slap workloads                            # list generators + engines
//! ```
//!
//! Host-engine dispatch goes through `slap_cc::engine::registry()`: the
//! `--engine` flag names a registered [`EngineKind`], and this binary holds
//! no per-engine code of its own.

use slap_repro::baselines::{divide_conquer_labels, naive_slap_labels};
use slap_repro::cc::engine::{registry, EngineKind, LabelEngine};
use slap_repro::cc::features::{euler_number, features_with_engine};
use slap_repro::cc::spacetime::left_pass_trace;
use slap_repro::cc::{label_components_kind, label_components_runs, CcOptions};
use slap_repro::hypercube::sv_labels_conn;
use slap_repro::image::{
    gen, label_out_of_core, pbm, Bitmap, Connectivity, LabelGrid, RetiredComponent, RowSource,
    StreamLabeler,
};
use slap_repro::machine::render_gantt;
use slap_repro::serve::{Client, ClientError, RetryPolicy, ServeConfig, Server};
use slap_repro::unionfind::{TarjanUf, UfKind};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rest: Vec<&str> = args.iter().map(String::as_str).collect();
    if rest.is_empty() {
        usage();
    }
    let cmd = rest.remove(0);
    let uf = take_flag(&mut rest, "--uf")
        .map(|v| UfKind::parse(v).unwrap_or_else(|| die(&format!("unknown union-find kind {v:?}"))))
        .unwrap_or(UfKind::Tarjan);
    let conn = take_flag(&mut rest, "--conn")
        .map(|v| {
            Connectivity::parse(v)
                .unwrap_or_else(|| die(&format!("connectivity must be 4 or 8, got {v:?}")))
        })
        .unwrap_or(Connectivity::Four);
    let pass = take_flag(&mut rest, "--pass").unwrap_or("uf");
    // `--engine KIND` selects a host labeling engine from the registry;
    // `--threads N` sizes the multithreaded ones (and, alone, still implies
    // the strip-parallel engine for back-compatibility).
    let engine = take_flag(&mut rest, "--engine").map(|v| {
        EngineKind::parse(v).unwrap_or_else(|| {
            let names: Vec<&str> = registry().iter().map(|e| e.kind.name()).collect();
            die(&format!(
                "unknown engine {v:?}; registered engines: {}",
                names.join(", ")
            ))
        })
    });
    let threads = take_flag(&mut rest, "--threads").map(|v| {
        v.parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| die(&format!("--threads needs a positive integer, got {v:?}")))
    });
    // `--tiles RxC` shapes the tiled engine's grid (R bands of C tile
    // columns) and, alone, implies `--engine tiled`.
    let tiles = take_flag(&mut rest, "--tiles").map(|v| {
        let (r, c) = v
            .split_once(['x', 'X'])
            .and_then(|(r, c)| Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?)))
            .filter(|&(r, c)| r >= 1 && c >= 1)
            .unwrap_or_else(|| die(&format!("--tiles needs RxC (e.g. 2x2), got {v:?}")));
        (r, c)
    });
    let engine = match (engine, tiles) {
        (Some(EngineKind::Tiled { .. }) | None, Some((tiles_y, tiles_x))) => {
            Some(EngineKind::Tiled { tiles_x, tiles_y })
        }
        (Some(kind), Some(_)) => die(&format!(
            "--tiles only applies to the tiled engine, not {kind}"
        )),
        (engine, None) => engine,
    };
    let out_of_core = take_toggle(&mut rest, "--out-of-core");
    let band_rows = take_flag(&mut rest, "--band-rows")
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| die(&format!("--band-rows needs a positive integer, got {v:?}")))
        })
        .unwrap_or(512);
    let framed = take_toggle(&mut rest, "--framed");
    let opts = CcOptions {
        connectivity: conn,
        ..CcOptions::default()
    };
    match cmd {
        "gen" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            pbm::write_plain(&img, std::io::stdout().lock()).expect("write PBM");
        }
        "label" if out_of_core => {
            // Out-of-core never materializes the frame, so whole-frame
            // engines cannot serve it; the band scheduler *is* the engine.
            if let Some(kind) = engine.filter(|&k| !matches!(k, EngineKind::Tiled { .. })) {
                die(&format!(
                    "--out-of-core streams bands through the tiled engine; \
                     `--engine {kind}` would need the whole frame in memory"
                ));
            }
            let tiles_x = tiles.map_or(1, |(_, c)| c);
            ooc_report(&rest, conn, band_rows, tiles_x);
        }
        "label" => {
            let img = read_image(&rest);
            match pick_session(engine, threads) {
                Some(session) => host_report(&img, conn, session),
                None => report(&img, uf, &opts),
            }
        }
        "bench" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            report(&img, uf, &opts);
        }
        "trace" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            let tr = left_pass_trace::<TarjanUf>(&img, &opts);
            let (spans, rep, title) = match pass {
                "label" => (&tr.label_spans, &tr.label_report, "Label-Pass (Fig. 6)"),
                _ => (&tr.uf_spans, &tr.uf_report, "Union-Find-Pass (Fig. 5)"),
            };
            println!(
                "{title} on {name} {n}x{n}: makespan {} steps, {} messages",
                rep.makespan, rep.messages
            );
            print!("{}", render_gantt(spans, 100));
        }
        "features" => {
            let img = read_image(&rest);
            // Feature extraction labels with any registered engine (default:
            // fast) — bit-identity makes the choice invisible in the output.
            let mut session =
                pick_session(engine, threads).unwrap_or_else(|| EngineKind::Fast.session(1));
            let mut labels = LabelGrid::new_background(1, 1);
            let run = features_with_engine(&img, conn, session.as_mut(), &mut labels);
            let euler = euler_number(&img, conn);
            println!(
                "{} component(s), Euler number {} ({} hole(s)), measured in {} SLAP steps",
                run.per_component.len(),
                euler.euler,
                run.per_component.len() as i64 - euler.euler,
                run.metrics.total_steps
            );
            println!(
                "{:>10} {:>7} {:>12} {:>14} {:>9} {:>8}",
                "label", "area", "bbox", "centroid", "perim", "extent"
            );
            for (label, f) in &run.per_component {
                let (cr, cc) = f.centroid();
                println!(
                    "{label:>10} {:>7} {:>5}x{:<6} ({cr:6.1},{cc:6.1}) {:>9} {:>8.2}",
                    f.area,
                    f.height(),
                    f.width(),
                    f.perimeter,
                    f.extent()
                );
            }
        }
        "stream" => {
            // The stream subcommand *is* the streaming engine; any other
            // `--engine` would have to materialize the frame, breaking the
            // O(cols + live) contract this path exists for.
            if let Some(kind) = engine.filter(|&k| k != EngineKind::Stream) {
                die(&format!(
                    "slap stream runs the streaming engine; `--engine {kind}` would \
                     need the whole frame in memory (use `slap label --engine {kind}`)"
                ));
            }
            if framed {
                framed_stream_report(&rest, conn);
            } else {
                stream_report(&rest, conn);
            }
        }
        "compare" => {
            let (name, n, seed) = parse_workload(&rest);
            let img = make_image(name, n, seed);
            let cc = label_components_kind(&img, uf, &opts);
            let runs = label_components_runs::<TarjanUf>(&img, &opts);
            println!("workload {name} {n}x{n} (seed {seed}), union-find {uf}, {conn}");
            println!("{:<28} {:>12} {:>10}", "algorithm", "steps", "PEs");
            println!(
                "{:<28} {:>12} {:>10}",
                "Algorithm CC (pixels)", cc.metrics.total_steps, n
            );
            println!(
                "{:<28} {:>12} {:>10}",
                "Algorithm CC (runs)", runs.metrics.total_steps, n
            );
            if conn == Connectivity::Four {
                let (nl, nr) = naive_slap_labels(&img);
                assert_eq!(nl, cc.labels);
                println!("{:<28} {:>12} {:>10}", "naive label passing", nr.steps, n);
                let (dl, dr) = divide_conquer_labels(&img);
                assert_eq!(dl, cc.labels);
                println!(
                    "{:<28} {:>12} {:>10}",
                    "divide & conquer [2,12]", dr.steps, n
                );
            }
            let (hl, hr) = sv_labels_conn(&img, conn);
            assert_eq!(hl, cc.labels);
            println!(
                "{:<28} {:>12} {:>10}",
                "hypercube S-V [5]-style", hr.rounds, hr.pes
            );
        }
        "serve" => serve_cmd(&mut rest, conn, threads),
        "client" => client_cmd(&mut rest),
        "workloads" => {
            for w in gen::WORKLOADS {
                println!("{w}");
            }
            eprintln!("\nunion-find kinds for --uf:");
            for k in UfKind::ALL {
                eprintln!("  {k}");
            }
            eprintln!("\nhost engines for --engine:");
            for info in registry() {
                eprintln!("  {:<9} {}", info.kind.name(), info.description);
            }
        }
        _ => usage(),
    }
}

/// Parses a required-positive-integer flag value.
fn take_num<T: std::str::FromStr + PartialOrd + From<u8>>(
    rest: &mut Vec<&str>,
    flag: &str,
) -> Option<T> {
    take_flag(rest, flag).map(|v| {
        v.parse::<T>()
            .ok()
            .filter(|n| *n >= T::from(1u8))
            .unwrap_or_else(|| die(&format!("{flag} needs a positive integer, got {v:?}")))
    })
}

/// Arms SIGINT/SIGTERM to request a graceful drain. Returns the flag the
/// serve loop polls. Uses the raw C `signal(2)` entry point (libc is
/// always linked by std on this target) so the binary stays free of
/// external crates.
fn arm_drain_signals() -> &'static AtomicBool {
    static DRAIN: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_sig: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    &DRAIN
}

/// `slap serve`: runs slapd until SIGINT/SIGTERM, then drains gracefully
/// (stop accepting, finish in-flight jobs) and prints the final stats.
fn serve_cmd(rest: &mut Vec<&str>, conn: Connectivity, threads: Option<usize>) {
    let addr = take_flag(rest, "--addr").unwrap_or("127.0.0.1:7154");
    let mut cfg = ServeConfig {
        conn,
        ..ServeConfig::default()
    };
    if let Some(t) = threads {
        cfg.engine_threads = t;
    }
    if let Some(n) = take_num::<usize>(rest, "--workers") {
        cfg.workers = n;
    }
    if let Some(n) = take_num::<usize>(rest, "--queue-cap") {
        cfg.queue_cap = n;
    }
    if let Some(n) = take_num::<usize>(rest, "--queue-budget-mb") {
        cfg.queue_budget_bytes = n << 20;
    }
    if let Some(n) = take_num::<usize>(rest, "--max-dim") {
        cfg.max_dim = n;
    }
    if let Some(n) = take_num::<u64>(rest, "--max-pixels") {
        cfg.max_pixels = n;
    }
    if let Some(n) = take_num::<u64>(rest, "--max-stream-pixels") {
        cfg.max_stream_pixels = n;
    }
    if let Some(n) = take_num::<usize>(rest, "--ooc-band-rows") {
        cfg.ooc_band_rows = n;
    }
    if let Some(ms) = take_num::<u64>(rest, "--deadline-ms") {
        cfg.deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = take_num::<u64>(rest, "--io-timeout-ms") {
        cfg.io_timeout = std::time::Duration::from_millis(ms);
    }
    if !rest.is_empty() {
        die(&format!(
            "serve does not take positional arguments: {rest:?}"
        ));
    }
    let drain = arm_drain_signals();
    let server =
        Server::bind(addr, cfg.clone()).unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    eprintln!(
        "slapd listening on {} ({} worker(s), queue {} job(s) / {} MiB, \
         deadline {} ms, {conn}); SIGINT/SIGTERM drains",
        server.local_addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.queue_budget_bytes >> 20,
        cfg.deadline.as_millis(),
    );
    while !drain.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("slapd draining: no new connections, finishing in-flight jobs...");
    let stats = server.shutdown();
    eprintln!(
        "slapd drained. {} connection(s), {} job(s) ok ({} streamed, {} \
         out-of-core, peak {} carried run(s)), {} rejection(s) \
         [bad-frame {}, too-large {}, overflow {}, queue-full {}, deadline {}, \
         panic {}, shutdown {}], {} io error(s), {} session rebuild(s), \
         peak queue {} job(s) / {} byte(s)",
        stats.connections,
        stats.jobs_ok,
        stats.jobs_streamed,
        stats.jobs_ooc,
        stats.peak_carried_runs,
        stats.rejected(),
        stats.bad_frame,
        stats.too_large,
        stats.overflow,
        stats.queue_full,
        stats.deadline_expired,
        stats.panics,
        stats.shutdown_rejects,
        stats.io_errors,
        stats.sessions_rebuilt,
        stats.peak_queue_depth,
        stats.peak_queue_bytes,
    );
}

/// `slap client`: submits each PBM (stdin when no files are given) to a
/// running slapd with retry/backoff, printing one summary line per job.
/// With `--stream` the job is submitted in protocol-v2 stream mode and
/// the per-component feature records are summarized instead of the grid.
fn client_cmd(rest: &mut Vec<&str>) {
    let addr_str = take_flag(rest, "--addr").unwrap_or("127.0.0.1:7154");
    let stream_mode = take_toggle(rest, "--stream");
    let addr = std::net::ToSocketAddrs::to_socket_addrs(addr_str)
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| die(&format!("cannot resolve {addr_str:?}")));
    let mut policy = RetryPolicy::default();
    if let Some(n) = take_num::<u32>(rest, "--attempts") {
        policy.max_attempts = n;
    }
    if let Some(ms) = take_num::<u64>(rest, "--base-delay-ms") {
        policy.base_delay = std::time::Duration::from_millis(ms);
    }
    let mut client = Client::with_policy(addr, policy);
    let jobs: Vec<(String, Bitmap)> = if rest.is_empty() {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf).expect("read stdin");
        let img = pbm::read(&buf[..]).unwrap_or_else(|e| die(&format!("parse stdin: {e}")));
        vec![("stdin".to_string(), img)]
    } else {
        rest.iter()
            .map(|path| {
                let f =
                    std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
                let img = pbm::read(f).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
                (path.to_string(), img)
            })
            .collect()
    };
    let mut failed = false;
    for (name, img) in &jobs {
        let t0 = std::time::Instant::now();
        let outcome = if stream_mode {
            client.label_stream(img).map(|ok| {
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                println!(
                    "{name}: {}x{}, {} component(s) streamed, {ms:.3} ms \
                     ({} retry(ies) so far)",
                    ok.rows,
                    ok.cols,
                    ok.components,
                    client.retries(),
                );
                for rec in &ok.records {
                    println!(
                        "  label {}: area {}, bbox [{}..{}]x[{}..{}], \
                         perimeter {}",
                        rec.label(ok.rows),
                        rec.area,
                        rec.min_row,
                        rec.max_row,
                        rec.min_col,
                        rec.max_col,
                        rec.perimeter,
                    );
                }
            })
        } else {
            client.label(img).map(|ok| {
                println!(
                    "{name}: {}x{}, {} component(s), {:.3} ms ({} retry(ies) so far)",
                    ok.rows,
                    ok.cols,
                    ok.components,
                    t0.elapsed().as_secs_f64() * 1e3,
                    client.retries(),
                )
            })
        };
        match outcome {
            Ok(()) => {}
            Err(ClientError::Rejected { code, detail }) => {
                eprintln!("{name}: rejected ({code}): {detail}");
                failed = true;
            }
            Err(e) => {
                eprintln!("{name}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn take_flag<'a>(rest: &mut Vec<&'a str>, flag: &str) -> Option<&'a str> {
    let pos = rest.iter().position(|a| *a == flag)?;
    if pos + 1 >= rest.len() {
        die(&format!("{flag} needs a value"));
    }
    let v = rest[pos + 1];
    rest.drain(pos..=pos + 1);
    Some(v)
}

/// Removes a value-less toggle flag, reporting whether it was present.
fn take_toggle(rest: &mut Vec<&str>, flag: &str) -> bool {
    match rest.iter().position(|a| *a == flag) {
        Some(pos) => {
            rest.remove(pos);
            true
        }
        None => false,
    }
}

/// Resolves the host-engine session requested by `--engine` / `--threads`:
/// an explicit `--engine` wins, a bare `--threads N` keeps selecting the
/// strip-parallel engine (the pre-registry spelling), and `None` means the
/// caller's default (the SLAP simulation for `label`, the fast engine for
/// `features`). Multithreaded engines default to the host's available
/// parallelism when `--threads` is omitted.
fn pick_session(
    engine: Option<EngineKind>,
    threads: Option<usize>,
) -> Option<Box<dyn LabelEngine>> {
    let kind = engine.or(threads.map(|_| EngineKind::Parallel))?;
    let threads = threads.unwrap_or_else(|| {
        if kind.info().multithreaded {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            1
        }
    });
    Some(kind.session(threads))
}

fn read_image(rest: &[&str]) -> Bitmap {
    match rest.first() {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            pbm::read(f).unwrap_or_else(|e| die(&format!("parse {path}: {e}")))
        }
        None => {
            let mut buf = Vec::new();
            std::io::stdin().read_to_end(&mut buf).expect("read stdin");
            pbm::read(&buf[..]).unwrap_or_else(|e| die(&format!("parse stdin: {e}")))
        }
    }
}

fn parse_workload<'a>(rest: &[&'a str]) -> (&'a str, usize, u64) {
    let name = rest.first().copied().unwrap_or_else(|| usage());
    let n: usize = rest
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die("size must be a positive integer"));
    let seed: u64 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);
    (name, n, seed)
}

fn make_image(name: &str, n: usize, seed: u64) -> Bitmap {
    gen::by_name(name, n, seed)
        .unwrap_or_else(|| die(&format!("unknown workload {name:?}; try `slap workloads`")))
}

fn report(img: &Bitmap, uf: UfKind, opts: &CcOptions) {
    let run = label_components_kind(img, uf, opts);
    let stats = run.labels.component_stats();
    let m = &run.metrics;
    println!(
        "{}x{} image, {:.1}% foreground, {} component(s) under {}",
        img.rows(),
        img.cols(),
        100.0 * img.density(),
        stats.len(),
        opts.connectivity,
    );
    if let Some(largest) = stats.iter().max_by_key(|s| s.pixels) {
        println!(
            "largest component: label {} with {} px ({}x{} bbox)",
            largest.label,
            largest.pixels,
            largest.height(),
            largest.width()
        );
    }
    println!(
        "SLAP/{uf}: {} steps on {} PEs ({:.1} steps/column); \
         messages: {} union-find + {} label",
        m.total_steps,
        img.cols(),
        m.total_steps as f64 / img.cols() as f64,
        m.left.uf_pass.messages + m.right.uf_pass.messages,
        m.left.label_pass.messages + m.right.label_pass.messages,
    );
}

/// `label --engine E [--threads N]`: labels with a registered host engine
/// session and reports the components, timing the labeling instead of
/// counting SLAP steps.
fn host_report(img: &Bitmap, conn: Connectivity, mut session: Box<dyn LabelEngine>) {
    let mut labels = LabelGrid::new_background(1, 1);
    let t0 = std::time::Instant::now();
    let engine_stats = session.label_into(img, conn, &mut labels);
    let elapsed = t0.elapsed();
    let stats = labels.component_stats();
    println!(
        "{}x{} image, {:.1}% foreground, {} component(s) under {}",
        img.rows(),
        img.cols(),
        100.0 * img.density(),
        stats.len(),
        conn,
    );
    if let Some(largest) = stats.iter().max_by_key(|s| s.pixels) {
        println!(
            "largest component: label {} with {} px ({}x{} bbox)",
            largest.label,
            largest.pixels,
            largest.height(),
            largest.width()
        );
    }
    print!(
        "host/{}: {} thread(s), {:.3} ms",
        session.kind(),
        engine_stats.threads,
        elapsed.as_secs_f64() * 1e3
    );
    if engine_stats.runs > 0 {
        print!(", {} run(s)", engine_stats.runs);
    }
    if engine_stats.peak_frontier_runs > 0 {
        print!(", peak frontier {}", engine_stats.peak_frontier_runs);
    }
    if engine_stats.peak_carried_runs > 0 {
        print!(", peak carried {}", engine_stats.peak_carried_runs);
    }
    let tiles = engine_stats.tiles;
    if tiles.total() > 0 {
        print!(
            ", tiles {}bg/{}int/{}bd",
            tiles.background, tiles.interior, tiles.boundary
        );
    }
    if engine_stats.iterations > 0 {
        print!(
            ", {} iteration(s), {} reduction pass(es)",
            engine_stats.iterations, engine_stats.reduction_passes
        );
    }
    println!();
}

/// `label --out-of-core`: streams a PBM through the band-of-tiles scheduler
/// ([`label_out_of_core`]) — one band of rows resident at a time, carried
/// seam state `O(cols + live components)` — and reports the retired
/// components exactly like the whole-frame path would.
fn ooc_report(rest: &[&str], conn: Connectivity, band_rows: usize, tiles_x: usize) {
    /// Components listed in the report table.
    const LISTED: usize = 32;

    fn run<R: Read>(r: R, conn: Connectivity, band_rows: usize, tiles_x: usize, what: &str) {
        let mut reader =
            pbm::PbmRowReader::new(r).unwrap_or_else(|e| die(&format!("parse {what}: {e}")));
        let t0 = std::time::Instant::now();
        let run = label_out_of_core(&mut reader, conn, band_rows, tiles_x)
            .unwrap_or_else(|e| die(&format!("read {what}: {e}")));
        let elapsed = t0.elapsed();
        let s = &run.stats;
        println!(
            "{}x{} image, {:.1}% foreground, {} component(s) under {conn}",
            s.rows,
            s.cols,
            100.0 * s.pixels as f64 / (s.rows as f64 * s.cols as f64).max(1.0),
            s.retired,
        );
        println!(
            "out-of-core tiled engine: {} band(s) of {} row(s) x {tiles_x} tile column(s); \
             peak carried {} run(s), {} live component(s), {} band run(s); \
             {:.3} ms ({:.0} rows/s)",
            s.bands,
            s.band_rows,
            s.peak_carried_runs,
            s.peak_live_slots,
            s.peak_band_runs,
            elapsed.as_secs_f64() * 1e3,
            s.rows as f64 / elapsed.as_secs_f64().max(1e-9),
        );
        let mut preview = run.components;
        preview.sort_unstable();
        println!(
            "{:>10} {:>7} {:>12} {:>14} {:>9}",
            "label", "area", "bbox", "centroid", "perim"
        );
        for rec in preview.iter().take(LISTED) {
            let (cr, cc) = rec.centroid();
            println!(
                "{:>10} {:>7} {:>5}x{:<6} ({cr:6.1},{cc:6.1}) {:>9}",
                rec.label(s.rows as usize),
                rec.area,
                rec.height(),
                rec.width(),
                rec.perimeter,
            );
        }
        if preview.len() > LISTED {
            println!("  ... and {} more", preview.len() - LISTED);
        }
    }
    match rest.first() {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            run(f, conn, band_rows, tiles_x, path);
        }
        None => run(std::io::stdin().lock(), conn, band_rows, tiles_x, "stdin"),
    }
}

/// `stream --framed`: consumes a length-prefixed multi-image P4 stream
/// ([`pbm::FramedPbmReader`]), relabeling frame after frame through **one**
/// warm [`StreamLabeler`] session (arenas reused across frames, dimensions
/// free to change) — the video-style continuous-ingest mode.
fn framed_stream_report(rest: &[&str], conn: Connectivity) {
    fn run<R: Read>(r: R, conn: Connectivity, what: &str) {
        let mut frames = pbm::FramedPbmReader::new(r);
        let mut labeler = StreamLabeler::new(0, conn);
        let mut words = Vec::new();
        let mut index = 0u64;
        let t0 = std::time::Instant::now();
        loop {
            let mut frame = match frames.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(e) => die(&format!("read {what}: {e}")),
            };
            index += 1;
            labeler.reset(frame.cols(), conn);
            loop {
                match frame.next_row(&mut words) {
                    Ok(true) => labeler.push_row(&words),
                    Ok(false) => break,
                    Err(e) => die(&format!("read {what} frame {index}: {e}")),
                }
            }
            let stats = labeler.finish();
            let components = labeler.drain_retired().count();
            println!(
                "frame {index}: {}x{}, {} component(s), {} px, peak frontier {} run(s)",
                stats.rows, stats.cols, components, stats.pixels, stats.peak_frontier_runs,
            );
        }
        let elapsed = t0.elapsed();
        println!(
            "{index} frame(s) under {conn} in {:.3} ms (one warm stream session, \
             O(cols + live) memory)",
            elapsed.as_secs_f64() * 1e3
        );
    }
    match rest.first() {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            run(f, conn, path);
        }
        None => run(std::io::stdin().lock(), conn, "stdin"),
    }
}

/// `stream`: labels a PBM row by row — the image is never materialized and
/// retired components are drained per row into a bounded preview, so
/// arbitrarily tall or component-dense files and pipes really do run in
/// `O(cols + live components)` memory.
fn stream_report(rest: &[&str], conn: Connectivity) {
    /// Components listed in the report table.
    const LISTED: usize = 32;

    /// Streams from an already-opened reader (file or stdin).
    fn run<R: std::io::Read>(r: R, conn: Connectivity, what: &str) {
        let mut reader =
            pbm::PbmRowReader::new(r).unwrap_or_else(|e| die(&format!("parse {what}: {e}")));
        let rows = reader.rows();
        let mut labeler = StreamLabeler::new(reader.cols(), conn);
        let mut words = Vec::new();
        let mut total: u64 = 0;
        // The LISTED smallest records by label order; trimmed whenever the
        // buffer doubles, so memory never scales with the component count.
        let mut preview: Vec<RetiredComponent> = Vec::new();
        let t0 = std::time::Instant::now();
        loop {
            match reader.next_row(&mut words) {
                Ok(true) => {
                    labeler.push_row(&words);
                    for rec in labeler.drain_retired() {
                        total += 1;
                        preview.push(rec);
                    }
                    if preview.len() > 2 * LISTED {
                        preview.sort_unstable();
                        preview.truncate(LISTED);
                    }
                }
                Ok(false) => break,
                Err(e) => die(&format!("read {what}: {e}")),
            }
        }
        let stats = labeler.finish();
        for rec in labeler.drain_retired() {
            total += 1;
            preview.push(rec);
        }
        let elapsed = t0.elapsed();
        println!(
            "{}x{} image, {:.1}% foreground, {total} component(s) under {conn}",
            stats.rows,
            stats.cols,
            100.0 * stats.pixels as f64 / (stats.rows as f64 * stats.cols as f64).max(1.0),
        );
        println!(
            "stream engine: peak frontier {} run(s), {} live node(s); \
             {} rows in {:.3} ms ({:.0} rows/s)",
            stats.peak_frontier_runs,
            stats.peak_nodes,
            stats.rows,
            elapsed.as_secs_f64() * 1e3,
            stats.rows as f64 / elapsed.as_secs_f64().max(1e-9),
        );
        preview.sort_unstable();
        preview.truncate(LISTED);
        println!(
            "{:>10} {:>7} {:>12} {:>14} {:>9}",
            "label", "area", "bbox", "centroid", "perim"
        );
        for rec in &preview {
            let (cr, cc) = rec.centroid();
            println!(
                "{:>10} {:>7} {:>5}x{:<6} ({cr:6.1},{cc:6.1}) {:>9}",
                rec.label(rows),
                rec.area,
                rec.height(),
                rec.width(),
                rec.perimeter,
            );
        }
        if total > preview.len() as u64 {
            println!("  ... and {} more", total - preview.len() as u64);
        }
    }
    match rest.first() {
        Some(path) => {
            let f = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
            run(f, conn, path);
        }
        None => run(std::io::stdin().lock(), conn, "stdin"),
    }
}

fn usage() -> ! {
    let engines: Vec<&str> = registry().iter().map(|e| e.kind.name()).collect();
    eprintln!(
        "usage:\n  slap gen <workload> <n> [seed]\n  \
         slap label [--uf KIND] [--conn 4|8] [--engine E] [--threads N] [--tiles RxC] [file.pbm]\n  \
         slap label --out-of-core [--band-rows N] [--tiles RxC] [--conn 4|8] [file.pbm]\n  \
         slap bench [--uf KIND] [--conn 4|8] <workload> <n> [seed]\n  \
         slap trace [--pass uf|label] <workload> <n> [seed]\n  \
         slap features [--conn 4|8] [--engine E] [--threads N] [file.pbm]\n  \
         slap stream [--conn 4|8] [--framed] [file.pbm]\n  \
         slap compare [--uf KIND] [--conn 4|8] <workload> <n> [seed]\n  \
         slap serve [--addr H:P] [--conn 4|8] [--workers N] [--queue-cap N] [--queue-budget-mb N]\n             \
         [--max-dim N] [--max-pixels N] [--max-stream-pixels N] [--ooc-band-rows N]\n             \
         [--deadline-ms N] [--io-timeout-ms N] [--threads N]\n  \
         slap client [--addr H:P] [--stream] [--attempts N] [--base-delay-ms N] [file.pbm ...]\n  \
         slap workloads\n\
         (--engine: one of {}; see `slap workloads`)",
        engines.join("|")
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
