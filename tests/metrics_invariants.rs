//! Invariants of the step accounting — the quantities every experiment
//! reads must be internally consistent and ordered the way the paper's
//! theory says.

use slap_repro::baselines::{divide_conquer_labels, naive_slap_labels};
use slap_repro::cc::bitserial::label_components_bitserial;
use slap_repro::cc::{label_components_kind, CcOptions};
use slap_repro::image::gen;
use slap_repro::unionfind::UfKind;

#[test]
fn makespan_bounds_every_pe_finish() {
    let img = gen::uniform_random(48, 48, 0.5, 1);
    let run = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
    for pass in [&run.metrics.left, &run.metrics.right] {
        for report in [&pass.uf_pass, &pass.label_pass] {
            let max = report.per_pe.iter().map(|p| p.finish).max().unwrap();
            assert_eq!(report.makespan, max);
            for p in &report.per_pe {
                assert!(p.finish >= p.busy, "finish below busy time");
                assert!(p.idle_used <= p.idle, "used more idle than available");
            }
        }
    }
}

#[test]
fn sent_equals_received_shifted_by_one_pe() {
    let img = gen::by_name("fig3a", 40, 1).unwrap();
    let run = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
    for pass in [&run.metrics.left, &run.metrics.right] {
        for report in [&pass.uf_pass, &pass.label_pass] {
            let n = report.per_pe.len();
            // last PE's sends leave the array; everyone else's arrive intact
            for i in 0..n - 1 {
                assert_eq!(
                    report.per_pe[i].sent,
                    report.per_pe[i + 1].received,
                    "link {i} lost messages"
                );
            }
            let total_sent: u64 = report.per_pe.iter().map(|p| p.sent).sum();
            assert_eq!(total_sent, report.messages);
        }
    }
}

#[test]
fn totals_decompose_into_phases() {
    let img = gen::uniform_random(32, 32, 0.4, 5);
    let run = label_components_kind(&img, UfKind::RankHalving, &CcOptions::default());
    let m = &run.metrics;
    assert_eq!(
        m.total_steps,
        m.left.makespan() + m.right.makespan() + m.stitch_makespan + m.load_steps
    );
    assert_eq!(
        m.left.makespan(),
        m.left.uf_pass.makespan
            + m.left.find_makespan
            + m.left.label_pass.makespan
            + m.left.readout_makespan
    );
}

#[test]
fn theory_ordering_holds_on_adversarial_comb() {
    // At one size: naive > divide&conquer, and bit-serial CC > word CC.
    let n = 96;
    let img = gen::double_comb(n, n, 2);
    let cc = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
    let (_, naive) = naive_slap_labels(&img);
    let (_, dc) = divide_conquer_labels(&img);
    let bit = label_components_bitserial(&img, UfKind::Tarjan, &CcOptions::default());
    assert!(
        naive.steps > dc.steps,
        "naive {} should exceed d&c {}",
        naive.steps,
        dc.steps
    );
    assert!(bit.metrics.total_steps > cc.metrics.total_steps);
}

#[test]
fn dc_grows_superlinearly_while_cc_stays_linear_on_comb() {
    // The paper's E5 claim is about growth shapes, not absolute levels:
    // divide&conquer's Θ(n lg n) constant is small enough to undercut CC's
    // O(n) at feasible sizes, but over an 8x sweep d&c must grow strictly
    // faster than linearly while CC's steps/n stays flat.
    let at = |n: usize| {
        let img = gen::double_comb(n, n, 2);
        let (_, dc) = divide_conquer_labels(&img);
        let cc = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
        (dc.steps as f64, cc.metrics.total_steps as f64)
    };
    let (dc_s, cc_s) = at(48);
    let (dc_b, cc_b) = at(384);
    // CC: flat steps/n (observed 62.1 -> 63.3).
    let cc_ratio = (cc_b / 384.0) / (cc_s / 48.0);
    assert!(
        (0.9..1.15).contains(&cc_ratio),
        "CC steps/n drifted: {cc_ratio:.3}"
    );
    // D&C: superlinear (observed 9.5x over the 8x sweep).
    assert!(
        dc_b / dc_s > 1.08 * 8.0,
        "d&c growth not superlinear: {:.2}x over 8x",
        dc_b / dc_s
    );
    // and its n·lg n shape constant stays bounded.
    let shape = |steps: f64, n: f64| steps / (n * n.log2());
    for (steps, n) in [(dc_s, 48.0), (dc_b, 384.0)] {
        let c = shape(steps, n);
        assert!(
            (1.0..16.0).contains(&c),
            "d&c shape constant {c:.2} out of band"
        );
    }
}

#[test]
fn ideal_is_never_slower_than_metered_structures() {
    for name in ["random50", "tournament", "comb"] {
        let img = gen::by_name(name, 64, 2).unwrap();
        let ideal = label_components_kind(&img, UfKind::IdealO1, &CcOptions::default());
        for &kind in &[UfKind::Tarjan, UfKind::Weighted, UfKind::Blum] {
            let run = label_components_kind(&img, kind, &CcOptions::default());
            assert!(
                run.metrics.total_steps >= ideal.metrics.total_steps,
                "{kind} on {name}: {} < ideal {}",
                run.metrics.total_steps,
                ideal.metrics.total_steps
            );
        }
    }
}

#[test]
fn linear_scaling_with_ideal_uf() {
    // Lemma 2 at integration scope: steps/n stays within a narrow band.
    let mut ratios = Vec::new();
    for n in [48usize, 96, 192] {
        let img = gen::uniform_random(n, n, 0.5, 3);
        let run = label_components_kind(&img, UfKind::IdealO1, &CcOptions::default());
        ratios.push(run.metrics.total_steps as f64 / n as f64);
    }
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.5, "superlinear drift: {ratios:?}");
}

#[test]
fn naive_grows_quadratically_where_cc_stays_linear() {
    let steps = |n: usize| {
        let img = gen::serpentine(n, n, 3);
        let naive = naive_slap_labels(&img).1.steps as f64;
        let cc = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default())
            .metrics
            .total_steps as f64;
        (naive, cc)
    };
    let (naive_small, cc_small) = steps(32);
    let (naive_big, cc_big) = steps(128);
    let naive_growth = naive_big / naive_small;
    let cc_growth = cc_big / cc_small;
    assert!(
        naive_growth > 3.0 * cc_growth,
        "expected naive to outgrow CC: naive x{naive_growth:.1}, cc x{cc_growth:.1}"
    );
}

#[test]
fn eager_variant_never_increases_uf_pass_messages_much() {
    // eager forwards a pair at most once per incoming pair: message count can
    // grow only by the suppressed-duplicate margin
    let img = gen::by_name("comb", 64, 1).unwrap();
    let base = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
    let eager = label_components_kind(
        &img,
        UfKind::Tarjan,
        &CcOptions {
            eager_forward: true,
            ..CcOptions::default()
        },
    );
    assert_eq!(base.labels, eager.labels);
    let b = base.metrics.left.uf_pass.messages + base.metrics.right.uf_pass.messages;
    let e = eager.metrics.left.uf_pass.messages + eager.metrics.right.uf_pass.messages;
    assert!(e <= 2 * b + 16, "eager message blowup: {e} vs {b}");
}

#[test]
fn charge_load_adds_exactly_the_input_phase() {
    let img = gen::uniform_random(40, 40, 0.5, 8);
    let without = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
    let with = label_components_kind(
        &img,
        UfKind::Tarjan,
        &CcOptions {
            charge_load: true,
            ..CcOptions::default()
        },
    );
    assert_eq!(
        with.metrics.total_steps,
        without.metrics.total_steps + 3 * 40
    );
}
