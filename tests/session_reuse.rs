//! Session-reuse coverage for the engine layer: a **warm** session — one
//! that has already labeled arbitrary other frames — must behave exactly
//! like a fresh one (bit-identical output, no state leaks), and once its
//! arenas have reached their high-water marks, further calls must perform
//! **zero reallocations** (asserted through the `scratch_bytes` capacity
//! watermark: a `Vec` can only grow its capacity by reallocating, so a
//! stable watermark over a repeated frame set proves the steady state is
//! allocation-free).

use proptest::prelude::*;
use slap_repro::cc::engine::{registry, EngineKind, FastSession, LabelEngine, StreamSession};
use slap_repro::image::{bfs_labels_conn, gen, Bitmap, Connectivity, LabelGrid};

fn arb_frame() -> impl Strategy<Value = Bitmap> {
    // Dims straddle the 64-bit word boundary; densities span run-sparse to
    // run-dense; all deterministic from the seed.
    (1usize..48, 1usize..132, 0.0f64..1.0, 0u64..10_000)
        .prop_map(|(r, c, d, s)| gen::uniform_random(r, c, d, s))
}

fn arb_conn() -> impl Strategy<Value = Connectivity> {
    prop::sample::select(vec![Connectivity::Four, Connectivity::Eight])
}

/// Labels `img` with a warm `session` and asserts the result equals a fresh
/// session's and the oracle's.
fn check_warm_equals_fresh(session: &mut dyn LabelEngine, img: &Bitmap, conn: Connectivity) {
    let mut warm_grid = LabelGrid::new_background(1, 1);
    session.label_into(img, conn, &mut warm_grid);
    let mut fresh = session.kind().session(session.threads());
    let mut fresh_grid = LabelGrid::new_background(1, 1);
    fresh.label_into(img, conn, &mut fresh_grid);
    assert_eq!(warm_grid, fresh_grid, "warm vs fresh ({})", session.kind());
    assert_eq!(
        warm_grid,
        bfs_labels_conn(img, conn),
        "warm vs oracle ({})",
        session.kind()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ISSUE's reuse property: a warm `FastSession` / `StreamSession`
    /// output is bit-identical to a fresh one's after interleaving frames of
    /// different dims and families.
    #[test]
    fn warm_fast_and_stream_sessions_match_fresh_after_interleaved_frames(
        a in arb_frame(),
        b in arb_frame(),
        c in arb_frame(),
        conn in arb_conn(),
        family in prop::sample::select(gen::WORKLOADS.to_vec()),
        side in 4usize..40,
    ) {
        let named = gen::by_name(family, side, 5).unwrap();
        let mut fast: Box<dyn LabelEngine> = Box::new(FastSession::new());
        let mut stream: Box<dyn LabelEngine> = Box::new(StreamSession::new());
        for session in [fast.as_mut(), stream.as_mut()] {
            let mut grid = LabelGrid::new_background(1, 1);
            // Interleave frames of unrelated dims/densities, checking the
            // warm output against a fresh session at every step.
            session.label_into(&a, conn, &mut grid);
            check_warm_equals_fresh(session, &b, conn);
            session.label_into(&named, conn, &mut grid);
            check_warm_equals_fresh(session, &c, conn);
            // Re-labeling an earlier frame must reproduce it exactly.
            check_warm_equals_fresh(session, &a, conn);
        }
    }

    /// Warm calls are allocation-free: after a frame set has been seen
    /// (twice — double-buffered arenas need a pass per buffer half), its
    /// capacity watermark is final, so repeating the set reallocates nothing.
    #[test]
    fn warm_sessions_reallocate_nothing_on_seen_frame_sets(
        a in arb_frame(),
        b in arb_frame(),
        conn in arb_conn(),
    ) {
        for info in registry() {
            let mut session = info.kind.session(2);
            let mut grid = LabelGrid::new_background(1, 1);
            for _ in 0..2 {
                session.label_into(&a, conn, &mut grid);
                session.label_into(&b, conn, &mut grid);
            }
            let watermark = session.scratch_bytes();
            for _ in 0..3 {
                session.label_into(&a, conn, &mut grid);
                session.label_into(&b, conn, &mut grid);
            }
            prop_assert_eq!(
                session.scratch_bytes(),
                watermark,
                "{}: warm repeat grew an arena",
                info.kind
            );
        }
    }
}

#[test]
fn watermarks_are_monotone_and_engine_owned() {
    // Deterministic companion to the property: watermarks only ever grow,
    // grow when a strictly larger frame arrives, and never grow on repeats.
    let small = gen::uniform_random(16, 16, 0.5, 1);
    let large = gen::uniform_random(128, 128, 0.5, 2);
    for info in registry() {
        let mut session = info.kind.session(2);
        let mut grid = LabelGrid::new_background(1, 1);
        session.label_into(&small, Connectivity::Four, &mut grid);
        let after_small = session.scratch_bytes();
        assert!(after_small > 0, "{}", info.kind);
        session.label_into(&large, Connectivity::Four, &mut grid);
        let after_large = session.scratch_bytes();
        assert!(
            after_large > after_small,
            "{}: a 64x larger frame must grow the arenas",
            info.kind
        );
        session.label_into(&small, Connectivity::Four, &mut grid);
        assert_eq!(
            session.scratch_bytes(),
            after_large,
            "{}: shrinking back must keep (not shrink or grow) the arenas",
            info.kind
        );
    }
}

#[test]
fn warm_fast_session_relabels_allocation_free_with_block_classification() {
    // The coarse-to-fine pass added per-row run-start mask buffers to the
    // fast engine's scratch; they must obey the same watermark contract as
    // every other arena. Interleave dims, families, connectivities — the
    // classes of frames that stress different tile mixes (all-background,
    // all-interior, all-boundary, ragged tail words) — then assert the warm
    // watermark is final while the tile counters keep reporting per-call.
    let frames: Vec<Bitmap> = [
        ("empty", 96usize, 96usize),
        ("full", 96, 96),
        ("random50", 96, 65),
        ("blobs", 64, 127),
        ("checker", 40, 128),
        ("maze", 96, 63),
    ]
    .iter()
    .map(|&(name, rows, cols)| gen::by_name_dims(name, rows, cols, 13).unwrap())
    .collect();
    let mut session = FastSession::new();
    let mut grid = LabelGrid::new_background(1, 1);
    for _ in 0..2 {
        for (i, img) in frames.iter().enumerate() {
            let conn = if i % 2 == 0 {
                Connectivity::Four
            } else {
                Connectivity::Eight
            };
            session.label_into(img, conn, &mut grid);
        }
    }
    let watermark = session.scratch_bytes();
    for _ in 0..3 {
        for (i, img) in frames.iter().enumerate() {
            let conn = if i % 2 == 0 {
                Connectivity::Four
            } else {
                Connectivity::Eight
            };
            let stats = session.label_into(img, conn, &mut grid);
            assert_eq!(grid, bfs_labels_conn(img, conn));
            assert_eq!(
                stats.tiles.total(),
                (img.words_per_row() * img.rows()) as u64,
                "tile counters must stay call-local on a warm session"
            );
            assert_eq!(
                session.scratch_bytes(),
                watermark,
                "warm relabel with block classification grew an arena"
            );
        }
    }
}

#[test]
fn stream_session_grid_path_matches_pure_streaming_retirements() {
    // The StreamSession grid labeler and the pure streaming path share one
    // union-find; their component counts must agree frame after frame on a
    // warm session.
    let mut session = EngineKind::Stream.session(1);
    let mut grid = LabelGrid::new_background(1, 1);
    for (i, name) in gen::WORKLOADS.iter().enumerate() {
        let img = gen::by_name(name, 24 + (i % 5) * 7, i as u64).unwrap();
        let stats = session.label_into(&img, Connectivity::Four, &mut grid);
        assert_eq!(stats.components, grid.component_count(), "workload {name}");
        assert!(stats.peak_frontier_runs <= img.cols() / 2 + 1, "{name}");
    }
}
