//! Acceptance coverage specific to the label-equivalence propagation engine:
//! the convergence-speed property (iterations are bounded by component
//! geometry, not path length), counter hygiene on warm sessions, and the
//! allocation-free steady state of its run/edge/label arenas.
//!
//! Bit-identity across families, connectivities, and word-boundary shapes is
//! covered by the registry-driven matrix in `engine_matrix.rs`; these tests
//! pin down what the matrix cannot see — *how* the engine converges.

use proptest::prelude::*;
use slap_repro::cc::engine::{LabelEngine, PropagateSession};
use slap_repro::image::{bfs_labels_conn, gen, Bitmap, Connectivity, LabelGrid};
use std::collections::VecDeque;

/// Per-component minimum column-major pixel and the BFS eccentricity of the
/// component as seen *from that pixel*, under `conn`. Returns the maximum
/// eccentricity over all components (0 for an empty frame).
fn max_eccentricity_from_min_pixels(img: &Bitmap, conn: Connectivity) -> usize {
    let (rows, cols) = (img.rows(), img.cols());
    let mut comp = vec![u32::MAX; rows * cols];
    let mut mins: Vec<(usize, usize)> = Vec::new();
    let neighbors = |r: usize, c: usize| {
        let mut out: Vec<(usize, usize)> = Vec::new();
        let eight = conn == Connectivity::Eight;
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if (dr == 0 && dc == 0) || (!eight && dr != 0 && dc != 0) {
                    continue;
                }
                let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                if nr >= 0 && nc >= 0 && (nr as usize) < rows && (nc as usize) < cols {
                    out.push((nr as usize, nc as usize));
                }
            }
        }
        out
    };
    // First sweep: flood-fill components in column-major order, so the BFS
    // seed of each component IS its minimum column-major pixel — the pixel
    // the engine's labels fold to.
    for c in 0..cols {
        for r in 0..rows {
            if !img.get(r, c) || comp[r * cols + c] != u32::MAX {
                continue;
            }
            let id = mins.len() as u32;
            mins.push((r, c));
            let mut queue = VecDeque::from([(r, c)]);
            comp[r * cols + c] = id;
            while let Some((qr, qc)) = queue.pop_front() {
                for (nr, nc) in neighbors(qr, qc) {
                    if img.get(nr, nc) && comp[nr * cols + nc] == u32::MAX {
                        comp[nr * cols + nc] = id;
                        queue.push_back((nr, nc));
                    }
                }
            }
        }
    }
    // Second sweep: BFS distance from each component's min pixel.
    let mut worst = 0usize;
    for &(r, c) in &mins {
        let mut dist = vec![usize::MAX; rows * cols];
        dist[r * cols + c] = 0;
        let mut queue = VecDeque::from([(r, c)]);
        while let Some((qr, qc)) = queue.pop_front() {
            let d = dist[qr * cols + qc];
            worst = worst.max(d);
            for (nr, nc) in neighbors(qr, qc) {
                if img.get(nr, nc) && dist[nr * cols + nc] == usize::MAX {
                    dist[nr * cols + nc] = d + 1;
                    queue.push_back((nr, nc));
                }
            }
        }
    }
    worst
}

/// Labels `img` with a fresh propagate session, asserting bit-identity, and
/// returns the observed convergence counters.
fn run_propagate(img: &Bitmap, conn: Connectivity) -> (usize, usize) {
    let mut session = PropagateSession::new();
    let mut grid = LabelGrid::new_background(1, 1);
    let stats = session.label_into(img, conn, &mut grid);
    assert_eq!(grid, bfs_labels_conn(img, conn));
    (stats.iterations, stats.reduction_passes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The convergence property that makes the engine viable on adversarial
    /// inputs: one forward+backward relaxation sweep plus a label reduction
    /// moves the component minimum at least one run-graph hop outward, so
    /// observed iterations never exceed the pixel-BFS eccentricity from each
    /// component's minimum pixel (a run-graph-distance upper bound), plus
    /// one no-change sweep to prove convergence, plus one of slack.
    #[test]
    fn iterations_are_bounded_by_component_eccentricity(
        rows in 1usize..40,
        cols in 1usize..80,
        density in 0.0f64..1.0,
        seed in 0u64..10_000,
        conn in prop::sample::select(vec![Connectivity::Four, Connectivity::Eight]),
    ) {
        let img = gen::uniform_random(rows, cols, density, seed);
        let (iterations, _) = run_propagate(&img, conn);
        let bound = max_eccentricity_from_min_pixels(&img, conn) + 2;
        prop_assert!(
            iterations <= bound,
            "{iterations} iterations on a frame with eccentricity bound {bound}"
        );
    }
}

#[test]
fn adversarial_families_stay_within_the_eccentricity_bound() {
    // Spiral, serpentine, and Hilbert frames are the Θ(path-length) worst
    // cases for naive neighbor relaxation; the pointer-jumping reduction
    // must keep the engine at the (much smaller) geometric bound.
    for family in ["spiral", "serpentine", "hilbert"] {
        let img = gen::by_name(family, 48, 1).unwrap();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let (iterations, _) = run_propagate(&img, conn);
            let bound = max_eccentricity_from_min_pixels(&img, conn) + 2;
            assert!(
                iterations <= bound,
                "{family} {conn:?}: {iterations} iterations > bound {bound}"
            );
        }
    }
}

#[test]
fn warm_propagate_session_relabels_allocation_free_with_call_local_counters() {
    // The propagate session's scratch — run tables, the edge list, label and
    // min-position arrays, the two row-word buffers — must obey the same
    // watermark contract as every other engine's arenas: after the frame set
    // has been seen twice, repeats reallocate nothing. The convergence
    // counters must stay call-local on the warm session (a stale iteration
    // count from a previous, harder frame would corrupt the bench records).
    let frames: Vec<(Bitmap, Connectivity)> = [
        ("empty", 96usize, 96usize),
        ("serpentine", 96, 65),
        ("random50", 64, 127),
        ("spiral", 40, 128),
        ("hilbert", 64, 64),
        ("checker", 96, 63),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(name, rows, cols))| {
        let conn = if i % 2 == 0 {
            Connectivity::Four
        } else {
            Connectivity::Eight
        };
        (gen::by_name_dims(name, rows, cols, 13).unwrap(), conn)
    })
    .collect();
    let mut session = PropagateSession::new();
    let mut grid = LabelGrid::new_background(1, 1);
    for _ in 0..2 {
        for (img, conn) in &frames {
            session.label_into(img, *conn, &mut grid);
        }
    }
    let watermark = session.scratch_bytes();
    assert!(watermark > 0);
    // Fresh-session counters per frame are the call-local reference.
    let fresh: Vec<(usize, usize)> = frames
        .iter()
        .map(|(img, conn)| run_propagate(img, *conn))
        .collect();
    for _ in 0..3 {
        for ((img, conn), want) in frames.iter().zip(&fresh) {
            let stats = session.label_into(img, *conn, &mut grid);
            assert_eq!(grid, bfs_labels_conn(img, *conn));
            assert_eq!(
                (stats.iterations, stats.reduction_passes),
                *want,
                "warm counters must match a fresh session's"
            );
            assert_eq!(
                session.scratch_bytes(),
                watermark,
                "warm propagate relabel grew an arena"
            );
        }
    }
}
