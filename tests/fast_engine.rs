//! Four-way differential suite bridging the host engines and the **paper
//! simulations**: the BFS gold oracle vs. [`fast_labels_conn`] vs. the
//! simulated pixel-universe Algorithm CC vs. the simulated run-universe
//! variant, on every workload family plus adversarial shapes, under both
//! connectivities. All four must be *bit-identical* (same
//! minimum-column-major-position labels), not merely the same partition.
//!
//! Host-engine-only coverage (registry × family × connectivity, warm-session
//! reuse) lives in `tests/engine_matrix.rs` and `tests/session_reuse.rs`;
//! this suite is what ties the simulators to the same label space.

use slap_repro::cc::{label_components, label_components_runs, CcOptions};
use slap_repro::image::{bfs_labels_conn, fast_labels_conn, gen, Bitmap, Connectivity};
use slap_repro::unionfind::TarjanUf;

fn opts(conn: Connectivity) -> CcOptions {
    CcOptions {
        connectivity: conn,
        ..CcOptions::default()
    }
}

/// Asserts all four labelers agree exactly on `img`.
fn check_four_way(img: &Bitmap, conn: Connectivity, what: &str) {
    let truth = bfs_labels_conn(img, conn);
    let fast = fast_labels_conn(img, conn);
    assert_eq!(fast, truth, "fast vs oracle: {what} ({conn})");
    let pixel = label_components::<TarjanUf>(img, &opts(conn));
    assert_eq!(pixel.labels, truth, "pixel CC vs oracle: {what} ({conn})");
    let runs = label_components_runs::<TarjanUf>(img, &opts(conn));
    assert_eq!(runs.labels, truth, "run CC vs oracle: {what} ({conn})");
}

#[test]
fn all_workload_families_agree_four_ways() {
    for conn in [Connectivity::Four, Connectivity::Eight] {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 28, 9).unwrap();
            check_four_way(&img, conn, name);
        }
    }
}

#[test]
fn adversarial_shapes_agree_four_ways() {
    let shapes: &[(&str, Bitmap)] = &[
        ("full", gen::full(24, 24)),
        ("empty", Bitmap::new(24, 24)),
        ("comb", gen::double_comb(24, 24, 2)),
        ("tournament", gen::tournament(24, 48, 2)),
        ("single-pixel-corners", {
            let mut bm = Bitmap::new(16, 16);
            bm.set(0, 0, true);
            bm.set(0, 15, true);
            bm.set(15, 0, true);
            bm.set(15, 15, true);
            bm
        }),
        ("single-pixel-border-runs", {
            // Isolated pixels and short runs hugging every border.
            let mut bm = Bitmap::new(12, 12);
            for c in (0..12).step_by(2) {
                bm.set(0, c, true);
                bm.set(11, c, true);
            }
            for r in (2..10).step_by(2) {
                bm.set(r, 0, true);
                bm.set(r, 11, true);
            }
            bm
        }),
    ];
    for conn in [Connectivity::Four, Connectivity::Eight] {
        for (what, img) in shapes {
            check_four_way(img, conn, what);
        }
    }
}

#[test]
fn word_boundary_widths_agree_four_ways() {
    for cols in [63usize, 64, 65] {
        let img = gen::uniform_random(17, cols, 0.5, cols as u64);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            check_four_way(&img, conn, &format!("random {cols}w"));
        }
    }
}
