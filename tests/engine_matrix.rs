//! The unified engine differential harness: **every registered engine ×
//! every workload family × both connectivities** must label bit-identically
//! to the BFS gold oracle — component minima, not merely the same partition.
//!
//! This is the collapsed successor of the per-engine family sweeps that used
//! to live in `fast_engine.rs` / `parallel_engine.rs` / `stream_engine.rs`:
//! adding an engine to `slap_cc::engine::registry()` adds it to this matrix
//! with no test changes. Sessions are deliberately *reused* across the whole
//! matrix (families, sizes, connectivities, all interleaved), so the harness
//! simultaneously proves the no-state-leak contract of warm sessions.

use slap_repro::cc::engine::{registry, EngineKind, LabelEngine};
use slap_repro::image::pbm::{PbmError, PbmRowReader};
use slap_repro::image::{gen, BfsOracle, Bitmap, Connectivity, LabelGrid};
use slap_repro::serve::WireError;

/// Thread counts exercised for multithreaded engines (sequential engines run
/// once, at their implicit 1).
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Drives `session` over every family × connectivity at `side`, asserting
/// bit-identity against the oracle and the statistics' self-consistency.
fn drive_matrix(session: &mut dyn LabelEngine, side: usize, what: &str) {
    let mut oracle = BfsOracle::new();
    let mut truth = LabelGrid::new_background(1, 1);
    let mut grid = LabelGrid::new_background(1, 1);
    for name in gen::WORKLOADS {
        let img = gen::by_name(name, side, 23).unwrap();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let want = oracle.label_into(&img, conn, &mut truth);
            let stats = session.label_into(&img, conn, &mut grid);
            assert_eq!(grid, truth, "{what}: workload {name} conn={conn:?}");
            assert_eq!(
                stats.components, want,
                "{what}: component count on {name} conn={conn:?}"
            );
        }
    }
}

#[test]
fn every_registered_engine_is_bit_identical_on_every_family() {
    for info in registry() {
        let threads: &[usize] = if info.multithreaded { THREADS } else { &[1] };
        for &t in threads {
            let mut session = info.kind.session(t);
            drive_matrix(session.as_mut(), 41, &format!("{}@{t}", info.kind));
        }
    }
}

#[test]
fn every_registered_engine_handles_rectangular_and_word_boundary_shapes() {
    let shapes: Vec<Bitmap> = [
        (1usize, 1usize),
        (1, 200),
        (200, 1),
        (37, 63),
        (17, 64),
        (9, 130),
    ]
    .iter()
    .map(|&(r, c)| gen::uniform_random(r, c, 0.5, (r * c) as u64))
    .collect();
    let mut oracle = BfsOracle::new();
    let mut truth = LabelGrid::new_background(1, 1);
    let mut grid = LabelGrid::new_background(1, 1);
    for info in registry() {
        let mut session = info.kind.session(4);
        for img in &shapes {
            for conn in [Connectivity::Four, Connectivity::Eight] {
                oracle.label_into(img, conn, &mut truth);
                session.label_into(img, conn, &mut grid);
                assert_eq!(
                    grid,
                    truth,
                    "{}: {}x{} conn={conn:?}",
                    info.kind,
                    img.rows(),
                    img.cols()
                );
            }
        }
    }
}

#[test]
fn engines_agree_pairwise_not_just_with_the_oracle() {
    // Transitivity already implies this, but a direct cross-engine sweep
    // keeps the harness meaningful if the oracle reference above ever
    // changes: all registry outputs must be one grid.
    let img = gen::by_name("maze", 53, 3).unwrap();
    for conn in [Connectivity::Four, Connectivity::Eight] {
        let grids: Vec<(EngineKind, LabelGrid)> = registry()
            .iter()
            .map(|info| {
                let mut session = info.kind.session(3);
                let mut grid = LabelGrid::new_background(1, 1);
                session.label_into(&img, conn, &mut grid);
                (info.kind, grid)
            })
            .collect();
        for pair in grids.windows(2) {
            assert_eq!(
                pair[0].1, pair[1].1,
                "{} vs {} conn={conn:?}",
                pair[0].0, pair[1].0
            );
        }
    }
}

#[test]
fn tiled_engine_is_bit_identical_across_tile_shapes() {
    // The registry carries one canonical tiled shape (2×2); the acceptance
    // sweep covers degenerate single-axis grids and a deeper hierarchy too,
    // each shape driven over the full family × connectivity matrix.
    for (tiles_y, tiles_x) in [(1, 2), (2, 1), (2, 2), (4, 4)] {
        let kind = EngineKind::Tiled { tiles_x, tiles_y };
        for &t in &[1usize, 4] {
            let mut session = kind.session(t);
            drive_matrix(
                session.as_mut(),
                41,
                &format!("tiled {tiles_y}x{tiles_x}@{t}"),
            );
        }
    }
}

#[test]
fn poisoned_inputs_are_rejected_before_any_engine_runs() {
    // The matrix above only ever sees images the reader gate admitted. This
    // is the other half of that contract: poisoned headers — zero-width,
    // zero-height, dimensions whose product overflows, non-numeric tokens —
    // must die at `PbmRowReader::new` with a *typed* error, so no registered
    // engine (and no `slapd` worker) can ever be handed an unrepresentable
    // raster. Each row also pins the wire code the service answers with.
    let poisoned: &[(&str, &[u8], WireError)] = &[
        ("zero width", b"P4\n0 5\n", WireError::BadFrame),
        ("zero height", b"P4\n5 0\n", WireError::BadFrame),
        ("zero both", b"P1\n0 0\n", WireError::BadFrame),
        (
            "absurd dims (rows*cols overflows usize)",
            b"P4\n9999999999 9999999999\n",
            WireError::Overflow,
        ),
        ("non-numeric width", b"P4\nwide 5\n", WireError::BadFrame),
        ("negative height", b"P1\n5 -5\n", WireError::BadFrame),
    ];
    for &(what, bytes, wire) in poisoned {
        let err = match PbmRowReader::new(bytes) {
            Err(e) => e,
            Ok(rd) => panic!(
                "{what}: reader admitted a {}x{} poisoned header",
                rd.rows(),
                rd.cols()
            ),
        };
        let pbm =
            PbmError::from_io(&err).unwrap_or_else(|| panic!("{what}: untyped io error {err}"));
        match pbm {
            PbmError::ZeroDim { .. }
            | PbmError::DimsOverflow { .. }
            | PbmError::BadDim { .. }
            | PbmError::TruncatedHeader => {}
            other => panic!("{what}: unexpected rejection {other}"),
        }
        assert_eq!(WireError::from_pbm(pbm), wire, "{what}: wire code");
    }
}

#[test]
fn registry_capabilities_match_observed_behavior() {
    let img = gen::by_name("random50", 40, 1).unwrap();
    for info in registry() {
        // Advertised connectivities all work (exercised above); here check
        // the thread capability claim is honest.
        let mut session = info.kind.session(5);
        if info.multithreaded {
            assert_eq!(session.threads(), 5, "{}", info.kind);
        } else {
            assert_eq!(session.threads(), 1, "{}", info.kind);
        }
        let mut grid = LabelGrid::new_background(1, 1);
        let stats = session.label_into(&img, Connectivity::Four, &mut grid);
        assert_eq!(stats.threads, session.threads(), "{}", info.kind);
        // Streaming engines report a frontier; whole-frame engines must not.
        if info.streaming {
            assert!(stats.peak_frontier_runs > 0, "{}", info.kind);
        } else {
            assert_eq!(stats.peak_frontier_runs, 0, "{}", info.kind);
        }
    }
}
