//! Smoke tests for the `slap` binary: drive the documented subcommands
//! through real process invocations so the CLI surface (arg parsing, PBM
//! stdin/stdout plumbing, report formatting) cannot silently rot.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn slap(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slap"))
        .args(args)
        .output()
        .expect("spawn slap")
}

fn slap_with_stdin(args: &[&str], stdin: &[u8]) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_slap"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn slap");
    // BrokenPipe is fine: the child may reject the input and exit before the
    // write finishes (e.g. the garbage-PBM case)
    match child.stdin.take().expect("stdin handle").write_all(stdin) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("write stdin: {e}"),
    }
    child.wait_with_output().expect("wait for slap")
}

fn stdout_str(out: &Output) -> String {
    assert!(
        out.status.success(),
        "slap exited with {:?}; stderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

#[test]
fn workloads_lists_known_generators() {
    let out = stdout_str(&slap(&["workloads"]));
    let names: Vec<&str> = out.lines().collect();
    assert!(!names.is_empty());
    for expected in ["comb", "random50", "spiral"] {
        assert!(
            names.iter().any(|n| n.contains(expected)),
            "workload list missing {expected:?}: {names:?}"
        );
    }
}

#[test]
fn gen_label_features_roundtrip_through_pbm() {
    // gen: every listed workload must emit a parseable plain PBM header
    let listed = stdout_str(&slap(&["workloads"]));
    let workload = listed.lines().next().expect("at least one workload");

    let pbm = slap(&["gen", workload, "16", "1"]);
    let pbm_bytes = pbm.stdout.clone();
    let text = stdout_str(&pbm);
    assert!(
        text.starts_with("P1"),
        "gen should emit plain PBM: {text:?}"
    );
    assert!(text.contains("16 16"), "gen should emit a 16x16 header");

    // label: the PBM round-trips through stdin and produces a report
    let label = slap_with_stdin(&["label"], &pbm_bytes);
    let report = stdout_str(&label);
    assert!(
        report.contains("component(s)"),
        "label report missing component count: {report:?}"
    );
    assert!(
        report.contains("16x16"),
        "label report missing dims: {report:?}"
    );

    // features: same image via a file argument, per-component geometry out
    let path = std::env::temp_dir().join(format!("slap_smoke_{}.pbm", std::process::id()));
    std::fs::write(&path, &pbm_bytes).expect("write temp PBM");
    let features = slap(&["features", path.to_str().expect("utf8 temp path")]);
    let _ = std::fs::remove_file(&path);
    let ftext = stdout_str(&features);
    assert!(
        ftext.contains("Euler number"),
        "features report missing Euler number: {ftext:?}"
    );
    assert!(
        ftext.contains("area"),
        "features table missing header: {ftext:?}"
    );
}

#[test]
fn stream_labels_piped_pbm_with_bounded_memory_report() {
    let pbm_bytes = slap(&["gen", "blobs", "20", "2"]).stdout;
    for conn in ["4", "8"] {
        let out = slap_with_stdin(&["stream", "--conn", conn], &pbm_bytes);
        let report = stdout_str(&out);
        assert!(
            report.contains("component(s)"),
            "stream report missing component count: {report:?}"
        );
        assert!(
            report.contains("peak frontier"),
            "stream report missing frontier stats: {report:?}"
        );
        assert!(
            report.contains("rows/s"),
            "stream report missing throughput: {report:?}"
        );
    }
    // The streaming path must reject garbage cleanly, like `label`.
    let bad = slap_with_stdin(&["stream"], b"P4\n8 3\n\xff");
    assert!(!bad.status.success(), "truncated P4 must not stream");
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(!err.contains("panicked"), "clean error expected: {err}");
}

#[test]
fn label_and_features_dispatch_every_registered_engine() {
    let pbm_bytes = slap(&["gen", "blobs", "18", "4"]).stdout;
    let mut reports = Vec::new();
    for engine in ["bfs", "fast", "parallel", "stream"] {
        let out = slap_with_stdin(&["label", "--engine", engine, "--conn", "8"], &pbm_bytes);
        let report = stdout_str(&out);
        assert!(
            report.contains(&format!("host/{engine}:")),
            "--engine {engine} must route to that engine: {report:?}"
        );
        // The component line is engine-independent (bit-identity).
        reports.push(report.lines().next().unwrap_or_default().to_string());

        let fout = slap_with_stdin(&["features", "--engine", engine], &pbm_bytes);
        let freport = stdout_str(&fout);
        assert!(
            freport.contains("Euler number"),
            "features --engine {engine}: {freport:?}"
        );
    }
    reports.dedup();
    assert_eq!(
        reports.len(),
        1,
        "all engines must report identical components: {reports:?}"
    );
    // Unknown engines die cleanly, listing the registry.
    let bad = slap_with_stdin(&["label", "--engine", "warp"], &pbm_bytes);
    assert!(!bad.status.success());
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(
        err.contains("registered engines") && err.contains("parallel"),
        "unknown-engine error should list the registry: {err}"
    );
    // `stream --engine fast` is a contradiction and must be refused.
    let bad = slap_with_stdin(&["stream", "--engine", "fast"], &pbm_bytes);
    assert!(!bad.status.success());
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("streaming engine"), "{err}");
}

#[test]
fn framed_stream_ingests_multiple_p4_frames_in_one_process() {
    // Two hand-crafted raw P4 frames of different dimensions, each preceded
    // by its decimal byte length — the `--framed` continuous-ingest format.
    let f1: &[u8] = b"P4\n8 2\n\xff\x00"; // solid row then blank: 1 component
    let f2: &[u8] = b"P4\n16 3\n\xaa\xaa\x00\x00\xff\xff"; // 8 dots + a bar
    let mut framed = Vec::new();
    for f in [f1, f2] {
        framed.extend_from_slice(format!("{}\n", f.len()).as_bytes());
        framed.extend_from_slice(f);
    }
    let out = slap_with_stdin(&["stream", "--framed"], &framed);
    let report = stdout_str(&out);
    assert!(
        report.contains("frame 1: 2x8, 1 component(s)"),
        "first frame summary missing: {report:?}"
    );
    assert!(
        report.contains("frame 2: 3x16, 9 component(s)"),
        "second frame summary missing: {report:?}"
    );
    assert!(
        report.contains("2 frame(s)"),
        "trailing summary missing: {report:?}"
    );
    // Truncated frames die cleanly, like every other bad input.
    let bad = slap_with_stdin(&["stream", "--framed"], b"10\nP4\n8 2\n");
    assert!(!bad.status.success(), "truncated frame must not stream");
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(!err.contains("panicked"), "clean error expected: {err}");
}

#[test]
fn label_accepts_uf_and_conn_flags() {
    let pbm = slap(&["gen", "comb", "12", "3"]);
    let pbm_bytes = stdout_str(&pbm).into_bytes();
    for uf in ["tarjan", "blum", "quickfind"] {
        let out = slap_with_stdin(&["label", "--uf", uf, "--conn", "8"], &pbm_bytes);
        let report = stdout_str(&out);
        assert!(
            report.contains("component(s)"),
            "--uf {uf} report: {report:?}"
        );
    }
}

#[test]
fn compare_cross_checks_all_algorithms() {
    // `compare` asserts internally that every labeler agrees with CC
    let out = stdout_str(&slap(&["compare", "comb", "12", "1"]));
    assert!(out.contains("Algorithm CC"), "compare output: {out:?}");
}

#[test]
fn bad_input_fails_without_panic_message() {
    let out = slap_with_stdin(&["label"], b"not a pbm at all");
    assert!(!out.status.success(), "garbage PBM must not parse");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        !err.contains("panicked"),
        "parse failure should be a clean error, not a panic: {err}"
    );
}
