//! Differential suite for the streaming engine: replaying any image
//! row-by-row must retire exactly the component set of the whole-frame
//! engines — same count, same paper labels, same per-component features —
//! for every generator family and both connectivities, while the frontier
//! stays bounded by the row width. The PBM row reader is exercised end to
//! end as well: a written P1/P4 stream fed through [`PbmRowReader`] must
//! yield the same retirements as the in-memory replay.

use slap_repro::cc::features::{component_features, streamed_features, Features};
use slap_repro::image::{
    bfs_labels_conn, fast_labels_conn, gen, label_stream, pbm, stream::BitmapRows, Bitmap,
    Connectivity,
};

/// Per-component `(label, features)` reference from a whole-frame labeling.
fn reference(img: &Bitmap, conn: Connectivity) -> Vec<(u32, Features)> {
    let fast = fast_labels_conn(img, conn);
    // The gold oracle must agree with the fast engine before it serves as
    // the streaming reference (the acceptance bar names both).
    assert_eq!(fast, bfs_labels_conn(img, conn));
    component_features(img, &fast, conn).per_component
}

#[test]
fn every_workload_family_streams_to_the_reference_features() {
    for name in gen::WORKLOADS {
        let img = gen::by_name(name, 48, 23).unwrap();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(
                streamed_features(&img, conn),
                reference(&img, conn),
                "workload {name} conn={conn:?}"
            );
        }
    }
}

#[test]
fn rectangular_and_word_boundary_shapes_stream_to_the_reference() {
    for (rows, cols) in [(1, 1), (1, 200), (200, 1), (37, 63), (17, 64), (9, 130)] {
        let img = gen::uniform_random(rows, cols, 0.5, (rows * cols) as u64);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(
                streamed_features(&img, conn),
                reference(&img, conn),
                "{rows}x{cols} conn={conn:?}"
            );
        }
    }
}

#[test]
fn retired_labels_are_the_paper_minimum_positions() {
    let img = gen::by_name("maze", 40, 7).unwrap();
    for conn in [Connectivity::Four, Connectivity::Eight] {
        let labels = fast_labels_conn(&img, conn);
        let run = label_stream(&mut BitmapRows::new(&img), conn).unwrap();
        let mut got: Vec<u64> = run.components.iter().map(|c| c.label(img.rows())).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = labels
            .component_stats()
            .iter()
            .map(|s| u64::from(s.label))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "conn={conn:?}");
    }
}

#[test]
fn run_dense_checker_exercises_the_word_and_merge_sweep() {
    // Regression for the 4-connectivity word-level `AND` adjacency sweep
    // (ported from the fast engine, replacing the per-run two-pointer join):
    // checker rows are the run-densest possible input — one run per other
    // column — so every AND-word shortcut and cursor advance is on the hot
    // path. 8-connectivity still takes the two-pointer join; both must agree
    // with the whole-frame reference, including at word-boundary widths.
    for side in [63usize, 64, 65, 96, 130] {
        let img = gen::by_name("checker", side, 0).unwrap();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(
                streamed_features(&img, conn),
                reference(&img, conn),
                "checker side={side} conn={conn:?}"
            );
        }
    }
    // Alternating checker phases between adjacent rows: the AND of facing
    // rows is empty (no unions) — maximal retirement churn per row.
    let mut img = Bitmap::new(40, 67);
    for r in 0..40 {
        for c in 0..67 {
            if (r + c) % 2 == 0 {
                img.set(r, c, true);
            }
        }
    }
    for conn in [Connectivity::Four, Connectivity::Eight] {
        assert_eq!(
            streamed_features(&img, conn),
            reference(&img, conn),
            "phase-alternating checker conn={conn:?}"
        );
    }
}

#[test]
fn frontier_memory_stays_bounded_by_cols_across_families() {
    // The O(cols + live components) contract, asserted over the families
    // with the most live components (checker: one component per other
    // column) and the most churn (random50).
    for name in ["checker", "random50", "hstripes", "full"] {
        let img = gen::by_name(name, 96, 3).unwrap();
        let cols = img.cols();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let run = label_stream(&mut BitmapRows::new(&img), conn).unwrap();
            assert!(
                run.stats.peak_frontier_runs <= cols / 2 + 1,
                "{name}: frontier {} for {cols} cols",
                run.stats.peak_frontier_runs
            );
            assert!(
                run.stats.peak_nodes <= cols + 1,
                "{name}: {} nodes for {cols} cols (conn={conn:?})",
                run.stats.peak_nodes
            );
        }
    }
}

#[test]
fn pbm_row_reader_streams_identically_to_in_memory_replay() {
    let img = gen::by_name("blobs", 33, 5).unwrap();
    for conn in [Connectivity::Four, Connectivity::Eight] {
        let mut want = label_stream(&mut BitmapRows::new(&img), conn)
            .unwrap()
            .components;
        want.sort_unstable();
        for raw in [false, true] {
            let mut buf = Vec::new();
            if raw {
                pbm::write_raw(&img, &mut buf).unwrap();
            } else {
                pbm::write_plain(&img, &mut buf).unwrap();
            }
            let mut reader = pbm::PbmRowReader::new(&buf[..]).unwrap();
            let mut got = label_stream(&mut reader, conn).unwrap().components;
            got.sort_unstable();
            assert_eq!(got, want, "raw={raw} conn={conn:?}");
        }
    }
}

#[test]
fn streaming_statistics_account_for_every_pixel() {
    let img = gen::by_name("random25", 50, 9).unwrap();
    let run = label_stream(&mut BitmapRows::new(&img), Connectivity::Four).unwrap();
    assert_eq!(run.stats.rows, img.rows() as u64);
    assert_eq!(run.stats.pixels, img.count_ones() as u64);
    assert_eq!(run.stats.retired, run.components.len() as u64);
    let total_area: u64 = run.components.iter().map(|c| c.area).sum();
    assert_eq!(total_area, img.count_ones() as u64);
}
