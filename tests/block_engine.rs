//! Differential battery for the coarse-to-fine block engine: the word ×
//! 2-row tile classification pass in `slap_image::fast` must never change
//! *what* is computed — only how much work computing it costs. Every
//! generator family × both connectivities × widths that straddle the 64-bit
//! word boundary is labeled through the block-classified engines and
//! compared bit-for-bit against the BFS gold oracle, and every call's
//! [`TileStats`] must satisfy the classification-counter invariant:
//! `background + interior + boundary` equals the exact number of word-tiles
//! the engine's decomposition scans — each tile classified exactly once,
//! none skipped, none double-counted.

use slap_repro::cc::engine::{registry, EngineKind, EngineStats};
use slap_repro::image::{bfs_labels_conn, gen, Bitmap, Connectivity, LabelGrid, TileStats};

/// Widths chosen to straddle the packed-word boundary: one under, at, and
/// over a single word, and the same around two words.
const WIDTHS: &[usize] = &[63, 64, 65, 127, 128];

/// Whether `kind` labels through the run-based coarse-to-fine scan (and so
/// must report a full tile classification); the pixel-probing oracle, the
/// frontier-based streaming engine, and the whole-row iterative propagation
/// engine scan no tiles and must report zero.
fn classifies_tiles(kind: EngineKind) -> bool {
    !matches!(
        kind,
        EngineKind::Bfs | EngineKind::Stream | EngineKind::Propagate
    )
}

/// Exact word-tile count `kind`'s decomposition scans for `img`. Row splits
/// (sequential, strip-parallel, tiled bands) partition the rows, so they
/// never change the total; *column* splits re-scan a word shared by two
/// windows whenever a tile boundary is not word-aligned, so the tiled
/// engine's expectation counts each window's words explicitly.
fn expected_tiles(kind: EngineKind, img: &Bitmap) -> u64 {
    let tx = match kind {
        EngineKind::Tiled { tiles_x, tiles_y } if tiles_x.min(img.cols()) * tiles_y > 1 => {
            tiles_x.min(img.cols())
        }
        _ => 1,
    };
    let cols = img.cols();
    let words_per_row: usize = (0..tx)
        .map(|j| {
            let lo = j * cols / tx;
            let hi = (j + 1) * cols / tx;
            (hi - 1) / 64 + 1 - lo / 64
        })
        .sum();
    (words_per_row * img.rows()) as u64
}

/// Asserts the classification-counter invariant for one call's stats.
fn check_tile_invariant(stats: &EngineStats, kind: EngineKind, img: &Bitmap, what: &str) {
    let expect = expected_tiles(kind, img);
    let t = stats.tiles;
    assert_eq!(
        t.total(),
        expect,
        "{what}: tiles bg={} int={} bd={} must cover {expect} word-tiles",
        t.background,
        t.interior,
        t.boundary
    );
}

#[test]
fn block_classified_engines_match_the_oracle_across_the_width_matrix() {
    for info in registry() {
        let mut session = info.kind.session(3);
        let mut grid = LabelGrid::new_background(1, 1);
        for name in gen::WORKLOADS {
            for &cols in WIDTHS {
                let img = gen::by_name_dims(name, 40, cols, 29).unwrap();
                for conn in [Connectivity::Four, Connectivity::Eight] {
                    let what = format!("{} on {name} 40x{cols} {conn:?}", info.kind);
                    let stats = session.label_into(&img, conn, &mut grid);
                    assert_eq!(grid, bfs_labels_conn(&img, conn), "{what}");
                    if classifies_tiles(info.kind) {
                        check_tile_invariant(&stats, info.kind, &img, &what);
                    } else {
                        assert_eq!(stats.tiles, TileStats::default(), "{what}");
                    }
                }
            }
        }
    }
}

#[test]
fn tile_classes_reflect_frame_structure_not_just_totals() {
    // The coarse pass must actually *find* the coarse structure: an empty
    // frame is all background, a solid frame is interior except the first
    // word-row (paired with the implicit empty row above), and dense random
    // noise is all boundary.
    let mut session = EngineKind::Fast.session(1);
    let mut grid = LabelGrid::new_background(1, 1);

    let empty = gen::by_name("empty", 128, 0).unwrap();
    let stats = session.label_into(&empty, Connectivity::Four, &mut grid);
    assert_eq!(stats.tiles.background, stats.tiles.total());

    let full = gen::by_name("full", 128, 0).unwrap();
    let stats = session.label_into(&full, Connectivity::Four, &mut grid);
    assert_eq!(stats.tiles.background, 0);
    assert_eq!(stats.tiles.boundary, full.words_per_row() as u64);
    assert_eq!(
        stats.tiles.interior,
        (full.words_per_row() * (full.rows() - 1)) as u64
    );

    let noise = gen::by_name("random50", 128, 7).unwrap();
    let stats = session.label_into(&noise, Connectivity::Four, &mut grid);
    assert_eq!(stats.tiles.boundary, stats.tiles.total());

    // A frame mixing all three classes — the realistic win case: a large
    // solid region (interior words), empty margins (background words), and
    // a noisy band (boundary words).
    let mut mixed = Bitmap::new(192, 256);
    for r in 16..112 {
        for c in 8..200 {
            mixed.set(r, c, true);
        }
    }
    let noise = gen::uniform_random(32, 256, 0.5, 5);
    for r in 0..32 {
        for c in 0..256 {
            if noise.get(r, c) {
                mixed.set(144 + r, c, true);
            }
        }
    }
    let stats = session.label_into(&mixed, Connectivity::Eight, &mut grid);
    assert_eq!(grid, bfs_labels_conn(&mixed, Connectivity::Eight));
    assert!(stats.tiles.background > 0, "{:?}", stats.tiles);
    assert!(stats.tiles.interior > 0, "{:?}", stats.tiles);
    assert!(stats.tiles.boundary > 0, "{:?}", stats.tiles);
}

#[test]
fn decomposed_engines_classify_every_window_tile_exactly_once() {
    // Strips and tiles split the frame, but each worker still classifies its
    // own window completely: the summed counters must cover the
    // decomposition's word-tiles exactly — including the words a non-aligned
    // tile boundary makes two column-windows share.
    let img = gen::by_name("blobs", 96, 11).unwrap();
    let mut grid = LabelGrid::new_background(1, 1);
    for kind in [
        EngineKind::Parallel,
        EngineKind::Tiled {
            tiles_x: 2,
            tiles_y: 2,
        },
        EngineKind::Tiled {
            tiles_x: 3,
            tiles_y: 1,
        },
    ] {
        for threads in [1usize, 2, 4] {
            let mut session = kind.session(threads);
            let stats = session.label_into(&img, Connectivity::Four, &mut grid);
            assert_eq!(grid, bfs_labels_conn(&img, Connectivity::Four));
            check_tile_invariant(&stats, kind, &img, &format!("{kind}@{threads}"));
        }
    }
}

#[test]
fn warm_sessions_keep_counters_call_local() {
    // Counters must describe the *last* call only — no accumulation across
    // a warm session's lifetime, no residue from a larger earlier frame.
    let mut session = EngineKind::Fast.session(1);
    let mut grid = LabelGrid::new_background(1, 1);
    let big = gen::by_name("full", 192, 0).unwrap();
    session.label_into(&big, Connectivity::Four, &mut grid);
    let small = gen::by_name("empty", 64, 0).unwrap();
    let stats = session.label_into(&small, Connectivity::Four, &mut grid);
    assert_eq!(stats.tiles.background, 64);
    assert_eq!(stats.tiles.total(), 64);
}
