//! Corollary 4 integration tests: component folds checked against brute
//! force over random images, and the "minimum of any initial labeling"
//! generalization the paper states.

use proptest::prelude::*;
use slap_repro::cc::aggregate::{component_fold, Fold, MaxFold, MinFold, SumFold};
use slap_repro::image::{fast_labels, gen};
use std::collections::HashMap;

/// Brute-force fold for comparison.
fn brute<F: Fold>(
    img: &slap_repro::image::Bitmap,
    labels: &slap_repro::image::LabelGrid,
    values: &dyn Fn(usize, usize) -> F::Value,
) -> HashMap<u32, F::Value> {
    let mut out: HashMap<u32, F::Value> = HashMap::new();
    for (r, c) in img.iter_ones_colmajor() {
        let l = labels.get(r, c);
        let e = out.entry(l).or_insert_with(F::identity);
        *e = F::combine(*e, values(r, c));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn folds_match_brute_force(
        rows in 1usize..20,
        cols in 1usize..20,
        density in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let img = gen::uniform_random(rows, cols, density, seed);
        let labels = fast_labels(&img);
        // arbitrary initial values derived from coordinates
        let vals = move |r: usize, c: usize| ((r * 31 + c * 17 + 5) % 97) as u64;

        let min = component_fold::<MinFold>(&img, &labels, &vals);
        let expect_min = brute::<MinFold>(&img, &labels, &vals);
        prop_assert_eq!(min.per_component.len(), expect_min.len());
        for (l, v) in expect_min {
            prop_assert_eq!(min.value_of(l), Some(v));
        }

        let max = component_fold::<MaxFold>(&img, &labels, &vals);
        for (l, v) in brute::<MaxFold>(&img, &labels, &vals) {
            prop_assert_eq!(max.value_of(l), Some(v));
        }

        let sum = component_fold::<SumFold>(&img, &labels, &vals);
        for (l, v) in brute::<SumFold>(&img, &labels, &vals) {
            prop_assert_eq!(sum.value_of(l), Some(v));
        }
    }

    #[test]
    fn min_of_positions_reproduces_component_labels(
        rows in 2usize..20,
        cols in 2usize..20,
        density in 0.2f64..0.8,
        seed in 0u64..500,
    ) {
        // The paper's headline instance of Corollary 4: with column-major
        // positions as initial labels, each component's fold equals its label.
        let img = gen::uniform_random(rows, cols, density, seed);
        let labels = fast_labels(&img);
        let run = component_fold::<MinFold>(&img, &labels, &move |r, c| (c * rows + r) as u64);
        for &(label, v) in &run.per_component {
            prop_assert_eq!(v, label as u64);
        }
    }
}

#[test]
fn fold_metrics_stay_linear_in_n() {
    let mut ratios = Vec::new();
    for n in [32usize, 64, 128] {
        let img = gen::blobs(n, n, n / 4 + 1, (n / 16).max(2), 3);
        let labels = fast_labels(&img);
        let run = component_fold::<SumFold>(&img, &labels, &|_, _| 1u64);
        ratios.push(run.metrics.total_steps as f64 / n as f64);
    }
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 2.0,
        "fold steps drift superlinearly: {ratios:?}"
    );
}

#[test]
fn custom_associative_op_via_sum_of_squares() {
    // any commutative+associative op works; emulate "sum of squares"
    struct SumSq;
    impl Fold for SumSq {
        type Value = u64;
        fn identity() -> u64 {
            0
        }
        fn combine(a: u64, b: u64) -> u64 {
            a + b
        }
    }
    let img = gen::blobs(32, 32, 6, 4, 9);
    let labels = fast_labels(&img);
    let vals = |r: usize, c: usize| ((r + c) as u64).pow(2);
    let run = component_fold::<SumSq>(&img, &labels, &vals);
    for (l, v) in brute::<SumSq>(&img, &labels, &vals) {
        assert_eq!(run.value_of(l), Some(v));
    }
}
