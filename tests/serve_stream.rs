//! Live-server differential suite for protocol v2: `STREAM` feature
//! records from a real `slapd` over real sockets must agree with the
//! whole-grid `component_features` oracle for every generator family and
//! both connectivities; v1 clients keep working unchanged against the v2
//! server; and frames above the routing threshold go out-of-core with
//! carried state bounded by the row width.

use slap_repro::cc::features::{component_features, Features};
use slap_repro::image::{fast_labels_conn, gen, Bitmap, Connectivity};
use slap_repro::serve::{Client, ClientError, ServeConfig, Server, WireError};

/// Per-component `(label, features)` oracle from a whole-grid labeling,
/// sorted by label.
fn reference(img: &Bitmap, conn: Connectivity) -> Vec<(u32, Features)> {
    let labels = fast_labels_conn(img, conn);
    component_features(img, &labels, conn).per_component
}

/// The same pairs reconstructed from a live `STREAM` response.
fn streamed(client: &mut Client, img: &Bitmap) -> Vec<(u32, Features)> {
    let ok = client.label_stream(img).expect("streamed job must succeed");
    assert_eq!((ok.rows, ok.cols), (img.rows(), img.cols()));
    assert_eq!(ok.components, ok.records.len(), "one record per component");
    let mut per: Vec<(u32, Features)> = ok
        .records
        .iter()
        .map(|rec| (rec.label(img.rows()) as u32, Features::from(*rec)))
        .collect();
    per.sort_unstable_by_key(|&(label, _)| label);
    per
}

#[test]
fn stream_records_match_component_features_for_every_family() {
    for conn in [Connectivity::Four, Connectivity::Eight] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                conn,
                workers: 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr());
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 48, 23).unwrap();
            assert_eq!(
                streamed(&mut client, &img),
                reference(&img, conn),
                "workload {name} conn={conn:?}"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.jobs_streamed as usize, gen::WORKLOADS.len());
        assert_eq!(stats.jobs_ooc, 0, "48×48 stays under the routing threshold");
        assert!(
            stats.peak_carried_runs as usize <= 48 / 2 + 1,
            "in-core streaming still reports O(cols) carried state: {}",
            stats.peak_carried_runs
        );
    }
}

#[test]
fn v1_clients_pass_unchanged_against_the_v2_server() {
    // The compat row: a client that never says hello gets v1 grids, bit
    // identical to the fast engine, across every generator family.
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr());
    for name in gen::WORKLOADS {
        let img = gen::by_name(name, 32, 17).unwrap();
        let ok = client.label(&img).expect("v1 job must succeed");
        let labels = fast_labels_conn(&img, Connectivity::Four);
        assert_eq!(ok.labels, labels.as_slice(), "workload {name}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.jobs_ok as usize, gen::WORKLOADS.len());
    assert_eq!(stats.jobs_streamed, 0, "no hello, no records");
}

#[test]
fn oversize_frames_route_out_of_core_with_bounded_carried_state() {
    let n = 64usize;
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            max_pixels: 256,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr());
    let img = gen::by_name("maze", n, 7).unwrap();

    // Grid mode refuses the frame with an actionable detail naming the
    // cap and the escape hatch...
    match client.label(&img) {
        Err(ClientError::Rejected { code, detail }) => {
            assert_eq!(code, WireError::TooLarge);
            assert!(detail.contains("256"), "detail names the cap: {detail}");
            assert!(
                detail.contains("stream mode"),
                "detail routes around: {detail}"
            );
        }
        other => panic!("expected too-large, got {other:?}"),
    }

    // ...and stream mode serves the very same frame out-of-core, exactly.
    assert_eq!(
        streamed(&mut client, &img),
        reference(&img, Connectivity::Four)
    );

    let stats = server.shutdown();
    assert_eq!(stats.jobs_ooc, 1, "the oversize frame went out-of-core");
    assert_eq!(stats.jobs_streamed, 1);
    assert!(
        stats.peak_carried_runs as usize <= n / 2 + 1,
        "carried state stayed O(cols + live): {}",
        stats.peak_carried_runs
    );
}
