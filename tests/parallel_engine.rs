//! Engine-specific differential coverage for the strip-parallel fast
//! engine: seam-adversarial shapes at thread counts 1/2/4/8 under both
//! connectivities, word-boundary widths, and a cross-check of the seam pass
//! against `slap_cc::stitch::stitch_bands` — an independent implementation
//! of the paper's stitch argument rotated to horizontal seams.
//!
//! The family × connectivity × thread-count bit-identity matrix (and the
//! warm-session reuse checks) live in the registry-driven harness
//! `tests/engine_matrix.rs`; this file keeps only what is specific to the
//! seam machinery.

use slap_repro::cc::stitch::stitch_bands;
use slap_repro::image::{
    bfs_labels_conn, fast_labels_conn, gen, parallel_labels_conn, Bitmap, Connectivity,
};

const THREADS: &[usize] = &[1, 2, 4, 8];

/// Asserts the parallel engine agrees exactly with both references on `img`
/// at every thread count.
fn check_parallel(img: &Bitmap, conn: Connectivity, what: &str) {
    let truth = bfs_labels_conn(img, conn);
    assert_eq!(
        fast_labels_conn(img, conn),
        truth,
        "fast vs oracle: {what} ({conn})"
    );
    for &t in THREADS {
        assert_eq!(
            parallel_labels_conn(img, conn, t),
            truth,
            "parallel@{t} vs oracle: {what} ({conn})"
        );
    }
}

#[test]
fn adversarial_shapes_agree_at_every_thread_count() {
    let shapes: &[(&str, Bitmap)] = &[
        ("full", gen::full(24, 24)),
        ("empty", Bitmap::new(24, 24)),
        ("comb", gen::double_comb(24, 24, 2)),
        ("tournament", gen::tournament(24, 48, 2)),
        ("vertical-line", {
            // One column crossing every strip seam.
            let mut bm = Bitmap::new(32, 8);
            for r in 0..32 {
                bm.set(r, 3, true);
            }
            bm
        }),
        ("seam-hugging-runs", {
            // Alternating rows: every strip boundary is a dense seam.
            let mut bm = Bitmap::new(16, 16);
            for r in 0..16 {
                for c in (r % 2..16).step_by(2) {
                    bm.set(r, c, true);
                }
            }
            bm
        }),
    ];
    for conn in [Connectivity::Four, Connectivity::Eight] {
        for (what, img) in shapes {
            check_parallel(img, conn, what);
        }
    }
}

#[test]
fn word_boundary_widths_agree_at_every_thread_count() {
    for cols in [63usize, 64, 65] {
        let img = gen::uniform_random(33, cols, 0.5, cols as u64);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            check_parallel(&img, conn, &format!("random {cols}w"));
        }
    }
}

/// Crops rows `lo..hi` of `img` into a standalone band bitmap.
fn band(img: &Bitmap, lo: usize, hi: usize) -> Bitmap {
    let mut out = Bitmap::new(hi - lo, img.cols());
    for r in lo..hi {
        for c in 0..img.cols() {
            if img.get(r, c) {
                out.set(r - lo, c, true);
            }
        }
    }
    out
}

#[test]
fn seam_logic_agrees_with_the_generalized_band_stitch() {
    // Independent cross-check of the seam pass: label the two halves of the
    // image separately, merge them with slap_cc's band stitch (which shares
    // no code with the run-universe seam unions), and compare against the
    // parallel engine's two-strip output.
    for name in ["random50", "blobs", "maze", "spiral", "comb"] {
        let img = gen::by_name(name, 26, 3).unwrap();
        let split = img.rows() / 2;
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let top = fast_labels_conn(&band(&img, 0, split), conn);
            let bottom = fast_labels_conn(&band(&img, split, img.rows()), conn);
            let stitched = stitch_bands(&top, &bottom, conn);
            assert_eq!(
                parallel_labels_conn(&img, conn, 2),
                stitched,
                "workload {name} ({conn})"
            );
        }
    }
}

#[test]
fn many_strips_stress_the_seam_loser_prepass() {
    // A component snaking through every strip chains seam unions across all
    // boundaries — the worst case for the flatten pre-pass that finalizes
    // seam losers before the per-strip parallel sweeps. High thread counts
    // on a short image maximize seams per row.
    let mut img = Bitmap::new(64, 9);
    for r in 0..64 {
        img.set(r, 4, true); // spine through every seam
        img.set(r, (r * 3) % 9, true); // satellite pixels joining per row
    }
    for conn in [Connectivity::Four, Connectivity::Eight] {
        for t in [2usize, 3, 7, 16, 64] {
            assert_eq!(
                parallel_labels_conn(&img, conn, t),
                bfs_labels_conn(&img, conn),
                "threads={t} ({conn})"
            );
        }
    }
}
