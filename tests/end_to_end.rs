//! Cross-crate differential tests: every labeler in the workspace must agree
//! with every other on every workload, and Algorithm CC must be *exact*
//! (identical labels to the oracle, not merely the same partition) under
//! every union–find implementation and variant combination.

use proptest::prelude::*;
use slap_repro::baselines::mesh::mesh_min_propagation;
use slap_repro::baselines::{
    divide_conquer_labels, naive_slap_labels, scanline_labels, two_pass_labels,
};
use slap_repro::cc::{label_components_kind, CcOptions, ForwardPolicy};
use slap_repro::image::{fast_labels, gen, Bitmap};
use slap_repro::unionfind::UfKind;

#[test]
fn all_labelers_agree_on_all_workloads() {
    for name in gen::WORKLOADS {
        let img = gen::by_name(name, 28, 5).unwrap();
        let truth = fast_labels(&img);
        assert_eq!(two_pass_labels(&img), truth, "two_pass on {name}");
        assert_eq!(scanline_labels(&img), truth, "scanline on {name}");
        assert_eq!(naive_slap_labels(&img).0, truth, "naive on {name}");
        assert_eq!(divide_conquer_labels(&img).0, truth, "d&c on {name}");
        assert_eq!(mesh_min_propagation(&img).0, truth, "mesh on {name}");
        for &kind in UfKind::ALL {
            let run = label_components_kind(&img, kind, &CcOptions::default());
            assert_eq!(run.labels, truth, "cc/{kind} on {name}");
        }
    }
}

#[test]
fn cc_is_exact_on_multiple_sizes_and_seeds() {
    for &n in &[8usize, 17, 33, 64] {
        for seed in 0..3u64 {
            let img = gen::uniform_random(n, n, 0.5, seed);
            let truth = fast_labels(&img);
            let run = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
            assert_eq!(run.labels, truth, "n={n} seed={seed}");
        }
    }
}

#[test]
fn cc_handles_extreme_aspect_ratios() {
    for (rows, cols) in [(1usize, 64usize), (64, 1), (2, 33), (33, 2), (3, 128)] {
        let img = gen::uniform_random(rows, cols, 0.55, 9);
        let truth = fast_labels(&img);
        for &kind in &[UfKind::Tarjan, UfKind::Blum, UfKind::QuickFind] {
            let run = label_components_kind(&img, kind, &CcOptions::default());
            assert_eq!(run.labels, truth, "{rows}x{cols} {kind}");
        }
    }
}

#[test]
fn variant_matrix_is_exact_on_adversarial_images() {
    for name in ["comb", "fig3a", "tournament", "fan"] {
        let img = gen::by_name(name, 32, 2).unwrap();
        let truth = fast_labels(&img);
        for eager in [false, true] {
            for idle in [false, true] {
                for policy in [ForwardPolicy::OnImprovement, ForwardPolicy::Always] {
                    let opts = CcOptions {
                        eager_forward: eager,
                        idle_compression: idle,
                        forward_policy: policy,
                        ..CcOptions::default()
                    };
                    for &kind in &[UfKind::Tarjan, UfKind::RankHalving, UfKind::Blum] {
                        let run = label_components_kind(&img, kind, &opts);
                        assert_eq!(
                            run.labels, truth,
                            "{name} {kind} eager={eager} idle={idle} {policy:?}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cc_matches_oracle_on_random_images(
        rows in 1usize..24,
        cols in 1usize..24,
        density in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let img = gen::uniform_random(rows, cols, density, seed);
        let truth = fast_labels(&img);
        let run = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
        prop_assert_eq!(run.labels, truth);
    }

    #[test]
    fn blum_cc_matches_oracle_on_random_images(
        rows in 1usize..20,
        cols in 1usize..20,
        density in 0.2f64..0.8,
        seed in 0u64..1000,
    ) {
        let img = gen::uniform_random(rows, cols, density, seed);
        let truth = fast_labels(&img);
        let run = label_components_kind(&img, UfKind::Blum, &CcOptions::default());
        prop_assert_eq!(run.labels, truth);
    }

    #[test]
    fn oracles_agree_pairwise(
        rows in 1usize..20,
        cols in 1usize..20,
        density in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let img = gen::uniform_random(rows, cols, density, seed);
        let a = fast_labels(&img);
        prop_assert_eq!(&two_pass_labels(&img), &a);
        prop_assert_eq!(&scanline_labels(&img), &a);
    }
}

#[test]
fn pathological_single_pixel_patterns() {
    for art in [
        "#",
        ".",
        "#.",
        ".#",
        "#\n.",
        ".\n#",
        "#.#.#.#.#",
        "#\n.\n#\n.\n#",
    ] {
        let img = Bitmap::from_art(art);
        let truth = fast_labels(&img);
        for &kind in UfKind::ALL {
            let run = label_components_kind(&img, kind, &CcOptions::default());
            assert_eq!(run.labels, truth, "{kind} on {art:?}");
        }
    }
}
