//! Integration property tests for the workspace extensions: 8-connectivity,
//! the run-length pass variant, feature folds, the hypercube baseline, and
//! Rem's union–find — every one differentially tested against the oracle or
//! the paper-faithful implementation on random images.

use proptest::prelude::*;
use slap_repro::cc::features::{component_features, euler_number};
use slap_repro::cc::{
    label_components, label_components_kind, label_components_runs, CcOptions, ForwardPolicy,
};
use slap_repro::hypercube::sv_labels_conn;
use slap_repro::image::{fast_labels_conn, gen, Bitmap, Connectivity};
use slap_repro::unionfind::{RemUf, TarjanUf, UfKind, UnionFind};

fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
    (1usize..34, 1usize..34, 0.0f64..1.0, 0u64..10_000)
        .prop_map(|(r, c, d, s)| gen::uniform_random(r, c, d, s))
}

fn arb_conn() -> impl Strategy<Value = Connectivity> {
    prop::sample::select(vec![Connectivity::Four, Connectivity::Eight])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cc_matches_oracle_under_both_connectivities(bm in arb_bitmap(), conn in arb_conn()) {
        let opts = CcOptions { connectivity: conn, ..CcOptions::default() };
        let truth = fast_labels_conn(&bm, conn);
        let run = label_components::<TarjanUf>(&bm, &opts);
        prop_assert_eq!(run.labels, truth);
    }

    #[test]
    fn runs_variant_is_bit_identical_to_pixel_variant(
        bm in arb_bitmap(),
        conn in arb_conn(),
        eager in any::<bool>(),
        idle in any::<bool>(),
    ) {
        let opts = CcOptions {
            connectivity: conn,
            eager_forward: eager,
            idle_compression: idle,
            ..CcOptions::default()
        };
        let pixel = label_components::<TarjanUf>(&bm, &opts);
        let runs = label_components_runs::<TarjanUf>(&bm, &opts);
        prop_assert_eq!(runs.labels, pixel.labels);
    }

    #[test]
    fn eight_conn_components_coarsen_four_conn(bm in arb_bitmap()) {
        let four = fast_labels_conn(&bm, Connectivity::Four);
        let eight = fast_labels_conn(&bm, Connectivity::Eight);
        prop_assert!(eight.component_count() <= four.component_count());
        // every 4-component maps into exactly one 8-component
        let mut map: std::collections::HashMap<u32, u32> = Default::default();
        for (r, c) in bm.iter_ones_colmajor() {
            let prev = map.insert(four.get(r, c), eight.get(r, c));
            if let Some(p) = prev {
                prop_assert_eq!(p, eight.get(r, c));
            }
        }
    }

    #[test]
    fn hypercube_sv_matches_oracle(bm in arb_bitmap(), conn in arb_conn()) {
        let (labels, report) = sv_labels_conn(&bm, conn);
        prop_assert_eq!(labels, fast_labels_conn(&bm, conn));
        prop_assert!(report.iterations >= 1);
        prop_assert!(report.pes >= (bm.rows() * bm.cols()) as u64);
    }

    #[test]
    fn feature_areas_sum_to_foreground(bm in arb_bitmap(), conn in arb_conn()) {
        let labels = fast_labels_conn(&bm, conn);
        let run = component_features(&bm, &labels, conn);
        let total: u64 = run.per_component.iter().map(|&(_, f)| f.area).sum();
        prop_assert_eq!(total as usize, bm.count_ones());
        for &(label, f) in &run.per_component {
            prop_assert!(f.min_row <= f.max_row);
            prop_assert!(f.min_col <= f.max_col);
            prop_assert!(f.area <= (f.width() as u64) * (f.height() as u64));
            // a component's label is the position of its first pixel, which
            // lies inside the bounding box
            let (lr, lc) = ((label as usize) % bm.rows(), (label as usize) / bm.rows());
            prop_assert!((f.min_row as usize..=f.max_row as usize).contains(&lr));
            prop_assert!((f.min_col as usize..=f.max_col as usize).contains(&lc));
        }
    }

    #[test]
    fn feature_perimeter_bounds(bm in arb_bitmap()) {
        let labels = fast_labels_conn(&bm, Connectivity::Four);
        let run = component_features(&bm, &labels, Connectivity::Four);
        for &(_, f) in &run.per_component {
            // between the solid-rectangle minimum and the all-exposed maximum
            prop_assert!(f.perimeter <= 4 * f.area);
            prop_assert!(f.perimeter >= 2 * (f.width() as u64 + f.height() as u64));
        }
    }

    #[test]
    fn euler_equals_components_minus_holes(bm in arb_bitmap(), conn in arb_conn()) {
        // Euler number by quad counting vs. brute force: components minus
        // background components (under the dual adjacency) not touching the
        // border.
        let e = euler_number(&bm, conn).euler;
        let comps = fast_labels_conn(&bm, conn).component_count() as i64;
        let dual = match conn {
            Connectivity::Four => Connectivity::Eight,
            Connectivity::Eight => Connectivity::Four,
        };
        let inv = bm.invert();
        let bg = fast_labels_conn(&inv, dual);
        let mut all: std::collections::HashSet<u32> = Default::default();
        let mut border: std::collections::HashSet<u32> = Default::default();
        for (r, c) in inv.iter_ones_colmajor() {
            all.insert(bg.get(r, c));
            if r == 0 || c == 0 || r == bm.rows() - 1 || c == bm.cols() - 1 {
                border.insert(bg.get(r, c));
            }
        }
        let holes = (all.len() - border.len()) as i64;
        prop_assert_eq!(e, comps - holes);
    }

    #[test]
    fn rem_uf_matches_quickfind_partitions(
        ops in prop::collection::vec((0usize..24, 0usize..24), 0..80)
    ) {
        let mut rem = RemUf::with_elements(24);
        let mut reference = UfKind::QuickFind.build(24);
        for &(x, y) in &ops {
            rem.union_splice(x, y);
            reference.union(x, y);
        }
        prop_assert_eq!(rem.set_count(), reference.set_count());
        for x in 0..24 {
            for y in (x + 1)..24 {
                prop_assert_eq!(rem.same_set(x, y), reference.same_set(x, y));
            }
        }
    }

    #[test]
    fn all_uf_kinds_label_identically(bm in arb_bitmap(), conn in arb_conn()) {
        let opts = CcOptions { connectivity: conn, ..CcOptions::default() };
        let reference = label_components_kind(&bm, UfKind::IdealO1, &opts);
        for &kind in UfKind::ALL {
            let run = label_components_kind(&bm, kind, &opts);
            prop_assert_eq!(&run.labels, &reference.labels, "kind {}", kind);
        }
    }

    #[test]
    fn forward_policies_agree(bm in arb_bitmap(), conn in arb_conn()) {
        let a = label_components::<TarjanUf>(&bm, &CcOptions {
            connectivity: conn,
            forward_policy: ForwardPolicy::OnImprovement,
            ..CcOptions::default()
        });
        let b = label_components::<TarjanUf>(&bm, &CcOptions {
            connectivity: conn,
            forward_policy: ForwardPolicy::Always,
            ..CcOptions::default()
        });
        prop_assert_eq!(a.labels, b.labels);
    }
}

#[test]
fn extensions_compose_on_a_nontrivial_image() {
    // One deterministic end-to-end pass exercising everything at once:
    // 8-connectivity labeling on the run variant, features, Euler number,
    // and the hypercube baseline, all agreeing.
    let img = gen::by_name("maze", 40, 3).unwrap();
    let conn = Connectivity::Eight;
    let opts = CcOptions {
        connectivity: conn,
        ..CcOptions::default()
    };
    let truth = fast_labels_conn(&img, conn);
    let runs = label_components_runs::<TarjanUf>(&img, &opts);
    assert_eq!(runs.labels, truth);
    let (hyper, _) = sv_labels_conn(&img, conn);
    assert_eq!(hyper, truth);
    let feats = component_features(&img, &truth, conn);
    assert_eq!(feats.per_component.len(), truth.component_count());
    let e = euler_number(&img, conn);
    assert!(e.euler <= truth.component_count() as i64);
}
