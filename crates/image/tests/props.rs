//! Property tests for the image crate: geometric transform involutions,
//! column-view consistency, labeling invariants, and PBM robustness
//! (arbitrary bytes must parse to `Err`, never panic; well-formed images
//! must round-trip bit-exactly).

use proptest::prelude::*;
use slap_image::bitmap::{dilate_words_into, for_each_diagonal_pair};
use slap_image::pbm::{FramedPbmReader, PbmRowReader};
use slap_image::stream::{BitmapRows, RowSource, StreamGridLabeler};
use slap_image::{
    bfs_labels, bfs_labels_conn, fast_labels_conn, gen, label_out_of_core, label_stream, morph,
    parallel_labels_conn, pbm, tiled_labels_conn, Bitmap, Connectivity, FastLabeler, LabelGrid,
    ParallelLabeler,
};

/// The retired two-pointer diagonal join, kept as the executable
/// specification of the word-level dilated-AND sweep that replaced it at
/// every 8-connectivity merge site (in-strip row merge, strip/tile seams,
/// the out-of-core band merge, and the streaming sweep): for each run of
/// `cur`, every run of `prev` within horizontal reach 1, in column order,
/// with the `p = q - 1` backstep so a prev run bridging two adjacent cur
/// runs is revisited. Runs are `(start, end)` inclusive and column-sorted.
fn two_pointer_diagonal_pairs(cur: &[(u32, u32)], prev: &[(u32, u32)]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut p = 0usize;
    for (c, &(a, b)) in cur.iter().enumerate() {
        let aw = a.saturating_sub(1);
        let bw = b + 1;
        while p < prev.len() && prev[p].1 < aw {
            p += 1;
        }
        let mut q = p;
        while q < prev.len() && prev[q].0 <= bw {
            pairs.push((c, q));
            q += 1;
        }
        if q > p {
            p = q - 1;
        }
    }
    pairs
}

/// Collects the (cur run, prev run) pairs the ported word-level kernel
/// enumerates for one row boundary of `bm`.
fn dilated_and_diagonal_pairs(bm: &Bitmap, r: usize) -> Vec<(usize, usize)> {
    let pack = |list: &[(u32, u32)]| -> Vec<u64> {
        list.iter()
            .map(|&(a, b)| (u64::from(a) << 32) | u64::from(b))
            .collect()
    };
    let (cur, prev) = (row_runs(bm, r), row_runs(bm, r - 1));
    let mut dil = Vec::new();
    dilate_words_into(bm.row_words(r - 1), bm.cols(), &mut dil);
    let and_words: Vec<u64> = bm
        .row_words(r)
        .iter()
        .zip(&dil)
        .map(|(&a, &b)| a & b)
        .collect();
    let mut pairs = Vec::new();
    for_each_diagonal_pair(&and_words, bm.cols(), &pack(&cur), &pack(&prev), |c, q| {
        pairs.push((c, q));
    });
    pairs
}

fn row_runs(bm: &Bitmap, r: usize) -> Vec<(u32, u32)> {
    let mut runs = Vec::new();
    bm.for_each_row_run(r, |a, b| runs.push((a, b)));
    runs
}

fn arb_bitmap() -> impl Strategy<Value = Bitmap> {
    (1usize..40, 1usize..40, 0.0f64..1.0, 0u64..10_000)
        .prop_map(|(r, c, d, s)| gen::uniform_random(r, c, d, s))
}

/// Like [`arb_bitmap`] but with widths straddling the 64-bit word boundary,
/// the regime where the packed-word scanning has its edge cases.
fn arb_wide_bitmap() -> impl Strategy<Value = Bitmap> {
    (1usize..12, 56usize..136, 0.0f64..1.0, 0u64..10_000)
        .prop_map(|(r, c, d, s)| gen::uniform_random(r, c, d, s))
}

fn arb_conn() -> impl Strategy<Value = Connectivity> {
    prop::sample::select(vec![Connectivity::Four, Connectivity::Eight])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flip_and_transpose_are_involutions(bm in arb_bitmap()) {
        prop_assert_eq!(bm.flip_horizontal().flip_horizontal(), bm.clone());
        prop_assert_eq!(bm.transpose().transpose(), bm.clone());
        prop_assert_eq!(bm.invert().invert(), bm);
    }

    #[test]
    fn columns_view_agrees_with_bitmap(bm in arb_bitmap()) {
        let cols = bm.columns();
        for c in 0..bm.cols() {
            for r in 0..bm.rows() {
                prop_assert_eq!(cols.get(c, r), bm.get(r, c));
            }
        }
    }

    #[test]
    fn component_count_is_flip_invariant(bm in arb_bitmap()) {
        let a = bfs_labels(&bm).component_count();
        let b = bfs_labels(&bm.flip_horizontal()).component_count();
        let c = bfs_labels(&bm.transpose()).component_count();
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }

    #[test]
    fn oracle_labels_are_min_column_major(bm in arb_bitmap()) {
        let labels = bfs_labels(&bm);
        // every component's label equals the min position over its pixels
        let mut seen_min: std::collections::HashMap<u32, u32> = Default::default();
        for c in 0..bm.cols() {
            for r in 0..bm.rows() {
                if bm.get(r, c) {
                    let l = labels.get(r, c);
                    let pos = bm.position(r, c);
                    seen_min.entry(l).or_insert(pos);
                }
            }
        }
        for (l, first_pos) in seen_min {
            prop_assert_eq!(l, first_pos);
        }
    }

    #[test]
    fn canonicalize_is_idempotent_and_partition_preserving(bm in arb_bitmap()) {
        let labels = bfs_labels(&bm);
        let canon = labels.canonicalize();
        prop_assert!(canon.same_partition(&labels));
        prop_assert_eq!(canon.canonicalize(), canon);
    }

    #[test]
    fn fast_engine_is_bit_identical_to_oracle(bm in arb_bitmap(), conn in arb_conn()) {
        prop_assert_eq!(fast_labels_conn(&bm, conn), bfs_labels_conn(&bm, conn));
    }

    #[test]
    fn fast_engine_handles_word_boundary_widths(bm in arb_wide_bitmap(), conn in arb_conn()) {
        prop_assert_eq!(fast_labels_conn(&bm, conn), bfs_labels_conn(&bm, conn));
    }

    #[test]
    fn reused_fast_labeler_matches_fresh_calls(
        a in arb_bitmap(),
        b in arb_wide_bitmap(),
        conn in arb_conn(),
    ) {
        // Scratch state left by one image must never leak into the next.
        let mut labeler = FastLabeler::new();
        let mut grid = LabelGrid::new_background(1, 1);
        labeler.label_into(&a, conn, &mut grid);
        prop_assert_eq!(&grid, &bfs_labels_conn(&a, conn));
        labeler.label_into(&b, conn, &mut grid);
        prop_assert_eq!(&grid, &bfs_labels_conn(&b, conn));
        labeler.label_into(&a, conn, &mut grid);
        prop_assert_eq!(&grid, &bfs_labels_conn(&a, conn));
        prop_assert_eq!(
            labeler.count_components(&a, conn),
            grid.component_count()
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_at_any_thread_count(
        bm in arb_bitmap(),
        conn in arb_conn(),
        threads in 1usize..9,
    ) {
        prop_assert_eq!(
            parallel_labels_conn(&bm, conn, threads),
            fast_labels_conn(&bm, conn)
        );
    }

    #[test]
    fn parallel_engine_handles_word_boundary_widths(
        bm in arb_wide_bitmap(),
        conn in arb_conn(),
        threads in 2usize..7,
    ) {
        prop_assert_eq!(
            parallel_labels_conn(&bm, conn, threads),
            bfs_labels_conn(&bm, conn)
        );
    }

    #[test]
    fn reused_parallel_labeler_matches_fresh_calls(
        a in arb_bitmap(),
        b in arb_wide_bitmap(),
        conn in arb_conn(),
        threads in 2usize..7,
    ) {
        // Strip scratch left by one image must never leak into the next.
        let mut labeler = ParallelLabeler::new(threads);
        let mut grid = LabelGrid::new_background(1, 1);
        labeler.label_into(&a, conn, &mut grid);
        prop_assert_eq!(&grid, &bfs_labels_conn(&a, conn));
        labeler.label_into(&b, conn, &mut grid);
        prop_assert_eq!(&grid, &bfs_labels_conn(&b, conn));
        labeler.label_into(&a, conn, &mut grid);
        prop_assert_eq!(&grid, &bfs_labels_conn(&a, conn));
    }

    #[test]
    fn streamed_components_match_fast_labels(bm in arb_bitmap(), conn in arb_conn()) {
        // Replaying the rows one at a time must retire exactly the fast
        // engine's components: same count, same paper labels, same areas.
        let labels = fast_labels_conn(&bm, conn);
        let run = label_stream(&mut BitmapRows::new(&bm), conn).unwrap();
        let mut got: Vec<(u64, u64)> = run
            .components
            .iter()
            .map(|c| (c.label(bm.rows()), c.area))
            .collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = labels
            .component_stats()
            .iter()
            .map(|s| (u64::from(s.label), s.pixels as u64))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn streamed_components_handle_word_boundary_widths(
        bm in arb_wide_bitmap(),
        conn in arb_conn(),
    ) {
        let run = label_stream(&mut BitmapRows::new(&bm), conn).unwrap();
        prop_assert_eq!(
            run.components.len(),
            fast_labels_conn(&bm, conn).component_count()
        );
        prop_assert_eq!(run.stats.pixels, bm.count_ones() as u64);
        // The memory contract holds on arbitrary random streams too.
        prop_assert!(run.stats.peak_nodes <= bm.cols() + 1);
        prop_assert!(run.stats.peak_frontier_runs <= bm.cols() / 2 + 1);
    }

    #[test]
    fn tiled_engine_is_bit_identical_at_any_grid(
        bm in arb_bitmap(),
        conn in arb_conn(),
        tiles_y in 1usize..5,
        tiles_x in 1usize..5,
        threads in 1usize..5,
    ) {
        prop_assert_eq!(
            tiled_labels_conn(&bm, conn, tiles_y, tiles_x, threads),
            fast_labels_conn(&bm, conn)
        );
    }

    #[test]
    fn out_of_core_retires_the_streamed_components(
        bm in arb_bitmap(),
        conn in arb_conn(),
        band_rows in 1usize..9,
        tiles_x in 1usize..4,
    ) {
        // Banded relabeling with carried seam state must retire exactly the
        // record set of the row-at-a-time streaming engine.
        let want = label_stream(&mut BitmapRows::new(&bm), conn).unwrap();
        let got = label_out_of_core(&mut BitmapRows::new(&bm), conn, band_rows, tiles_x).unwrap();
        let mut a = want.components;
        let mut b = got.components;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(got.stats.peak_carried_runs <= bm.cols() / 2 + 1);
    }

    #[test]
    fn dilation_never_increases_component_count(bm in arb_bitmap(), conn in arb_conn()) {
        // Dilation only adds pixels adjacent (under `conn`) to existing
        // foreground, so components can merge or grow but never split and
        // never appear from nothing: labeling after dilating (same
        // adjacency for both) cannot see more components.
        let before = fast_labels_conn(&bm, conn).component_count();
        let after = fast_labels_conn(&morph::dilate(&bm, conn), conn).component_count();
        prop_assert!(
            after <= before,
            "dilation raised the component count {} -> {}",
            before,
            after
        );
    }

    #[test]
    fn ported_diagonal_kernel_equals_the_two_pointer_join(bm in arb_wide_bitmap()) {
        // The word-level dilated-AND sweep now drives every 8-connectivity
        // merge — including the fast engine's in-strip row merge and the
        // stream engine's sweep — so it must enumerate exactly the pair
        // sequence of the two-pointer join it retired, on every row
        // boundary of an arbitrary bitmap.
        for r in 1..bm.rows() {
            prop_assert_eq!(
                dilated_and_diagonal_pairs(&bm, r),
                two_pointer_diagonal_pairs(&row_runs(&bm, r), &row_runs(&bm, r - 1)),
                "row boundary {}..{}", r - 1, r
            );
        }
    }

    #[test]
    fn in_strip_eight_merge_is_bit_identical_on_arbitrary_bitmaps(bm in arb_wide_bitmap()) {
        // End-to-end form of the kernel equivalence for the fast engine's
        // in-strip merge: 8-connectivity labels through the ported kernel
        // must still be the oracle's, bit for bit.
        prop_assert_eq!(
            fast_labels_conn(&bm, Connectivity::Eight),
            bfs_labels_conn(&bm, Connectivity::Eight)
        );
    }

    #[test]
    fn stream_merge_sweep_is_bit_identical_on_arbitrary_bitmaps(bm in arb_wide_bitmap()) {
        // Same end-to-end check for the stream engine's merge sweep.
        let mut grid = LabelGrid::new_background(1, 1);
        StreamGridLabeler::new().label_into(&bm, Connectivity::Eight, &mut grid);
        prop_assert_eq!(grid, bfs_labels_conn(&bm, Connectivity::Eight));
    }

    #[test]
    fn word_run_scan_agrees_with_pixel_probes(bm in arb_wide_bitmap()) {
        for r in 0..bm.rows() {
            let mut runs: Vec<(u32, u32)> = Vec::new();
            bm.for_each_row_run(r, |a, b| runs.push((a, b)));
            prop_assert_eq!(runs.len(), bm.count_row_runs(r));
            // reconstruct the row from its runs
            let mut row = vec![false; bm.cols()];
            for (a, b) in runs {
                for cell in &mut row[a as usize..=b as usize] {
                    prop_assert!(!*cell, "overlapping runs");
                    *cell = true;
                }
            }
            for (c, &set) in row.iter().enumerate() {
                prop_assert_eq!(set, bm.get(r, c));
            }
        }
    }

    #[test]
    fn pbm_plain_roundtrip(bm in arb_bitmap()) {
        let mut buf = Vec::new();
        pbm::write_plain(&bm, &mut buf).unwrap();
        prop_assert_eq!(pbm::read(&buf[..]).unwrap(), bm);
    }

    #[test]
    fn pbm_raw_roundtrip(bm in arb_bitmap()) {
        let mut buf = Vec::new();
        pbm::write_raw(&bm, &mut buf).unwrap();
        prop_assert_eq!(pbm::read(&buf[..]).unwrap(), bm);
    }

    #[test]
    fn pbm_reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = pbm::read(&bytes[..]); // Err is fine; panic is not
    }

    #[test]
    fn pbm_row_reader_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // The incremental reader must reject byte soup with a typed error at
        // header time, or — if the soup happens to spell a valid header —
        // fail row-by-row without ever panicking or spinning.
        if let Ok(mut rd) = PbmRowReader::new(&bytes[..]) {
            let mut words = Vec::new();
            for _ in 0..=rd.rows() {
                match rd.next_row(&mut words) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => break,
                }
            }
        }
    }

    #[test]
    fn framed_reader_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Same contract for the framed stream: every frame either yields a
        // drainable row reader or a typed error, never a panic, and the
        // stream always terminates.
        let mut frames = FramedPbmReader::new(&bytes[..]);
        for _ in 0..16 {
            match frames.next_frame() {
                Ok(Some(mut frame)) => {
                    let mut words = Vec::new();
                    while matches!(frame.next_row(&mut words), Ok(true)) {}
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn framed_reader_never_panics_on_lying_prefixes(
        lie in 0u64..1_000_000,
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // A syntactically valid length prefix that disagrees with the bytes
        // that follow (short body, or a lie about a well-formed frame) must
        // surface as Err, not a panic or a bogus frame.
        let mut buf = format!("{lie}\n").into_bytes();
        buf.extend(&body);
        let mut frames = FramedPbmReader::new(&buf[..]);
        if let Ok(Some(mut frame)) = frames.next_frame() {
            let mut words = Vec::new();
            while matches!(frame.next_row(&mut words), Ok(true)) {}
        }
    }

    #[test]
    fn pbm_reader_never_panics_on_near_valid(
        magic in prop::sample::select(vec!["P1", "P4", "P2"]),
        w in 0usize..40,
        h in 0usize..40,
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut buf = format!("{magic}\n{w} {h}\n").into_bytes();
        buf.extend(body);
        let _ = pbm::read(&buf[..]);
    }

    #[test]
    fn generators_stay_in_bounds(
        name in prop::sample::select(gen::WORKLOADS.to_vec()),
        n in 4usize..40,
        seed in 0u64..100,
    ) {
        let bm = gen::by_name(name, n, seed).unwrap();
        prop_assert_eq!(bm.rows(), n);
        prop_assert_eq!(bm.cols(), n);
        // label grid construction must accept every generator output
        let labels = bfs_labels(&bm);
        prop_assert!(labels.component_count() <= bm.count_ones());
    }
}

#[test]
fn background_sentinel_is_not_a_valid_label() {
    // the sentinel must be outside the position space asserted at
    // construction (rows * cols < u32::MAX)
    let g = LabelGrid::new_background(10, 10);
    assert_eq!(g.get(0, 0), LabelGrid::BACKGROUND);
    assert!(u64::from(LabelGrid::BACKGROUND) > 100);
}
