//! Bit-packed binary images and their column-major views.

/// A rectangular binary image stored row-major, 64 pixels per word.
///
/// Rows and columns are numbered from 0, top-to-bottom and left-to-right,
/// matching the paper's convention. A set bit is a foreground (`1`) pixel.
///
/// The *column-major position* of pixel `(row, col)` is
/// `col * rows + row`; the paper uses these positions both as the initial
/// pixel labels and as the final component labels (each component is labeled
/// with the least position of its pixels).
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero image with the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "image dimensions must be positive");
        let words_per_row = cols.div_ceil(64);
        Bitmap {
            rows,
            cols,
            words_per_row,
            bits: vec![0u64; rows * words_per_row],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (= number of SLAP processing elements used).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the image contains zero pixels (never: dimensions are
    /// positive), kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> (usize, u64) {
        debug_assert!(row < self.rows && col < self.cols);
        (row * self.words_per_row + col / 64, 1u64 << (col % 64))
    }

    /// Reads pixel `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        let (w, m) = self.index(row, col);
        self.bits[w] & m != 0
    }

    /// Writes pixel `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        let (w, m) = self.index(row, col);
        if value {
            self.bits[w] |= m;
        } else {
            self.bits[w] &= !m;
        }
    }

    /// The column-major position `col * rows + row`, the paper's initial
    /// label for pixel `(row, col)`.
    #[inline]
    pub fn position(&self, row: usize, col: usize) -> u32 {
        (col * self.rows + row) as u32
    }

    /// Number of foreground pixels.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of foreground pixels.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.len() as f64
    }

    /// Builds an image from ASCII art. `'1'` and `'#'` are foreground;
    /// `'0'`, `'.'` and `' '` are background. Lines may be ragged; the image
    /// width is the longest line and short lines are padded with background.
    /// Empty lines (and leading/trailing blank lines) are ignored.
    ///
    /// # Panics
    /// Panics on characters outside the set above or if no non-empty line
    /// exists.
    pub fn from_art(art: &str) -> Self {
        let lines: Vec<&str> = art
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.trim().is_empty())
            .collect();
        assert!(!lines.is_empty(), "ASCII art image has no rows");
        let cols = lines.iter().map(|l| l.chars().count()).max().unwrap();
        let mut bm = Bitmap::new(lines.len(), cols);
        for (r, line) in lines.iter().enumerate() {
            for (c, ch) in line.chars().enumerate() {
                match ch {
                    '1' | '#' => bm.set(r, c, true),
                    '0' | '.' | ' ' => {}
                    other => panic!("unexpected character {other:?} in ASCII art"),
                }
            }
        }
        bm
    }

    /// Renders the image as ASCII art (`#` foreground, `.` background),
    /// mainly for debugging and the examples.
    pub fn to_art(&self) -> String {
        let mut s = String::with_capacity(self.rows * (self.cols + 1));
        for r in 0..self.rows {
            for c in 0..self.cols {
                s.push(if self.get(r, c) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }

    /// Returns the horizontally mirrored image (column `c` becomes column
    /// `cols-1-c`). The right-connected labeling pass is implemented as a
    /// left-connected pass over the mirrored image.
    pub fn flip_horizontal(&self) -> Bitmap {
        let mut out = Bitmap::new(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(r, self.cols - 1 - c, true);
                }
            }
        }
        out
    }

    /// Returns the transposed image.
    pub fn transpose(&self) -> Bitmap {
        let mut out = Bitmap::new(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(c, r, true);
                }
            }
        }
        out
    }

    /// Returns the complement image (foreground and background swapped).
    pub fn invert(&self) -> Bitmap {
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.set(r, c, !self.get(r, c));
            }
        }
        out
    }

    /// Extracts the column-major packed view used by the SLAP simulator
    /// (PE `i` holds column `i`).
    pub fn columns(&self) -> Columns {
        let words_per_col = self.rows.div_ceil(64);
        let mut bits = vec![0u64; self.cols * words_per_col];
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    bits[c * words_per_col + r / 64] |= 1u64 << (r % 64);
                }
            }
        }
        Columns {
            rows: self.rows,
            cols: self.cols,
            words_per_col,
            bits,
        }
    }

    /// Iterates over all foreground pixel coordinates in column-major order
    /// (the order of the paper's initial labeling).
    pub fn iter_ones_colmajor(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.cols)
            .flat_map(move |c| (0..self.rows).map(move |r| (r, c)))
            .filter(move |&(r, c)| self.get(r, c))
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Bitmap({}x{})", self.rows, self.cols)?;
        if self.rows <= 64 && self.cols <= 64 {
            write!(f, "{}", self.to_art())
        } else {
            writeln!(f, "<{} ones>", self.count_ones())
        }
    }
}

/// Column-major packed view of a [`Bitmap`]: what each SLAP PE holds locally
/// after the row-by-row input phase.
#[derive(Clone, Debug)]
pub struct Columns {
    rows: usize,
    cols: usize,
    words_per_col: usize,
    bits: Vec<u64>,
}

impl Columns {
    /// Number of rows per column.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads pixel `(row, col)`.
    #[inline]
    pub fn get(&self, col: usize, row: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.bits[col * self.words_per_col + row / 64] & (1u64 << (row % 64)) != 0
    }

    /// The packed words of one column (bit `r % 64` of word `r / 64` is row
    /// `r`). Used when a PE program wants to scan runs word-at-a-time.
    #[inline]
    pub fn column_words(&self, col: usize) -> &[u64] {
        &self.bits[col * self.words_per_col..(col + 1) * self.words_per_col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(5, 7);
        assert_eq!(bm.rows(), 5);
        assert_eq!(bm.cols(), 7);
        assert_eq!(bm.count_ones(), 0);
        for r in 0..5 {
            for c in 0..7 {
                assert!(!bm.get(r, c));
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::new(3, 130); // crosses word boundaries
        bm.set(0, 0, true);
        bm.set(2, 129, true);
        bm.set(1, 64, true);
        assert!(bm.get(0, 0));
        assert!(bm.get(2, 129));
        assert!(bm.get(1, 64));
        assert_eq!(bm.count_ones(), 3);
        bm.set(1, 64, false);
        assert!(!bm.get(1, 64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn art_roundtrip() {
        let art = "##.\n.#.\n..#\n";
        let bm = Bitmap::from_art(art);
        assert_eq!(bm.rows(), 3);
        assert_eq!(bm.cols(), 3);
        assert_eq!(bm.to_art(), "##.\n.#.\n..#\n");
    }

    #[test]
    fn art_accepts_zero_one_and_pads_ragged_lines() {
        let bm = Bitmap::from_art("101\n1\n");
        assert_eq!(bm.cols(), 3);
        assert!(bm.get(0, 0) && !bm.get(0, 1) && bm.get(0, 2));
        assert!(bm.get(1, 0) && !bm.get(1, 1) && !bm.get(1, 2));
    }

    #[test]
    #[should_panic(expected = "unexpected character")]
    fn art_rejects_garbage() {
        Bitmap::from_art("1x\n");
    }

    #[test]
    fn flip_horizontal_mirrors_columns() {
        let bm = Bitmap::from_art("#..\n.#.\n");
        let f = bm.flip_horizontal();
        assert!(f.get(0, 2));
        assert!(f.get(1, 1));
        assert_eq!(f.count_ones(), 2);
        assert_eq!(f.flip_horizontal(), bm);
    }

    #[test]
    fn transpose_swaps_axes() {
        let bm = Bitmap::from_art("#.#\n...\n");
        let t = bm.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert!(t.get(0, 0));
        assert!(t.get(2, 0));
        assert_eq!(t.transpose(), bm);
    }

    #[test]
    fn invert_flips_every_pixel() {
        let bm = Bitmap::from_art("#.\n.#\n");
        let inv = bm.invert();
        assert_eq!(inv.count_ones(), 2);
        assert!(inv.get(0, 1) && inv.get(1, 0));
    }

    #[test]
    fn columns_view_matches_bitmap() {
        let mut bm = Bitmap::new(70, 5); // rows cross a word boundary
        bm.set(0, 0, true);
        bm.set(69, 4, true);
        bm.set(64, 2, true);
        let cols = bm.columns();
        for c in 0..5 {
            for r in 0..70 {
                assert_eq!(cols.get(c, r), bm.get(r, c), "mismatch at ({r},{c})");
            }
        }
        assert_eq!(cols.column_words(0)[0] & 1, 1);
    }

    #[test]
    fn positions_are_column_major() {
        let bm = Bitmap::new(4, 4);
        assert_eq!(bm.position(0, 0), 0);
        assert_eq!(bm.position(3, 0), 3);
        assert_eq!(bm.position(0, 1), 4);
        assert_eq!(bm.position(2, 3), 14);
    }

    #[test]
    fn iter_ones_colmajor_order() {
        let bm = Bitmap::from_art("#.#\n##.\n");
        let got: Vec<_> = bm.iter_ones_colmajor().collect();
        assert_eq!(got, vec![(0, 0), (1, 0), (1, 1), (0, 2)]);
    }
}
