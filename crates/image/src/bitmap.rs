//! Bit-packed binary images and their column-major views.
//!
//! Besides per-pixel [`Bitmap::get`]/[`Bitmap::set`], this module exposes the
//! packed words directly ([`Bitmap::row_words`], [`Columns::column_words`])
//! together with word-level scanning helpers ([`for_each_run_in_words`],
//! [`count_runs_in_words`]) so hot paths can process 64 pixels per
//! instruction instead of one — the foundation of the [`crate::fast`]
//! labeling engine and of the run-based simulator passes.

/// Invokes `f(start, end)` (inclusive bounds) for every maximal run of set
/// bits among the first `bits` bits of `words`, where bit `i % 64` of word
/// `i / 64` is position `i`. Bits at positions `>= bits` must be zero (the
/// invariant every [`Bitmap`] row and [`Columns`] column maintains).
///
/// Runs are found with `trailing_zeros` scans over whole words — background
/// words cost one test each, and a `k`-pixel run costs `O(1 + k/64)` — so the
/// cost is proportional to words plus runs, not to pixels.
#[inline]
pub fn for_each_run_in_words(words: &[u64], bits: usize, mut f: impl FnMut(u32, u32)) {
    debug_assert!(bits <= words.len() * 64);
    let mut open: Option<u32> = None; // start of a run continuing across words
    for (i, &w) in words.iter().enumerate() {
        let base = (i * 64) as u32;
        let mut x = w;
        if let Some(s) = open {
            if x & 1 == 1 {
                let ones = (!x).trailing_zeros();
                if ones == 64 {
                    continue; // run spans this whole word too
                }
                f(s, base + ones - 1);
                x &= x.wrapping_add(1); // clear the trailing ones
            } else {
                f(s, base - 1);
            }
            open = None;
        }
        while x != 0 {
            // Adding the lowest set bit carries through the lowest run,
            // clearing it and depositing a bit just past its end — so one
            // add yields both the cleared word and the run's end position.
            let lsb = x & x.wrapping_neg();
            let t = x.wrapping_add(lsb);
            if t == 0 {
                // The lowest run reaches bit 63 (and nothing lies above it):
                // it may continue into the next word.
                open = Some(base + lsb.trailing_zeros());
                break;
            }
            f(base + lsb.trailing_zeros(), base + t.trailing_zeros() - 1);
            x &= t;
        }
    }
    if let Some(s) = open {
        // Only reachable when the last word ends in a 1-bit, i.e. the image
        // dimension is a multiple of 64 (padding bits are zero otherwise).
        f(s, bits as u32 - 1);
    }
}

/// Number of runs [`for_each_run_in_words`] would report, in one popcount
/// pass (a run starts at every 0→1 transition).
#[inline]
pub fn count_runs_in_words(words: &[u64]) -> usize {
    let mut carry = 0u64; // last bit of the previous word
    let mut runs = 0usize;
    for &w in words {
        runs += (w & !((w << 1) | carry)).count_ones() as usize;
        carry = w >> 63;
    }
    runs
}

/// Number of set bits among bit positions `start..=end` of `words` (same
/// bit-to-position packing as [`for_each_run_in_words`]): a masked popcount
/// touching only the words the span crosses. The streaming engine uses it to
/// attribute per-run overlap and exposure counts without per-pixel probes.
#[inline]
pub fn count_ones_in_span(words: &[u64], start: u32, end: u32) -> u32 {
    debug_assert!(start <= end && (end as usize) < words.len() * 64);
    let (wlo, whi) = ((start / 64) as usize, (end / 64) as usize);
    let mut total = 0u32;
    for (wi, &word) in words.iter().enumerate().take(whi + 1).skip(wlo) {
        let mut w = word;
        if wi == wlo {
            w &= !0u64 << (start % 64);
        }
        if wi == whi && end % 64 != 63 {
            w &= (1u64 << ((end % 64) + 1)) - 1;
        }
        total += w.count_ones();
    }
    total
}

/// Writes the horizontal dilation `src | src<<1 | src>>1` of a packed row
/// into `dst` (cleared first), carrying shifted bits across word boundaries
/// and masking the result back to `bits` positions.
///
/// Bit `i` of the output is set iff bit `i-1`, `i`, or `i+1` of `src` is set:
/// exactly the columns within diagonal reach of a set pixel. ANDing a dilated
/// row against the row below therefore marks every column where the lower row
/// is 8-adjacent to the upper one — the word-level replacement for walking
/// run pairs with a two-pointer scan (see [`for_each_diagonal_pair`]).
#[inline]
pub fn dilate_words_into(src: &[u64], bits: usize, dst: &mut Vec<u64>) {
    debug_assert!(bits <= src.len() * 64);
    dst.clear();
    dst.reserve(src.len());
    let mut carry_up = 0u64; // bit 63 of the previous word, shifted into bit 0
    for (i, &w) in src.iter().enumerate() {
        let next_lo = if i + 1 < src.len() { src[i + 1] & 1 } else { 0 };
        dst.push(w | (w << 1) | carry_up | (w >> 1) | (next_lo << 63));
        carry_up = w >> 63;
    }
    // Dilation may spill one bit past the image width into the padding.
    let tail = bits % 64;
    if tail != 0 {
        if let Some(last) = dst.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// Invokes `f(cur_idx, prev_idx)` once for every 8-adjacent pair of a run in
/// `cur_runs` (the lower row) and a run in `prev_runs` (the upper row), where
/// `and_words` holds `dilate(upper) & lower` (see [`dilate_words_into`]) and
/// runs are packed `start << 32 | end` with inclusive bounds, sorted by start.
///
/// Each AND segment lies inside exactly one lower run (the AND is a subset of
/// the lower row), so a single forward cursor locates it; the upper runs
/// within diagonal reach of the segment — `start <= end+1` and
/// `end+1 >= start` — are exactly the 8-adjacent ones, enumerated with a
/// second cursor that *backsteps* one run after each segment because a
/// dilated upper run can bridge to the next segment too. Every adjacent pair
/// is reported exactly once; non-adjacent pairs never.
///
/// This one sweep serves every diagonal-join site — the fast engine's
/// in-strip row merge, strip seams, tile seams, the out-of-core band merge,
/// and the streaming merge — replacing their per-site two-pointer walks
/// (kept as test-only cross-checks).
#[inline]
pub fn for_each_diagonal_pair(
    and_words: &[u64],
    bits: usize,
    cur_runs: &[u64],
    prev_runs: &[u64],
    f: impl FnMut(usize, usize),
) {
    for_each_diagonal_pair_at(and_words, bits, 0, cur_runs, prev_runs, f);
}

/// Column-offset variant of [`for_each_diagonal_pair`]: bit `i` of
/// `and_words` is column `col_base + i`, while the run bounds stay absolute —
/// the shape the windowed (tiled) merge works in, where a tile's words start
/// at a word boundary left of (or at) its first column.
#[inline]
pub fn for_each_diagonal_pair_at(
    and_words: &[u64],
    bits: usize,
    col_base: u64,
    cur_runs: &[u64],
    prev_runs: &[u64],
    mut f: impl FnMut(usize, usize),
) {
    let mut c = 0usize;
    let mut p = 0usize;
    for_each_run_in_words(and_words, bits, |s, e| {
        let (s, e) = (col_base + u64::from(s), col_base + u64::from(e));
        while (cur_runs[c] & 0xffff_ffff) < s {
            c += 1;
        }
        while p < prev_runs.len() && (prev_runs[p] & 0xffff_ffff) + 1 < s {
            p += 1;
        }
        let mut q = p;
        while q < prev_runs.len() && (prev_runs[q] >> 32) <= e + 1 {
            f(c, q);
            q += 1;
        }
        // The last upper run consumed may reach the next segment as well.
        if q > p {
            p = q - 1;
        }
    });
}

/// A rectangular binary image stored row-major, 64 pixels per word.
///
/// Rows and columns are numbered from 0, top-to-bottom and left-to-right,
/// matching the paper's convention. A set bit is a foreground (`1`) pixel.
///
/// The *column-major position* of pixel `(row, col)` is
/// `col * rows + row`; the paper uses these positions both as the initial
/// pixel labels and as the final component labels (each component is labeled
/// with the least position of its pixels).
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero image with the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero, or if `rows × cols` overflows
    /// `usize` (an unrepresentable raster; callers ingesting untrusted
    /// headers must reject such dimensions before constructing — the PBM
    /// parser and the labeling service both do).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "image dimensions must be positive");
        assert!(
            rows.checked_mul(cols).is_some(),
            "image dimensions {rows}x{cols} overflow the pixel count"
        );
        let words_per_row = cols.div_ceil(64);
        // words_per_row <= cols, so this product fits whenever rows*cols does.
        Bitmap {
            rows,
            cols,
            words_per_row,
            bits: vec![0u64; rows * words_per_row],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (= number of SLAP processing elements used).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the image contains zero pixels (never: dimensions are
    /// positive), kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> (usize, u64) {
        debug_assert!(row < self.rows && col < self.cols);
        (row * self.words_per_row + col / 64, 1u64 << (col % 64))
    }

    /// Reads pixel `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        let (w, m) = self.index(row, col);
        self.bits[w] & m != 0
    }

    /// Writes pixel `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        let (w, m) = self.index(row, col);
        if value {
            self.bits[w] |= m;
        } else {
            self.bits[w] &= !m;
        }
    }

    /// The column-major position `col * rows + row`, the paper's initial
    /// label for pixel `(row, col)`.
    #[inline]
    pub fn position(&self, row: usize, col: usize) -> u32 {
        (col * self.rows + row) as u32
    }

    /// Number of 64-bit words storing each row (`ceil(cols / 64)`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of one row: bit `c % 64` of word `c / 64` is column
    /// `c`. Bits at positions `>= cols` in the last word are always zero.
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        debug_assert!(row < self.rows);
        &self.bits[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// All packed words, row-major ([`Bitmap::words_per_row`] words per row).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.bits
    }

    /// Overwrites one row from packed words (the bulk inverse of
    /// [`Bitmap::row_words`], used by the streaming PBM reader).
    ///
    /// # Panics
    /// Panics when `words` is not exactly [`Bitmap::words_per_row`] long or
    /// sets a padding bit at a position `>= cols` — that would break the
    /// zero-padding invariant every word-level scan relies on.
    pub fn set_row_words(&mut self, row: usize, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.words_per_row,
            "row must be exactly words_per_row packed words"
        );
        let tail = self.cols % 64;
        assert!(
            tail == 0 || words[self.words_per_row - 1] >> tail == 0,
            "padding bits past cols must be zero"
        );
        self.bits[row * self.words_per_row..(row + 1) * self.words_per_row].copy_from_slice(words);
    }

    /// Number of foreground pixels in one row (word-level popcount).
    pub fn count_ones_in_row(&self, row: usize) -> usize {
        self.row_words(row)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of maximal horizontal runs of foreground pixels in one row.
    pub fn count_row_runs(&self, row: usize) -> usize {
        count_runs_in_words(self.row_words(row))
    }

    /// Invokes `f(start_col, end_col)` (inclusive) for every maximal
    /// horizontal run of foreground pixels in `row`, via word-level scans.
    #[inline]
    pub fn for_each_row_run(&self, row: usize, f: impl FnMut(u32, u32)) {
        for_each_run_in_words(self.row_words(row), self.cols, f);
    }

    /// Number of foreground pixels.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of foreground pixels.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.len() as f64
    }

    /// Builds an image from ASCII art. `'1'` and `'#'` are foreground;
    /// `'0'`, `'.'` and `' '` are background. Lines may be ragged; the image
    /// width is the longest line and short lines are padded with background.
    /// Empty lines (and leading/trailing blank lines) are ignored.
    ///
    /// # Panics
    /// Panics on characters outside the set above or if no non-empty line
    /// exists.
    pub fn from_art(art: &str) -> Self {
        let lines: Vec<&str> = art
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.trim().is_empty())
            .collect();
        assert!(!lines.is_empty(), "ASCII art image has no rows");
        let cols = lines.iter().map(|l| l.chars().count()).max().unwrap();
        let mut bm = Bitmap::new(lines.len(), cols);
        for (r, line) in lines.iter().enumerate() {
            for (c, ch) in line.chars().enumerate() {
                match ch {
                    '1' | '#' => bm.set(r, c, true),
                    '0' | '.' | ' ' => {}
                    other => panic!("unexpected character {other:?} in ASCII art"),
                }
            }
        }
        bm
    }

    /// Renders the image as ASCII art (`#` foreground, `.` background),
    /// mainly for debugging and the examples.
    pub fn to_art(&self) -> String {
        let mut s = String::with_capacity(self.rows * (self.cols + 1));
        for r in 0..self.rows {
            for c in 0..self.cols {
                s.push(if self.get(r, c) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }

    /// Returns the horizontally mirrored image (column `c` becomes column
    /// `cols-1-c`). The right-connected labeling pass is implemented as a
    /// left-connected pass over the mirrored image.
    pub fn flip_horizontal(&self) -> Bitmap {
        let mut out = Bitmap::new(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(r, self.cols - 1 - c, true);
                }
            }
        }
        out
    }

    /// Returns the transposed image.
    pub fn transpose(&self) -> Bitmap {
        let mut out = Bitmap::new(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(c, r, true);
                }
            }
        }
        out
    }

    /// Returns the complement image (foreground and background swapped),
    /// word-at-a-time, re-zeroing the padding bits past `cols` in each row's
    /// last word.
    pub fn invert(&self) -> Bitmap {
        let mut out = self.clone();
        for w in &mut out.bits {
            *w = !*w;
        }
        let tail = self.cols % 64;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            for r in 0..self.rows {
                out.bits[(r + 1) * self.words_per_row - 1] &= mask;
            }
        }
        out
    }

    /// Extracts the column-major packed view used by the SLAP simulator
    /// (PE `i` holds column `i`). Iterates set bits of the row words rather
    /// than probing every pixel, so background costs one word test per 64
    /// pixels.
    pub fn columns(&self) -> Columns {
        let words_per_col = self.rows.div_ceil(64);
        let mut bits = vec![0u64; self.cols * words_per_col];
        for r in 0..self.rows {
            let (wr, br) = (r / 64, 1u64 << (r % 64));
            for (wi, &w) in self.row_words(r).iter().enumerate() {
                let mut x = w;
                while x != 0 {
                    let c = wi * 64 + x.trailing_zeros() as usize;
                    bits[c * words_per_col + wr] |= br;
                    x &= x - 1;
                }
            }
        }
        Columns {
            rows: self.rows,
            cols: self.cols,
            words_per_col,
            bits,
        }
    }

    /// Iterates over all foreground pixel coordinates in column-major order
    /// (the order of the paper's initial labeling).
    pub fn iter_ones_colmajor(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.cols)
            .flat_map(move |c| (0..self.rows).map(move |r| (r, c)))
            .filter(move |&(r, c)| self.get(r, c))
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Bitmap({}x{})", self.rows, self.cols)?;
        if self.rows <= 64 && self.cols <= 64 {
            write!(f, "{}", self.to_art())
        } else {
            writeln!(f, "<{} ones>", self.count_ones())
        }
    }
}

/// Column-major packed view of a [`Bitmap`]: what each SLAP PE holds locally
/// after the row-by-row input phase.
#[derive(Clone, Debug)]
pub struct Columns {
    rows: usize,
    cols: usize,
    words_per_col: usize,
    bits: Vec<u64>,
}

impl Columns {
    /// Number of rows per column.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads pixel `(row, col)`.
    #[inline]
    pub fn get(&self, col: usize, row: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.bits[col * self.words_per_col + row / 64] & (1u64 << (row % 64)) != 0
    }

    /// Number of 64-bit words storing each column (`ceil(rows / 64)`).
    #[inline]
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// The packed words of one column (bit `r % 64` of word `r / 64` is row
    /// `r`). Used when a PE program wants to scan runs word-at-a-time.
    #[inline]
    pub fn column_words(&self, col: usize) -> &[u64] {
        &self.bits[col * self.words_per_col..(col + 1) * self.words_per_col]
    }

    /// Number of maximal vertical runs of foreground pixels in one column.
    pub fn count_column_runs(&self, col: usize) -> usize {
        count_runs_in_words(self.column_words(col))
    }

    /// Invokes `f(start_row, end_row)` (inclusive) for every maximal vertical
    /// run of foreground pixels in `col`, via word-level scans.
    #[inline]
    pub fn for_each_column_run(&self, col: usize, f: impl FnMut(u32, u32)) {
        for_each_run_in_words(self.column_words(col), self.rows, f);
    }

    /// First foreground row of `col` within `lo..=hi` (inclusive), scanning
    /// whole words. `None` when the range is all background.
    pub fn first_one_in_range(&self, col: usize, lo: usize, hi: usize) -> Option<usize> {
        debug_assert!(lo <= hi && hi < self.rows);
        let words = self.column_words(col);
        let (wlo, whi) = (lo / 64, hi / 64);
        for (wi, &word) in words.iter().enumerate().take(whi + 1).skip(wlo) {
            let mut w = word;
            if wi == wlo {
                w &= !0u64 << (lo % 64);
            }
            if wi == whi && hi % 64 != 63 {
                w &= (1u64 << ((hi % 64) + 1)) - 1;
            }
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retired reference implementation of diagonal-pair enumeration:
    /// walk both run lists with a two-pointer scan at reach 1. Kept only to
    /// cross-check the word-level [`for_each_diagonal_pair`] sweep.
    fn diagonal_pairs_two_pointer(cur_runs: &[u64], prev_runs: &[u64]) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut p = 0usize;
        for (c, &run) in cur_runs.iter().enumerate() {
            let (sb, eb) = (run >> 32, run & 0xffff_ffff);
            let aw = sb.saturating_sub(1);
            let bw = eb + 1;
            while p < prev_runs.len() && (prev_runs[p] & 0xffff_ffff) < aw {
                p += 1;
            }
            let mut q = p;
            while q < prev_runs.len() && (prev_runs[q] >> 32) <= bw {
                pairs.push((c, q));
                q += 1;
            }
            if q > p {
                p = q - 1;
            }
        }
        pairs
    }

    fn runs_of(words: &[u64], bits: usize) -> Vec<u64> {
        let mut runs = Vec::new();
        for_each_run_in_words(words, bits, |a, b| {
            runs.push((u64::from(a) << 32) | u64::from(b));
        });
        runs
    }

    #[test]
    fn dilate_words_carries_across_word_boundaries() {
        // Bits 0, 63, 64, and 130 over 131 columns: the dilation must reach
        // across both word seams and stay masked to the width.
        let src = [1u64 | (1 << 63), 1u64, 1u64 << 2];
        let mut dst = Vec::new();
        dilate_words_into(&src, 131, &mut dst);
        assert_eq!(dst[0], 0b11 | (0b11 << 62));
        assert_eq!(dst[1], 0b11); // bits 64 (own + carry of 63) and 65
        assert_eq!(dst[2], 0b110); // bit 130 dilates to 129..=130; 131 is masked off
    }

    #[test]
    fn dilate_words_masks_the_final_bit() {
        let src = [1u64 << 6];
        let mut dst = Vec::new();
        dilate_words_into(&src, 7, &mut dst);
        assert_eq!(dst, vec![0b110_0000]); // bit 7 would spill past cols=7
    }

    #[test]
    fn diagonal_pair_sweep_matches_the_two_pointer_reference() {
        // Every 2-row pattern over 2 words + a ragged tail, pseudo-randomly:
        // the word-level dilated-AND sweep and the retired two-pointer walk
        // must enumerate exactly the same (lower, upper) run pairs.
        let bits = 131usize;
        let words = bits.div_ceil(64);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..500 {
            let mask_tail = (1u64 << (bits % 64)) - 1;
            // Mix densities so some cases are run-dense, some sparse.
            let mix = |r: &mut dyn FnMut() -> u64| match case % 3 {
                0 => r(),
                1 => r() & r() & r(),
                _ => r() | r(),
            };
            let mut upper: Vec<u64> = (0..words).map(|_| mix(&mut rng)).collect();
            let mut lower: Vec<u64> = (0..words).map(|_| mix(&mut rng)).collect();
            upper[words - 1] &= mask_tail;
            lower[words - 1] &= mask_tail;
            let prev_runs = runs_of(&upper, bits);
            let cur_runs = runs_of(&lower, bits);

            let mut dilated = Vec::new();
            dilate_words_into(&upper, bits, &mut dilated);
            let and_words: Vec<u64> = dilated
                .iter()
                .zip(lower.iter())
                .map(|(&d, &l)| d & l)
                .collect();
            let mut got = Vec::new();
            for_each_diagonal_pair(&and_words, bits, &cur_runs, &prev_runs, |c, q| {
                got.push((c, q));
            });
            let want = diagonal_pairs_two_pointer(&cur_runs, &prev_runs);
            assert_eq!(got, want, "case {case}");
        }
    }

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(5, 7);
        assert_eq!(bm.rows(), 5);
        assert_eq!(bm.cols(), 7);
        assert_eq!(bm.count_ones(), 0);
        for r in 0..5 {
            for c in 0..7 {
                assert!(!bm.get(r, c));
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::new(3, 130); // crosses word boundaries
        bm.set(0, 0, true);
        bm.set(2, 129, true);
        bm.set(1, 64, true);
        assert!(bm.get(0, 0));
        assert!(bm.get(2, 129));
        assert!(bm.get(1, 64));
        assert_eq!(bm.count_ones(), 3);
        bm.set(1, 64, false);
        assert!(!bm.get(1, 64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn art_roundtrip() {
        let art = "##.\n.#.\n..#\n";
        let bm = Bitmap::from_art(art);
        assert_eq!(bm.rows(), 3);
        assert_eq!(bm.cols(), 3);
        assert_eq!(bm.to_art(), "##.\n.#.\n..#\n");
    }

    #[test]
    fn art_accepts_zero_one_and_pads_ragged_lines() {
        let bm = Bitmap::from_art("101\n1\n");
        assert_eq!(bm.cols(), 3);
        assert!(bm.get(0, 0) && !bm.get(0, 1) && bm.get(0, 2));
        assert!(bm.get(1, 0) && !bm.get(1, 1) && !bm.get(1, 2));
    }

    #[test]
    #[should_panic(expected = "unexpected character")]
    fn art_rejects_garbage() {
        Bitmap::from_art("1x\n");
    }

    #[test]
    fn flip_horizontal_mirrors_columns() {
        let bm = Bitmap::from_art("#..\n.#.\n");
        let f = bm.flip_horizontal();
        assert!(f.get(0, 2));
        assert!(f.get(1, 1));
        assert_eq!(f.count_ones(), 2);
        assert_eq!(f.flip_horizontal(), bm);
    }

    #[test]
    fn transpose_swaps_axes() {
        let bm = Bitmap::from_art("#.#\n...\n");
        let t = bm.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert!(t.get(0, 0));
        assert!(t.get(2, 0));
        assert_eq!(t.transpose(), bm);
    }

    #[test]
    fn invert_flips_every_pixel() {
        let bm = Bitmap::from_art("#.\n.#\n");
        let inv = bm.invert();
        assert_eq!(inv.count_ones(), 2);
        assert!(inv.get(0, 1) && inv.get(1, 0));
    }

    #[test]
    fn columns_view_matches_bitmap() {
        let mut bm = Bitmap::new(70, 5); // rows cross a word boundary
        bm.set(0, 0, true);
        bm.set(69, 4, true);
        bm.set(64, 2, true);
        let cols = bm.columns();
        for c in 0..5 {
            for r in 0..70 {
                assert_eq!(cols.get(c, r), bm.get(r, c), "mismatch at ({r},{c})");
            }
        }
        assert_eq!(cols.column_words(0)[0] & 1, 1);
    }

    /// Reference run scan by per-pixel probing.
    fn naive_runs(get: impl Fn(usize) -> bool, len: usize) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < len {
            if !get(i) {
                i += 1;
                continue;
            }
            let s = i;
            while i < len && get(i) {
                i += 1;
            }
            out.push((s as u32, (i - 1) as u32));
        }
        out
    }

    #[test]
    fn word_run_scan_matches_naive_on_ragged_widths() {
        // Widths straddling word boundaries, including exact multiples.
        for cols in [1usize, 63, 64, 65, 127, 128, 130] {
            // A quasi-random but deterministic pattern with runs crossing
            // word boundaries.
            let mut bm = Bitmap::new(3, cols);
            for c in 0..cols {
                bm.set(0, c, (c / 3) % 2 == 0);
                bm.set(1, c, c % 7 != 0);
                bm.set(2, c, true);
            }
            for r in 0..3 {
                let mut got = Vec::new();
                bm.for_each_row_run(r, |a, b| got.push((a, b)));
                let want = naive_runs(|c| bm.get(r, c), cols);
                assert_eq!(got, want, "cols={cols} row={r}");
                assert_eq!(bm.count_row_runs(r), want.len(), "cols={cols} row={r}");
            }
        }
    }

    #[test]
    fn word_run_scan_full_and_empty_rows() {
        for cols in [64usize, 65, 128] {
            let bm = Bitmap::new(2, cols);
            let mut got = Vec::new();
            bm.for_each_row_run(0, |a, b| got.push((a, b)));
            assert!(got.is_empty());
            let mut full = Bitmap::new(1, cols);
            for c in 0..cols {
                full.set(0, c, true);
            }
            let mut got = Vec::new();
            full.for_each_row_run(0, |a, b| got.push((a, b)));
            assert_eq!(got, vec![(0, cols as u32 - 1)]);
        }
    }

    #[test]
    fn row_words_expose_packed_layout() {
        let mut bm = Bitmap::new(2, 70);
        bm.set(1, 0, true);
        bm.set(1, 64, true);
        bm.set(1, 69, true);
        assert_eq!(bm.words_per_row(), 2);
        assert_eq!(bm.row_words(0), &[0, 0]);
        assert_eq!(bm.row_words(1)[0], 1);
        assert_eq!(bm.row_words(1)[1], (1 << 0) | (1 << 5));
        assert_eq!(bm.count_ones_in_row(1), 3);
        assert_eq!(bm.as_words().len(), 4);
    }

    #[test]
    fn invert_keeps_padding_bits_clear() {
        for cols in [5usize, 64, 65, 130] {
            let bm = Bitmap::new(3, cols);
            let inv = bm.invert();
            assert_eq!(inv.count_ones(), 3 * cols, "cols={cols}");
            assert_eq!(inv.invert(), bm, "cols={cols}");
            // Padding must stay zero so word-level scans see no ghosts.
            let tail_word = inv.row_words(0)[inv.words_per_row() - 1];
            if cols % 64 != 0 {
                assert_eq!(tail_word >> (cols % 64), 0, "cols={cols}");
            }
        }
    }

    #[test]
    fn column_run_helpers_match_bitmap() {
        let mut bm = Bitmap::new(130, 3); // columns cross two word boundaries
        for r in 0..130 {
            bm.set(r, 0, r % 5 != 0);
            bm.set(r, 2, (60..70).contains(&r));
        }
        let cols = bm.columns();
        assert_eq!(cols.words_per_col(), 3);
        for c in 0..3 {
            let mut got = Vec::new();
            cols.for_each_column_run(c, |a, b| got.push((a, b)));
            let want = naive_runs(|r| bm.get(r, c), 130);
            assert_eq!(got, want, "col={c}");
            assert_eq!(cols.count_column_runs(c), want.len());
        }
    }

    #[test]
    fn first_one_in_range_scans_words() {
        let mut bm = Bitmap::new(200, 2);
        bm.set(3, 0, true);
        bm.set(130, 0, true);
        let cols = bm.columns();
        assert_eq!(cols.first_one_in_range(0, 0, 199), Some(3));
        assert_eq!(cols.first_one_in_range(0, 3, 3), Some(3));
        assert_eq!(cols.first_one_in_range(0, 4, 129), None);
        assert_eq!(cols.first_one_in_range(0, 4, 130), Some(130));
        assert_eq!(cols.first_one_in_range(0, 131, 199), None);
        assert_eq!(cols.first_one_in_range(1, 0, 199), None);
        // Boundary rows 63/64 within one range.
        let mut bm2 = Bitmap::new(128, 1);
        bm2.set(64, 0, true);
        let cols2 = bm2.columns();
        assert_eq!(cols2.first_one_in_range(0, 0, 63), None);
        assert_eq!(cols2.first_one_in_range(0, 63, 64), Some(64));
        assert_eq!(cols2.first_one_in_range(0, 0, 127), Some(64));
    }

    #[test]
    fn count_ones_in_span_matches_pixel_probes() {
        let mut bm = Bitmap::new(1, 200);
        for c in 0..200 {
            bm.set(0, c, c % 3 != 1);
        }
        let words = bm.row_words(0);
        for (a, b) in [(0, 0), (0, 199), (63, 64), (5, 130), (64, 127), (190, 199)] {
            let want = (a..=b).filter(|&c| bm.get(0, c as usize)).count() as u32;
            assert_eq!(count_ones_in_span(words, a, b), want, "span {a}..={b}");
        }
    }

    #[test]
    fn set_row_words_roundtrips_and_guards_padding() {
        let mut bm = Bitmap::new(2, 70);
        bm.set(0, 3, true);
        bm.set(0, 69, true);
        let words: Vec<u64> = bm.row_words(0).to_vec();
        let mut other = Bitmap::new(2, 70);
        other.set_row_words(1, &words);
        assert_eq!(other.row_words(1), &words[..]);
        assert_eq!(other.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "padding bits")]
    fn set_row_words_rejects_padding_bits() {
        let mut bm = Bitmap::new(1, 70);
        bm.set_row_words(0, &[0, 1u64 << 10]); // bit 74 is past cols = 70
    }

    #[test]
    fn positions_are_column_major() {
        let bm = Bitmap::new(4, 4);
        assert_eq!(bm.position(0, 0), 0);
        assert_eq!(bm.position(3, 0), 3);
        assert_eq!(bm.position(0, 1), 4);
        assert_eq!(bm.position(2, 3), 14);
    }

    #[test]
    fn iter_ones_colmajor_order() {
        let bm = Bitmap::from_art("#.#\n##.\n");
        let got: Vec<_> = bm.iter_ones_colmajor().collect();
        assert_eq!(got, vec![(0, 0), (1, 0), (1, 1), (0, 2)]);
    }
}
