//! Streaming run-based connected-component labeling with bounded memory.
//!
//! The paper's whole architecture consumes the image *one scan line per
//! beat*: the SLAP never holds the full frame, only each PE's running view
//! of its column. This module is the host-side mirror of that discipline —
//! an online labeler that accepts rows one at a time
//! ([`StreamLabeler::push_row`] over packed words), keeps only
//!
//! * the **active-run frontier** (the previous row's maximal runs and the
//!   live component each belongs to), and
//! * a **compact union–find over live components** (slab slots recycled
//!   through a free list the moment a component dies),
//!
//! and **retires** a component the first time a row arrives that no longer
//! touches it — emitting its finished feature record ([`RetiredComponent`]:
//! area, bounding box, centroid sums, 4-neighbor perimeter, and the paper's
//! minimum column-major position). Memory is `O(cols + live components)`
//! (plus whatever retired records the caller has not drained), never
//! `O(rows × cols)`: frames taller than memory, piped PBM, and unbounded
//! ingest all stream through at a constant footprint.
//!
//! The retired multiset is **exactly** what [`crate::fast::fast_labels_conn`]
//! plus a per-component feature fold would produce — the differential suites
//! replay every generator family row-by-row and compare record-for-record,
//! keyed by the paper label — and the frontier bound is asserted by tests
//! and enforced by the `slap-bench stream` schema validator.
//!
//! Input adapters implement [`RowSource`]: [`BitmapRows`] replays an
//! in-memory [`Bitmap`], and [`crate::pbm::PbmRowReader`] streams P1/P4 PBM
//! rows incrementally from any [`std::io::Read`] without materializing the
//! image. [`label_stream`] drives a source to completion.

use crate::bitmap::{
    count_ones_in_span, dilate_words_into, for_each_diagonal_pair, for_each_run_in_words, Bitmap,
};
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;
use std::io;

/// The finished feature record of a retired component (every field is final:
/// the component can never reconnect once retired).
///
/// The fields mirror the `Features` monoid of the core crate's Corollary 4
/// fold — area, bounding box, centroid numerators, and the 4-neighbor
/// perimeter — plus the paper's component label key: the minimum
/// column-major position, stored as its `(col, row)` coordinates because a
/// streaming consumer does not know the image height (see
/// [`RetiredComponent::label`]).
///
/// The derived ordering sorts by minimum position first, so sorting a drained
/// batch yields a canonical multiset order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RetiredComponent {
    /// Column of the component's minimum column-major position (its leftmost
    /// column; among pixels of that column, see `min_pos_row`).
    pub min_pos_col: u32,
    /// Row of the minimum column-major position (the topmost pixel within
    /// column `min_pos_col`).
    pub min_pos_row: u32,
    /// Pixel count.
    pub area: u64,
    /// Topmost row.
    pub min_row: u32,
    /// Bottommost row.
    pub max_row: u32,
    /// Leftmost column.
    pub min_col: u32,
    /// Rightmost column.
    pub max_col: u32,
    /// Sum of row indices (centroid numerator).
    pub sum_row: u64,
    /// Sum of column indices (centroid numerator).
    pub sum_col: u64,
    /// Pixel edges exposed to background or the image border (4-neighbor
    /// boundary length, the same convention as the core feature fold).
    pub perimeter: u64,
}

impl RetiredComponent {
    /// The paper's component label — the minimum column-major position
    /// `col * rows + row` — computable once the image height is known.
    /// Returned as `u64`: a stream can be taller than the `u32` position
    /// space that bounds whole-frame `LabelGrid`s (callers comparing
    /// against grid labels may narrow when `rows * cols` fits `u32`).
    pub fn label(&self, rows: usize) -> u64 {
        self.min_pos_col as u64 * rows as u64 + u64::from(self.min_pos_row)
    }

    /// Bounding-box width.
    pub fn width(&self) -> u32 {
        self.max_col - self.min_col + 1
    }

    /// Bounding-box height.
    pub fn height(&self) -> u32 {
        self.max_row - self.min_row + 1
    }

    /// Centroid `(row, col)`.
    pub fn centroid(&self) -> (f64, f64) {
        (
            self.sum_row as f64 / self.area as f64,
            self.sum_col as f64 / self.area as f64,
        )
    }

    /// Merges `other` into `self` (elementwise min/max/sum, the same monoid
    /// as the core feature fold). Shared with the out-of-core band merger
    /// ([`crate::fast::ooc`]).
    pub(crate) fn absorb(&mut self, other: &RetiredComponent) {
        if (other.min_pos_col, other.min_pos_row) < (self.min_pos_col, self.min_pos_row) {
            self.min_pos_col = other.min_pos_col;
            self.min_pos_row = other.min_pos_row;
        }
        self.area += other.area;
        self.min_row = self.min_row.min(other.min_row);
        self.max_row = self.max_row.max(other.max_row);
        self.min_col = self.min_col.min(other.min_col);
        self.max_col = self.max_col.max(other.max_col);
        self.sum_row += other.sum_row;
        self.sum_col += other.sum_col;
        self.perimeter += other.perimeter;
    }
}

/// Aggregate statistics of a finished (or in-flight) streaming run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rows pushed so far.
    pub rows: u64,
    /// Row width the labeler was constructed with.
    pub cols: usize,
    /// Foreground pixels seen.
    pub pixels: u64,
    /// Components retired so far.
    pub retired: u64,
    /// Maximum frontier size observed (runs of one row).
    pub peak_frontier_runs: usize,
    /// Maximum number of simultaneously allocated union–find slots — the
    /// `O(cols + live components)` bound made measurable (live components
    /// plus the merge garbage of the row being processed, reclaimed before
    /// the next row).
    pub peak_nodes: usize,
}

/// A union–find slot over live components. `parent == self` marks a root
/// (its `rec` is the component's running feature record); a forwarded slot
/// is garbage reclaimed at the end of the row that forwarded it; free slots
/// sit on the labeler's free list.
#[derive(Clone, Copy, Debug)]
struct Node {
    parent: u32,
    /// Stamp of the last row whose runs merged into this set (roots only).
    touched: u64,
    /// Stamp guarding the retirement scan against visiting a root twice.
    scanned: u64,
    /// Component id under [`StreamLabeler::track_comps`] (0 otherwise).
    /// Unlike slots, component ids are never recycled within a stream, so a
    /// grid-producing caller can resolve which component a long-dead run
    /// ended up in ([`StreamGridLabeler`]).
    comp: u32,
    rec: RetiredComponent,
}

/// Online connected-component labeler: see the module docs for the memory
/// model. Rows arrive as packed words ([`StreamLabeler::push_row`]); retired
/// components accumulate until drained ([`StreamLabeler::drain_retired`]);
/// [`StreamLabeler::finish`] retires everything still live.
#[derive(Debug)]
pub struct StreamLabeler {
    cols: usize,
    words_per_row: usize,
    conn: Connectivity,
    /// Stamp of the row being (or last) processed; `rows` excludes the
    /// virtual all-background row [`StreamLabeler::finish`] appends.
    stamp: u64,
    finished: bool,
    /// Packed words of the previous row (all zero before the first row).
    prev_words: Vec<u64>,
    /// The frontier: previous row's runs (packed `start << 32 | end`) and
    /// the slot each belongs to (a root between rows).
    prev_runs: Vec<u64>,
    prev_slots: Vec<u32>,
    /// Scratch for the row being processed.
    cur_runs: Vec<u64>,
    cur_slots: Vec<u32>,
    /// Union–find slab + free list.
    nodes: Vec<Node>,
    free: Vec<u32>,
    /// Slots forwarded by this row's unions, reclaimed at row end.
    forwarded: Vec<u32>,
    /// Retired components awaiting [`StreamLabeler::drain_retired`].
    retired: Vec<RetiredComponent>,
    /// Scratch words for the merge sweep: `row & prev` at 4-conn,
    /// `row & dilate(prev)` at 8.
    and_buf: Vec<u64>,
    /// Scratch words for the dilated frontier row at 8-connectivity.
    dilate_buf: Vec<u64>,
    /// When set, every component ever created gets a stable id: a slot
    /// allocation mints a fresh id, a union records the merge in
    /// `comp_parent`, and a retirement appends the root id to
    /// `retired_comps` (parallel to `retired`). Off by default — the id
    /// arena grows with the *total* component count, which would break the
    /// `O(cols + live)` bound on unbounded streams.
    track_comps: bool,
    /// Union–find over component ids (grows monotonically; tracking only).
    comp_parent: Vec<u32>,
    /// Root component id per retirement, parallel to `retired`.
    retired_comps: Vec<u32>,
    stats: StreamStats,
}

impl StreamLabeler {
    /// Creates a labeler for rows of `cols` pixels. `cols == 0` is accepted
    /// (every row is empty and nothing is ever emitted).
    pub fn new(cols: usize, conn: Connectivity) -> Self {
        StreamLabeler {
            cols,
            words_per_row: cols.div_ceil(64),
            conn,
            stamp: 0,
            finished: false,
            prev_words: vec![0u64; cols.div_ceil(64)],
            prev_runs: Vec::new(),
            prev_slots: Vec::new(),
            cur_runs: Vec::new(),
            cur_slots: Vec::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            forwarded: Vec::new(),
            retired: Vec::new(),
            and_buf: Vec::new(),
            dilate_buf: Vec::new(),
            track_comps: false,
            comp_parent: Vec::new(),
            retired_comps: Vec::new(),
            stats: StreamStats {
                cols,
                ..StreamStats::default()
            },
        }
    }

    /// Rewinds the labeler to the state of a fresh [`StreamLabeler::new`]
    /// with possibly different dimensions or connectivity, **keeping every
    /// allocation**: a session labeling a stream of frames allocates only
    /// when a frame exceeds all previous highs. Component tracking (an
    /// internal mode of [`StreamGridLabeler`]) is switched off.
    pub fn reset(&mut self, cols: usize, conn: Connectivity) {
        self.cols = cols;
        self.words_per_row = cols.div_ceil(64);
        self.conn = conn;
        self.stamp = 0;
        self.finished = false;
        self.prev_words.clear();
        self.prev_words.resize(self.words_per_row, 0);
        self.prev_runs.clear();
        self.prev_slots.clear();
        self.cur_runs.clear();
        self.cur_slots.clear();
        self.nodes.clear();
        self.free.clear();
        self.forwarded.clear();
        self.retired.clear();
        self.and_buf.clear();
        self.dilate_buf.clear();
        self.track_comps = false;
        self.comp_parent.clear();
        self.retired_comps.clear();
        self.stats = StreamStats {
            cols,
            ..StreamStats::default()
        };
    }

    /// Total bytes of scratch capacity currently reserved — the session's
    /// high-water mark. Steady-state reuse keeps this constant; tests assert
    /// warm calls perform zero arena reallocations by watching it.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.prev_words.capacity() * size_of::<u64>()
            + self.prev_runs.capacity() * size_of::<u64>()
            + self.prev_slots.capacity() * size_of::<u32>()
            + self.cur_runs.capacity() * size_of::<u64>()
            + self.cur_slots.capacity() * size_of::<u32>()
            + self.nodes.capacity() * size_of::<Node>()
            + self.free.capacity() * size_of::<u32>()
            + self.forwarded.capacity() * size_of::<u32>()
            + self.retired.capacity() * size_of::<RetiredComponent>()
            + self.and_buf.capacity() * size_of::<u64>()
            + self.dilate_buf.capacity() * size_of::<u64>()
            + self.comp_parent.capacity() * size_of::<u32>()
            + self.retired_comps.capacity() * size_of::<u32>()
    }

    /// Row width accepted by [`StreamLabeler::push_row`].
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Statistics so far (peaks are final only after
    /// [`StreamLabeler::finish`]).
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Number of live (unretired) components currently tracked.
    pub fn live_components(&self) -> usize {
        // Between rows every frontier slot is a root and every live root
        // owns at least one frontier run; dedup by scanning.
        let mut seen: Vec<u32> = self.prev_slots.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Pushes the next row as packed words (bit `c % 64` of word `c / 64` is
    /// column `c`, exactly [`Bitmap::row_words`]'s layout).
    ///
    /// # Panics
    /// Panics after [`StreamLabeler::finish`], when `words` is not exactly
    /// `cols.div_ceil(64)` long, or when a padding bit past `cols` is set
    /// (that would corrupt the word-level run scan).
    pub fn push_row(&mut self, words: &[u64]) {
        assert!(!self.finished, "push_row after finish");
        assert_eq!(
            words.len(),
            self.words_per_row,
            "row must be exactly cols.div_ceil(64) packed words"
        );
        let tail = self.cols % 64;
        assert!(
            tail == 0 || self.words_per_row == 0 || words[self.words_per_row - 1] >> tail == 0,
            "padding bits past cols must be zero"
        );
        self.stats.rows += 1;
        self.advance(words);
    }

    /// Retires every component still live and returns the final statistics.
    /// Idempotent; [`StreamLabeler::push_row`] panics afterwards.
    pub fn finish(&mut self) -> StreamStats {
        if !self.finished {
            // One virtual all-background row below the image: every prev run
            // collects its full bottom exposure and every live root goes
            // untouched, hence retires — no special-cased teardown path.
            let zeros = vec![0u64; self.words_per_row];
            self.advance(&zeros);
            self.finished = true;
        }
        self.stats
    }

    /// Removes and returns the components retired so far (draining keeps the
    /// labeler's footprint at `O(cols + live)` on long streams).
    pub fn drain_retired(&mut self) -> std::vec::Drain<'_, RetiredComponent> {
        self.retired_comps.clear(); // keep the tracking vec parallel
        self.retired.drain(..)
    }

    /// Sentinel for "no slot yet" in the merge sweep.
    const NONE: u32 = u32::MAX;

    /// Resolves `slot` to its current root, halving the path on the way.
    #[inline]
    fn resolve(nodes: &mut [Node], mut x: u32) -> u32 {
        loop {
            let p = nodes[x as usize].parent;
            if p == x {
                return x;
            }
            let g = nodes[p as usize].parent;
            if g != p {
                nodes[x as usize].parent = g;
            }
            x = g;
        }
    }

    /// Processes one row's packed words (real or the virtual finish row).
    fn advance(&mut self, words: &[u64]) {
        self.stamp += 1;
        let stamp = self.stamp;
        let row = (self.stamp - 1) as u32;

        // 1) Bottom exposure: pixels of each frontier run not covered by the
        // new row leave the component through their south edge. Frontier
        // slots are roots between rows, so no finds are needed here.
        for (&sb, &slot) in self.prev_runs.iter().zip(&self.prev_slots) {
            let (a, b) = ((sb >> 32) as u32, (sb & 0xffff_ffff) as u32);
            let covered = count_ones_in_span(words, a, b);
            self.nodes[slot as usize].rec.perimeter += u64::from(b - a + 1 - covered);
        }

        // 2) Extract the new row's runs.
        self.cur_runs.clear();
        self.cur_slots.clear();
        let cur_runs = &mut self.cur_runs;
        for_each_run_in_words(words, self.cols, |a, b| {
            cur_runs.push(((a as u64) << 32) | b as u64);
        });
        self.cur_slots.resize(self.cur_runs.len(), Self::NONE);

        // 3) Merge sweep: union every frontier component each new run
        // touches, leaving the (still unresolved) surviving slot of run `i`
        // in `cur_slots[i]` — `NONE` for runs touching no frontier run.
        match self.conn {
            Connectivity::Four => {
                // Word-parallel adjacency, the fast engine's trick carried
                // over: a maximal run of `row & prev_row` lies inside exactly
                // one run of each row, and every 4-adjacent pair contains at
                // least one such segment — so the AND words enumerate
                // precisely the required unions, skipping non-overlapping
                // runs 64 columns per test instead of comparing bounds pair
                // by pair on run-dense rows. Unlike the fast engine's fused
                // pass, a current-row slot can be forwarded by a *later*
                // run's union, so slots are re-resolved in step 3b.
                let cols = self.cols;
                let StreamLabeler {
                    prev_words,
                    prev_runs,
                    prev_slots,
                    cur_runs,
                    cur_slots,
                    nodes,
                    forwarded,
                    and_buf,
                    track_comps,
                    comp_parent,
                    ..
                } = self;
                and_buf.clear();
                and_buf.extend(words.iter().zip(prev_words.iter()).map(|(&a, &b)| a & b));
                let mut c = 0usize; // cursor over this row's runs
                let mut q = 0usize; // cursor over the frontier runs
                for_each_run_in_words(and_buf, cols, |s, _| {
                    let s = s as u64;
                    // Advance to the runs containing column `s`; both exist
                    // because `s` is a set bit of both rows.
                    while (cur_runs[c] & 0xffff_ffff) < s {
                        c += 1;
                    }
                    while (prev_runs[q] & 0xffff_ffff) < s {
                        q += 1;
                    }
                    let sq = Self::resolve(nodes, prev_slots[q]);
                    prev_slots[q] = sq;
                    let cur = cur_slots[c];
                    if cur == Self::NONE {
                        cur_slots[c] = sq;
                    } else if sq != cur {
                        // Union: keep the run's cached root, forward the
                        // other.
                        let (keep, lose) = (cur as usize, sq as usize);
                        let rec = nodes[lose].rec;
                        nodes[keep].rec.absorb(&rec);
                        nodes[lose].parent = cur;
                        if *track_comps {
                            comp_parent[nodes[lose].comp as usize] = nodes[keep].comp;
                        }
                        forwarded.push(sq);
                    }
                });
            }
            Connectivity::Eight => {
                // The same word-level sweep over the *dilated* frontier row
                // (`prev | prev<<1 | prev>>1`): segments of the dilated AND
                // each lie inside exactly one current run and
                // [`for_each_diagonal_pair`] enumerates exactly the
                // 8-adjacent run pairs — the shared adjacency kernel of the
                // strip and tile seam passes (the retired two-pointer walk
                // survives as a test-only cross-check there).
                let cols = self.cols;
                let StreamLabeler {
                    prev_words,
                    prev_runs,
                    prev_slots,
                    cur_runs,
                    cur_slots,
                    nodes,
                    forwarded,
                    and_buf,
                    dilate_buf,
                    track_comps,
                    comp_parent,
                    ..
                } = self;
                dilate_words_into(prev_words, cols, dilate_buf);
                and_buf.clear();
                and_buf.extend(words.iter().zip(dilate_buf.iter()).map(|(&a, &b)| a & b));
                for_each_diagonal_pair(and_buf, cols, cur_runs, prev_runs, |c, q| {
                    let sq = Self::resolve(nodes, prev_slots[q]);
                    prev_slots[q] = sq;
                    let cur = cur_slots[c];
                    if cur == Self::NONE {
                        cur_slots[c] = sq;
                    } else if sq != cur {
                        // Union: keep the run's cached root, forward the
                        // other.
                        let (keep, lose) = (cur as usize, sq as usize);
                        let rec = nodes[lose].rec;
                        nodes[keep].rec.absorb(&rec);
                        nodes[lose].parent = cur;
                        if *track_comps {
                            comp_parent[nodes[lose].comp as usize] = nodes[keep].comp;
                        }
                        forwarded.push(sq);
                    }
                });
            }
        }

        // 3b) Record pass: fold each new run's feature contribution into its
        // (resolved) surviving slot, or mint a fresh slot for runs that
        // touched nothing. Resolution here doubles as the frontier re-root:
        // all of this row's unions are already done, so the stored slots are
        // final roots for the inter-row invariant.
        for i in 0..self.cur_runs.len() {
            let sb = self.cur_runs[i];
            let (a, b) = (sb >> 32, sb & 0xffff_ffff);
            let len = b - a + 1;
            let up_exposed = len as u32 - count_ones_in_span(&self.prev_words, a as u32, b as u32);
            let rec = RetiredComponent {
                min_pos_col: a as u32,
                min_pos_row: row,
                area: len,
                min_row: row,
                max_row: row,
                min_col: a as u32,
                max_col: b as u32,
                sum_row: len * u64::from(row),
                sum_col: (a + b) * len / 2,
                // Both horizontal ends are exposed; north exposure is what
                // the previous row does not cover; south exposure arrives
                // with the next row (or the virtual finish row).
                perimeter: 2 + u64::from(up_exposed),
            };
            let slot = match self.cur_slots[i] {
                Self::NONE => {
                    let comp = if self.track_comps {
                        let id = u32::try_from(self.comp_parent.len())
                            .expect("more than u32::MAX components in one tracked stream");
                        self.comp_parent.push(id);
                        id
                    } else {
                        0
                    };
                    match self.free.pop() {
                        Some(s) => {
                            self.nodes[s as usize] = Node {
                                parent: s,
                                touched: stamp,
                                scanned: 0,
                                comp,
                                rec,
                            };
                            s
                        }
                        None => {
                            let s = u32::try_from(self.nodes.len())
                                .expect("more than u32::MAX live union-find slots");
                            self.nodes.push(Node {
                                parent: s,
                                touched: stamp,
                                scanned: 0,
                                comp,
                                rec,
                            });
                            s
                        }
                    }
                }
                s => {
                    let s = Self::resolve(&mut self.nodes, s);
                    self.nodes[s as usize].rec.absorb(&rec);
                    self.nodes[s as usize].touched = stamp;
                    s
                }
            };
            self.cur_slots[i] = slot;
            self.stats.pixels += len;
        }
        self.stats.peak_nodes = self
            .stats
            .peak_nodes
            .max(self.nodes.len() - self.free.len());

        // 4) Retirement: frontier roots no run of this row merged into can
        // never reconnect (rows only ever arrive below them) — emit and
        // recycle them.
        for i in 0..self.prev_slots.len() {
            let s = Self::resolve(&mut self.nodes, self.prev_slots[i]);
            let node = &mut self.nodes[s as usize];
            if node.scanned == stamp {
                continue;
            }
            node.scanned = stamp;
            if node.touched != stamp {
                self.retired.push(node.rec);
                if self.track_comps {
                    self.retired_comps.push(node.comp);
                }
                self.stats.retired += 1;
                self.free.push(s);
            }
        }

        // 5) Recycle this row's forwarded slots — after the step-3b resolves
        // nothing points at them.
        self.free.append(&mut self.forwarded);

        // 6) The new row becomes the frontier.
        std::mem::swap(&mut self.prev_runs, &mut self.cur_runs);
        std::mem::swap(&mut self.prev_slots, &mut self.cur_slots);
        self.prev_words.copy_from_slice(words);
        self.stats.peak_frontier_runs = self.stats.peak_frontier_runs.max(self.prev_runs.len());
    }
}

/// Find with path halving over the component-id forest of a tracked stream.
#[inline]
fn comp_find(parent: &mut [u32], mut x: u32) -> u32 {
    loop {
        let p = parent[x as usize];
        if p == x {
            return x;
        }
        let g = parent[p as usize];
        if g != p {
            parent[x as usize] = g;
        }
        x = g;
    }
}

/// A reusable session that labels whole frames **through the streaming
/// engine**: rows are pushed one at a time into an internal component-tracked
/// [`StreamLabeler`], every run is logged with the component id it joined,
/// and once the stream finishes the retired records hand each component its
/// paper label (minimum column-major position) — which one run-fill pass then
/// writes into a [`LabelGrid`], bit-identical to
/// [`crate::fast::fast_labels_conn`] and the BFS oracle.
///
/// The grid output necessarily costs `O(rows × cols)` (the grid itself) plus
/// an `O(runs)` log, so this type trades the pure engine's bounded-memory
/// guarantee for interchangeability with the whole-frame engines; the
/// labeler's union–find still runs in the `O(cols + live)` frontier regime.
/// All scratch (the inner labeler, the run log, the component arenas) is
/// kept between calls.
#[derive(Debug)]
pub struct StreamGridLabeler {
    inner: StreamLabeler,
    /// Packed run bounds + component id per run, rows concatenated.
    run_log: Vec<(u64, u32)>,
    /// Index of the first logged run of each row, plus one sentinel.
    row_runs: Vec<u32>,
    /// Final label per retired component root id.
    comp_label: Vec<u32>,
}

impl Default for StreamGridLabeler {
    fn default() -> Self {
        StreamGridLabeler::new()
    }
}

impl StreamGridLabeler {
    /// Creates a session with empty (growable) scratch storage.
    pub fn new() -> Self {
        StreamGridLabeler {
            inner: StreamLabeler::new(0, Connectivity::Four),
            run_log: Vec::new(),
            row_runs: Vec::new(),
            comp_label: Vec::new(),
        }
    }

    /// Labels `img` into `out` (re-dimensioned; every cell written exactly
    /// once) by replaying its rows through the streaming engine. With reused
    /// storage of sufficient capacity the call performs no heap allocation.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) {
        let (rows, cols) = (img.rows(), img.cols());
        self.inner.reset(cols, conn);
        self.inner.track_comps = true;
        self.run_log.clear();
        self.row_runs.clear();
        self.row_runs.reserve(rows + 1);
        for r in 0..rows {
            self.inner.push_row(img.row_words(r));
            self.row_runs
                .push(u32::try_from(self.run_log.len()).expect("run count exceeds u32"));
            // After a push the frontier is this row: log its runs with the
            // component each resolved into (roots between rows, so the comp
            // id is current — later unions are chased through comp_parent).
            let inner = &self.inner;
            self.run_log.extend(
                inner
                    .prev_runs
                    .iter()
                    .zip(&inner.prev_slots)
                    .map(|(&sb, &slot)| (sb, inner.nodes[slot as usize].comp)),
            );
        }
        self.row_runs
            .push(u32::try_from(self.run_log.len()).expect("run count exceeds u32"));
        self.inner.finish();

        // Every component is now retired; its record carries the minimum
        // column-major position — the paper label — keyed by root comp id.
        self.comp_label.clear();
        self.comp_label
            .resize(self.inner.comp_parent.len(), LabelGrid::BACKGROUND);
        for (rec, &comp) in self.inner.retired.iter().zip(&self.inner.retired_comps) {
            self.comp_label[comp as usize] = rec.label(rows) as u32;
        }

        // Output: one background fill + run-at-a-time label fills per row,
        // resolving (and compressing) each logged component id.
        out.reset_dims(rows, cols);
        let StreamGridLabeler {
            inner,
            run_log,
            row_runs,
            comp_label,
        } = self;
        let comp_parent = &mut inner.comp_parent;
        for r in 0..rows {
            let row = out.row_mut(r);
            row.fill(LabelGrid::BACKGROUND);
            for entry in &mut run_log[row_runs[r] as usize..row_runs[r + 1] as usize] {
                let root = comp_find(comp_parent, entry.1);
                entry.1 = root;
                let label = comp_label[root as usize];
                let (a, b) = ((entry.0 >> 32) as usize, (entry.0 & 0xffff_ffff) as usize);
                row[a] = label;
                row[b] = label;
                if b - a > 1 {
                    row[a + 1..b].fill(label);
                }
            }
        }
    }

    /// Statistics of the most recent call (frontier peaks, retirements).
    pub fn last_stats(&self) -> StreamStats {
        self.inner.stats()
    }

    /// Number of runs logged by the most recent call.
    pub fn last_runs(&self) -> usize {
        self.run_log.len()
    }

    /// Number of components labeled by the most recent call.
    pub fn last_components(&self) -> usize {
        self.inner.stats().retired as usize
    }

    /// Total bytes of scratch capacity currently reserved (inner labeler,
    /// run log, and component arenas).
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.inner.scratch_bytes()
            + self.run_log.capacity() * size_of::<(u64, u32)>()
            + self.row_runs.capacity() * size_of::<u32>()
            + self.comp_label.capacity() * size_of::<u32>()
    }
}

/// A source of packed image rows for [`label_stream`].
///
/// Implementations fill `words` with exactly `cols().div_ceil(64)` words per
/// row (bit `c % 64` of word `c / 64` is column `c`, padding bits past
/// `cols()` zero) and return `false` at end of input.
pub trait RowSource {
    /// Row width in pixels.
    fn cols(&self) -> usize;
    /// Total rows, when known up front (a PBM header knows; an unbounded
    /// ingest may not).
    fn rows_hint(&self) -> Option<usize> {
        None
    }
    /// Reads the next row into `words` (cleared and refilled). `Ok(false)`
    /// signals end of input.
    fn next_row(&mut self, words: &mut Vec<u64>) -> io::Result<bool>;
}

/// Replays an in-memory [`Bitmap`] row by row — the adapter the differential
/// suites use to prove the streaming engine equivalent to the whole-frame
/// engines.
#[derive(Clone, Copy, Debug)]
pub struct BitmapRows<'a> {
    img: &'a Bitmap,
    next: usize,
}

impl<'a> BitmapRows<'a> {
    /// Streams the rows of `img` from top to bottom.
    pub fn new(img: &'a Bitmap) -> Self {
        BitmapRows { img, next: 0 }
    }
}

impl RowSource for BitmapRows<'_> {
    fn cols(&self) -> usize {
        self.img.cols()
    }

    fn rows_hint(&self) -> Option<usize> {
        Some(self.img.rows())
    }

    fn next_row(&mut self, words: &mut Vec<u64>) -> io::Result<bool> {
        if self.next >= self.img.rows() {
            return Ok(false);
        }
        words.clear();
        words.extend_from_slice(self.img.row_words(self.next));
        self.next += 1;
        Ok(true)
    }
}

/// The result of draining a [`RowSource`] through a [`StreamLabeler`].
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// Every retired component, in retirement order.
    pub components: Vec<RetiredComponent>,
    /// Aggregate statistics (rows, pixels, frontier peaks).
    pub stats: StreamStats,
}

/// Streams every row of `source` through a fresh [`StreamLabeler`] and
/// returns the retired components plus run statistics. The image is never
/// materialized: memory stays `O(cols + live + retired)`.
pub fn label_stream<S: RowSource>(source: &mut S, conn: Connectivity) -> io::Result<StreamRun> {
    let mut labeler = StreamLabeler::new(source.cols(), conn);
    let mut words = Vec::with_capacity(source.cols().div_ceil(64));
    while source.next_row(&mut words)? {
        labeler.push_row(&words);
    }
    let stats = labeler.finish();
    Ok(StreamRun {
        components: labeler.drain_retired().collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_labels_conn;
    use crate::gen;

    /// Streams `img` and returns the retired records sorted canonically.
    fn stream_sorted(img: &Bitmap, conn: Connectivity) -> Vec<RetiredComponent> {
        let mut run = label_stream(&mut BitmapRows::new(img), conn).unwrap();
        run.components.sort_unstable();
        run.components
    }

    /// Brute-force per-component records from a label grid.
    fn reference_records(img: &Bitmap, conn: Connectivity) -> Vec<RetiredComponent> {
        let labels = fast_labels_conn(img, conn);
        let mut by_label: std::collections::BTreeMap<u32, RetiredComponent> = Default::default();
        for (r, c) in img.iter_ones_colmajor() {
            let mut exposed = 0u64;
            if r == 0 || !img.get(r - 1, c) {
                exposed += 1;
            }
            if r + 1 >= img.rows() || !img.get(r + 1, c) {
                exposed += 1;
            }
            if c == 0 || !img.get(r, c - 1) {
                exposed += 1;
            }
            if c + 1 >= img.cols() || !img.get(r, c + 1) {
                exposed += 1;
            }
            let rec = RetiredComponent {
                min_pos_col: c as u32,
                min_pos_row: r as u32,
                area: 1,
                min_row: r as u32,
                max_row: r as u32,
                min_col: c as u32,
                max_col: c as u32,
                sum_row: r as u64,
                sum_col: c as u64,
                perimeter: exposed,
            };
            by_label
                .entry(labels.get(r, c))
                .and_modify(|acc| acc.absorb(&rec))
                .or_insert(rec);
        }
        let mut out: Vec<RetiredComponent> = by_label.into_values().collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_reference_on_tiny_shapes() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
            "#..#\n....\n#..#\n",
            "##..\n..##\n",
        ] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    stream_sorted(&img, conn),
                    reference_records(&img, conn),
                    "conn={conn:?} art:\n{art}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 40, 17).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    stream_sorted(&img, conn),
                    reference_records(&img, conn),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_word_boundary_widths() {
        for cols in [63usize, 64, 65, 127, 128, 130] {
            let img = gen::uniform_random(37, cols, 0.5, cols as u64);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    stream_sorted(&img, conn),
                    reference_records(&img, conn),
                    "cols={cols} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn labels_reconstruct_the_paper_convention() {
        let img = gen::by_name("blobs", 32, 5).unwrap();
        let labels = fast_labels_conn(&img, Connectivity::Four);
        let mut got: Vec<u64> = stream_sorted(&img, Connectivity::Four)
            .iter()
            .map(|rec| rec.label(img.rows()))
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = labels
            .component_stats()
            .iter()
            .map(|info| u64::from(info.label))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn components_retire_as_soon_as_they_disconnect() {
        // Two bars separated by a blank row: the first bar must retire the
        // moment the blank row arrives, not at finish.
        let img = Bitmap::from_art("###\n...\n###\n");
        let mut labeler = StreamLabeler::new(3, Connectivity::Four);
        labeler.push_row(img.row_words(0));
        assert_eq!(labeler.drain_retired().count(), 0);
        labeler.push_row(img.row_words(1));
        let first: Vec<_> = labeler.drain_retired().collect();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].area, 3);
        assert_eq!(first[0].perimeter, 8);
        labeler.push_row(img.row_words(2));
        assert_eq!(labeler.drain_retired().count(), 0, "still live");
        labeler.finish();
        assert_eq!(labeler.drain_retired().count(), 1);
    }

    #[test]
    fn eight_connectivity_keeps_diagonal_neighbors_alive() {
        // A diagonal staircase: under 8-conn it is one component and must
        // not retire early; under 4-conn each pixel retires row by row.
        let img = Bitmap::from_art("#..\n.#.\n..#\n");
        let mut run8 = label_stream(&mut BitmapRows::new(&img), Connectivity::Eight).unwrap();
        assert_eq!(run8.components.len(), 1);
        assert_eq!(run8.components.pop().unwrap().area, 3);
        let run4 = label_stream(&mut BitmapRows::new(&img), Connectivity::Four).unwrap();
        assert_eq!(run4.components.len(), 3);
    }

    #[test]
    fn memory_stays_bounded_by_cols_not_rows() {
        // A tall image: the frontier and the slab must scale with cols, not
        // with rows * cols.
        let cols = 64usize;
        let img = gen::uniform_random(512, cols, 0.5, 7);
        let mut source = BitmapRows::new(&img);
        let run = label_stream(&mut source, Connectivity::Four).unwrap();
        assert!(
            run.stats.peak_frontier_runs <= cols / 2 + 1,
            "frontier {} exceeds the run bound for {cols} columns",
            run.stats.peak_frontier_runs
        );
        assert!(
            run.stats.peak_nodes <= cols + 1,
            "slab occupancy {} exceeds the O(cols + live) bound for {cols} columns",
            run.stats.peak_nodes
        );
        assert_eq!(run.stats.rows, 512);
        assert_eq!(run.stats.pixels, img.count_ones() as u64);
    }

    #[test]
    fn degenerate_dimensions_stream_cleanly() {
        // 0 columns: every row is empty.
        let mut zero_cols = StreamLabeler::new(0, Connectivity::Four);
        zero_cols.push_row(&[]);
        zero_cols.push_row(&[]);
        let stats = zero_cols.finish();
        assert_eq!(stats.retired, 0);
        assert_eq!(stats.rows, 2);
        // 0 rows: finish without pushing anything.
        let mut zero_rows = StreamLabeler::new(9, Connectivity::Eight);
        let stats = zero_rows.finish();
        assert_eq!((stats.rows, stats.retired), (0, 0));
        assert_eq!(zero_rows.drain_retired().count(), 0);
        // 1×1 foreground pixel.
        let img = Bitmap::from_art("#");
        let run = label_stream(&mut BitmapRows::new(&img), Connectivity::Four).unwrap();
        assert_eq!(run.components.len(), 1);
        let rec = run.components[0];
        assert_eq!((rec.area, rec.perimeter), (1, 4));
        assert_eq!(rec.centroid(), (0.0, 0.0));
        assert_eq!((rec.width(), rec.height()), (1, 1));
    }

    #[test]
    fn finish_is_idempotent_and_push_after_finish_panics() {
        let mut labeler = StreamLabeler::new(8, Connectivity::Four);
        labeler.push_row(&[0b1111]);
        let a = labeler.finish();
        let b = labeler.finish();
        assert_eq!(a, b);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            labeler.push_row(&[0b1111]);
        }));
        assert!(result.is_err(), "push_row after finish must panic");
    }

    #[test]
    fn live_components_tracks_the_frontier() {
        let mut labeler = StreamLabeler::new(8, Connectivity::Four);
        labeler.push_row(&[0b0101_0101]);
        assert_eq!(labeler.live_components(), 4);
        labeler.push_row(&[0b1111_1111]);
        assert_eq!(labeler.live_components(), 1);
        labeler.finish();
        assert_eq!(labeler.live_components(), 0);
    }

    #[test]
    fn grid_labeler_is_bit_identical_to_the_fast_engine() {
        let mut session = StreamGridLabeler::new();
        let mut grid = crate::labels::LabelGrid::new_background(1, 1);
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 33, 7).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                session.label_into(&img, conn, &mut grid);
                assert_eq!(
                    grid,
                    fast_labels_conn(&img, conn),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn grid_labeler_survives_interleaved_dims_and_checker_density() {
        // Run-dense checker rows exercise the word-AND merge sweep; the
        // interleaved sizes exercise session reset across dims.
        let mut session = StreamGridLabeler::new();
        let mut grid = crate::labels::LabelGrid::new_background(1, 1);
        for (rows, cols) in [(64, 64), (3, 130), (65, 17), (1, 1), (200, 1)] {
            let img = gen::uniform_random(rows, cols, 0.55, (rows * 31 + cols) as u64);
            session.label_into(&img, Connectivity::Four, &mut grid);
            assert_eq!(grid, fast_labels_conn(&img, Connectivity::Four));
        }
        let checker = gen::by_name("checker", 48, 0).unwrap();
        session.label_into(&checker, Connectivity::Four, &mut grid);
        assert_eq!(grid, fast_labels_conn(&checker, Connectivity::Four));
    }

    #[test]
    fn reset_rewinds_a_session_without_allocating_anew() {
        let img = gen::by_name("random50", 50, 4).unwrap();
        let mut labeler = StreamLabeler::new(img.cols(), Connectivity::Four);
        let run_fresh = {
            for r in 0..img.rows() {
                labeler.push_row(img.row_words(r));
            }
            labeler.finish();
            let mut v: Vec<RetiredComponent> = labeler.drain_retired().collect();
            v.sort_unstable();
            v
        };
        let watermark = labeler.scratch_bytes();
        labeler.reset(img.cols(), Connectivity::Four);
        for r in 0..img.rows() {
            labeler.push_row(img.row_words(r));
        }
        labeler.finish();
        let mut run_warm: Vec<RetiredComponent> = labeler.drain_retired().collect();
        run_warm.sort_unstable();
        assert_eq!(run_warm, run_fresh);
        assert_eq!(
            labeler.scratch_bytes(),
            watermark,
            "warm replay of the same frame must not grow any arena"
        );
    }

    #[test]
    fn reset_switches_dimensions_and_connectivity() {
        let mut labeler = StreamLabeler::new(8, Connectivity::Four);
        labeler.push_row(&[0b1010_1010]);
        labeler.finish();
        labeler.drain_retired();
        let tall = Bitmap::from_art("#..\n.#.\n..#\n");
        labeler.reset(3, Connectivity::Eight);
        for r in 0..3 {
            labeler.push_row(tall.row_words(r));
        }
        labeler.finish();
        let run: Vec<RetiredComponent> = labeler.drain_retired().collect();
        assert_eq!(run.len(), 1, "8-conn staircase is one component");
        assert_eq!(run[0].area, 3);
        assert_eq!(labeler.stats().rows, 3);
    }

    #[test]
    fn slab_slots_are_recycled_across_generations() {
        // Alternating full/empty rows churn components every other row; the
        // slab must recycle slots instead of growing per generation.
        let cols = 32usize;
        let full = vec![u32::MAX as u64; 1]; // 32 ones in a 64-bit word
        let empty = vec![0u64; 1];
        let mut labeler = StreamLabeler::new(cols, Connectivity::Four);
        for _ in 0..100 {
            labeler.push_row(&full);
            labeler.push_row(&empty);
            labeler.drain_retired();
        }
        let stats = labeler.finish();
        assert_eq!(stats.retired, 100);
        assert!(
            stats.peak_nodes <= 2,
            "peak {} slots for one live component",
            stats.peak_nodes
        );
    }
}
