//! Binary images, workload generators, and labeling oracles for the
//! reproduction of Greenberg, *Finding Connected Components on a Scan Line
//! Array Processor* (SPAA 1995).
//!
//! The paper labels the connected components of an `n × n` binary image
//! (4-connectivity: two 1-pixels are connected when a path of horizontally or
//! vertically adjacent 1-pixels joins them). This crate provides:
//!
//! * [`Bitmap`] — a bit-packed binary image (rectangular `rows × cols`; the
//!   paper's square `n × n` is the common case) plus [`Columns`], the
//!   column-major view a SLAP processing element works from.
//! * [`LabelGrid`] — per-pixel component labels with the paper's convention:
//!   the label of a component is the minimum *column-major position*
//!   (`col * rows + row`) over its pixels; background pixels carry
//!   [`LabelGrid::BACKGROUND`].
//! * [`oracle`] — a sequential flood-fill reference labeler: the *gold*
//!   ground truth the fast engine is differentially tested against.
//! * [`fast`] — the word-parallel run-based labeling engine, bit-identical
//!   to the oracle and several times faster; the default reference the
//!   differential suites and benchmarks compare against. Its
//!   [`fast::parallel`] submodule labels disjoint horizontal strips on
//!   scoped worker threads and stitches the seams over the run universe —
//!   the first engine here that scales with cores. [`fast::tiled`]
//!   generalizes the decomposition to a 2-D tile grid with hierarchical
//!   seam merging, and [`fast::ooc`] streams frames taller than memory
//!   through it one band of tiles at a time.
//! * [`stream`] — the **streaming** engine: rows arrive one at a time
//!   ([`stream::StreamLabeler::push_row`]), memory stays
//!   `O(cols + live components)` instead of `O(rows × cols)`, and finished
//!   components retire with their feature records the moment they
//!   disconnect — the host-side mirror of the paper's one-scan-line-per-beat
//!   input discipline.
//! * [`gen`] — deterministic workload generators covering the benign, typical
//!   and adversarial image families the paper reasons about (including the
//!   Figure 3(a)/(b) patterns and the Theorem 5 even-rows family).
//! * [`pbm`] — plain/raw PBM (P1/P4) input and output so workloads can be
//!   exchanged with external tools; [`pbm::PbmRowReader`] streams rows
//!   incrementally from any reader for the streaming engine.

#![warn(missing_docs)]

pub mod bitmap;
pub mod connectivity;
pub mod fast;
pub mod framing;
pub mod gen;
pub mod labels;
pub mod morph;
pub mod oracle;
pub mod pbm;
pub mod stream;

pub use bitmap::{Bitmap, Columns};
pub use connectivity::Connectivity;
pub use fast::{
    fast_component_count, fast_labels, fast_labels_conn, label_out_of_core, parallel_labels,
    parallel_labels_conn, tiled_labels, tiled_labels_conn, FastLabeler, OocRun, OocStats,
    OutOfCoreLabeler, ParallelLabeler, SeamLevel, TileStats, TiledLabeler,
};
pub use labels::{ComponentInfo, LabelGrid};
pub use oracle::{bfs_labels, bfs_labels_conn, BfsOracle};
pub use stream::{
    label_stream, BitmapRows, RetiredComponent, RowSource, StreamGridLabeler, StreamLabeler,
};
