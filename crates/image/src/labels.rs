//! Per-pixel component labels and comparisons between labelings.

use crate::bitmap::Bitmap;
use std::collections::HashMap;

/// Per-pixel component labels, row-major.
///
/// Foreground pixels hold a `u32` label; background pixels hold
/// [`LabelGrid::BACKGROUND`]. The paper's convention — used by the oracle and
/// by Algorithm CC — is that a component's label is the minimum column-major
/// position (`col * rows + row`) over its pixels, so labels of an `r × c`
/// image fit in `u32` for any image up to 65536 × 65536 pixels... in practice
/// we require `rows * cols <= u32::MAX` and assert it on construction.
#[derive(Clone, PartialEq, Eq)]
pub struct LabelGrid {
    rows: usize,
    cols: usize,
    labels: Vec<u32>,
}

impl LabelGrid {
    /// Sentinel for background (0) pixels.
    pub const BACKGROUND: u32 = u32::MAX;

    /// Creates a grid with every pixel marked background.
    pub fn new_background(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "label grid dimensions must be positive"
        );
        // checked_mul, not plain widening: on a 64-bit usize two huge dims
        // can wrap u64 itself, so the widening product alone could pass.
        assert!(
            (rows as u64)
                .checked_mul(cols as u64)
                .is_some_and(|px| px < u32::MAX as u64),
            "image too large for u32 labels"
        );
        LabelGrid {
            rows,
            cols,
            labels: vec![Self::BACKGROUND; rows * cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the label of pixel `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u32 {
        self.labels[row * self.cols + col]
    }

    /// Writes the label of pixel `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, label: u32) {
        self.labels[row * self.cols + col] = label;
    }

    /// `true` when the pixel carries a (foreground) label.
    #[inline]
    pub fn is_foreground(&self, row: usize, col: usize) -> bool {
        self.get(row, col) != Self::BACKGROUND
    }

    /// The raw label slice (row-major), for bulk comparisons.
    pub fn as_slice(&self) -> &[u32] {
        &self.labels
    }

    /// The labels of one row, read-only.
    #[inline]
    pub fn row(&self, row: usize) -> &[u32] {
        &self.labels[row * self.cols..(row + 1) * self.cols]
    }

    /// The labels of one row, for bulk writes (run fills in the fast engine
    /// and the readout phases).
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [u32] {
        &mut self.labels[row * self.cols..(row + 1) * self.cols]
    }

    /// Splits the grid into disjoint consecutive row bands for concurrent
    /// writes (one scoped thread per band in the strip-parallel engine).
    ///
    /// `bounds` are the `T + 1` ascending band boundaries, starting at `0`
    /// and ending at `rows()`; band `t` receives the row-major cells of rows
    /// `bounds[t]..bounds[t + 1]` as one mutable slice. Panics when the
    /// boundaries are not ascending or do not cover the grid exactly.
    pub fn strip_rows_mut(&mut self, bounds: &[usize]) -> Vec<&mut [u32]> {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&self.rows),
            "band boundaries must start at 0 and end at rows()"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "band boundaries must be strictly ascending"
        );
        let cols = self.cols;
        let mut rest = &mut self.labels[..];
        let mut bands = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2) {
            let (band, tail) = rest.split_at_mut((w[1] - w[0]) * cols);
            bands.push(band);
            rest = tail;
        }
        bands
    }

    /// Re-dimensions the grid to `rows × cols` and marks every pixel
    /// background, reusing the existing allocation when it is large enough.
    /// The batch-fill equivalent of constructing with
    /// [`LabelGrid::new_background`].
    pub fn reset_background(&mut self, rows: usize, cols: usize) {
        self.reset_dims(rows, cols);
        self.labels.fill(Self::BACKGROUND);
    }

    /// Re-dimensions the grid, leaving cell contents unspecified — the
    /// caller must overwrite every cell (the fast engine writes each row
    /// exactly once, runs and background gaps alike).
    pub(crate) fn reset_dims(&mut self, rows: usize, cols: usize) {
        assert!(
            rows > 0 && cols > 0,
            "label grid dimensions must be positive"
        );
        assert!(
            (rows as u64) * (cols as u64) < u32::MAX as u64,
            "image too large for u32 labels"
        );
        self.rows = rows;
        self.cols = cols;
        self.labels.resize(rows * cols, Self::BACKGROUND);
    }

    /// Number of distinct components (distinct foreground labels).
    pub fn component_count(&self) -> usize {
        let mut seen: Vec<u32> = self
            .labels
            .iter()
            .copied()
            .filter(|&l| l != Self::BACKGROUND)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Relabels each component with the minimum column-major position of its
    /// pixels, producing the paper's canonical labeling. Foreground/background
    /// structure is preserved.
    pub fn canonicalize(&self) -> LabelGrid {
        let mut min_pos: HashMap<u32, u32> = HashMap::new();
        for c in 0..self.cols {
            for r in 0..self.rows {
                let l = self.get(r, c);
                if l != Self::BACKGROUND {
                    let pos = (c * self.rows + r) as u32;
                    min_pos.entry(l).or_insert(pos); // first in col-major scan = min
                }
            }
        }
        let mut out = LabelGrid::new_background(self.rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let l = self.get(r, c);
                if l != Self::BACKGROUND {
                    out.set(r, c, min_pos[&l]);
                }
            }
        }
        out
    }

    /// `true` when `self` and `other` encode the same partition of foreground
    /// pixels (i.e. they agree up to a bijective renaming of labels) and the
    /// same foreground mask.
    pub fn same_partition(&self, other: &LabelGrid) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        let mut fwd: HashMap<u32, u32> = HashMap::new();
        let mut bwd: HashMap<u32, u32> = HashMap::new();
        for (&a, &b) in self.labels.iter().zip(other.labels.iter()) {
            match (a == Self::BACKGROUND, b == Self::BACKGROUND) {
                (true, true) => continue,
                (false, false) => {
                    if *fwd.entry(a).or_insert(b) != b || *bwd.entry(b).or_insert(a) != a {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// Per-component statistics, sorted by label.
    pub fn component_stats(&self) -> Vec<ComponentInfo> {
        let mut map: HashMap<u32, ComponentInfo> = HashMap::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let l = self.get(r, c);
                if l == Self::BACKGROUND {
                    continue;
                }
                let e = map.entry(l).or_insert(ComponentInfo {
                    label: l,
                    pixels: 0,
                    min_row: r,
                    max_row: r,
                    min_col: c,
                    max_col: c,
                });
                e.pixels += 1;
                e.min_row = e.min_row.min(r);
                e.max_row = e.max_row.max(r);
                e.min_col = e.min_col.min(c);
                e.max_col = e.max_col.max(c);
            }
        }
        let mut v: Vec<ComponentInfo> = map.into_values().collect();
        v.sort_unstable_by_key(|i| i.label);
        v
    }

    /// Renders the labeling as ASCII art: each component gets a letter
    /// (`a`–`z`, `A`–`Z`, `0`–`9`, cycling in order of first column-major
    /// appearance), background is `.`. Intended for examples and debugging
    /// of small images.
    pub fn to_art(&self) -> String {
        const GLYPHS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
        let mut glyph_of: HashMap<u32, char> = HashMap::new();
        for c in 0..self.cols {
            for r in 0..self.rows {
                let l = self.get(r, c);
                if l != Self::BACKGROUND && !glyph_of.contains_key(&l) {
                    let g = GLYPHS[glyph_of.len() % GLYPHS.len()] as char;
                    glyph_of.insert(l, g);
                }
            }
        }
        let mut s = String::with_capacity(self.rows * (self.cols + 1));
        for r in 0..self.rows {
            for c in 0..self.cols {
                let l = self.get(r, c);
                s.push(if l == Self::BACKGROUND {
                    '.'
                } else {
                    glyph_of[&l]
                });
            }
            s.push('\n');
        }
        s
    }

    /// Checks that `self` is a *valid* labeling of `img`: the foreground mask
    /// matches and two foreground pixels have equal labels exactly when they
    /// are 4-connected in `img`. Returns a description of the first violation.
    pub fn validate_against(&self, img: &Bitmap) -> Result<(), String> {
        if self.rows != img.rows() || self.cols != img.cols() {
            return Err(format!(
                "dimension mismatch: labels {}x{} vs image {}x{}",
                self.rows,
                self.cols,
                img.rows(),
                img.cols()
            ));
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                if img.get(r, c) != self.is_foreground(r, c) {
                    return Err(format!("foreground mask mismatch at ({r},{c})"));
                }
            }
        }
        // Deliberately the BFS oracle, not the fast engine: a *validity*
        // check must use the one reference that shares no code path with
        // the run-scanning machinery it may be asked to judge.
        let truth = crate::oracle::bfs_labels(img);
        if self.same_partition(&truth) {
            Ok(())
        } else {
            Err("labeling partition differs from 4-connectivity".to_string())
        }
    }
}

impl std::fmt::Debug for LabelGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "LabelGrid({}x{})", self.rows, self.cols)?;
        if self.rows <= 32 && self.cols <= 32 {
            for r in 0..self.rows {
                for c in 0..self.cols {
                    let l = self.get(r, c);
                    if l == Self::BACKGROUND {
                        write!(f, "   .")?;
                    } else {
                        write!(f, "{l:4}")?;
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

/// Summary of one labeled component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComponentInfo {
    /// The component's label.
    pub label: u32,
    /// Number of pixels.
    pub pixels: usize,
    /// Topmost row index.
    pub min_row: usize,
    /// Bottommost row index.
    pub max_row: usize,
    /// Leftmost column index.
    pub min_col: usize,
    /// Rightmost column index.
    pub max_col: usize,
}

impl ComponentInfo {
    /// Width of the bounding box.
    pub fn width(&self) -> usize {
        self.max_col - self.min_col + 1
    }

    /// Height of the bounding box.
    pub fn height(&self) -> usize {
        self.max_row - self.min_row + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabelGrid {
        // Two components: left column pair (label 7) and bottom-right (label 9).
        let mut g = LabelGrid::new_background(2, 2);
        g.set(0, 0, 7);
        g.set(1, 0, 7);
        g.set(1, 1, 9);
        g
    }

    #[test]
    fn background_default() {
        let g = LabelGrid::new_background(3, 3);
        assert!(!g.is_foreground(1, 1));
        assert_eq!(g.component_count(), 0);
    }

    #[test]
    fn component_count_counts_distinct_labels() {
        assert_eq!(tiny().component_count(), 2);
    }

    #[test]
    fn reset_background_reuses_and_clears() {
        let mut g = tiny();
        g.reset_background(3, 4);
        assert_eq!((g.rows(), g.cols()), (3, 4));
        assert_eq!(g.component_count(), 0);
        assert!(g.as_slice().iter().all(|&l| l == LabelGrid::BACKGROUND));
        g.set(2, 3, 9);
        g.reset_background(2, 2); // shrink: stale labels must not survive
        assert_eq!(g.component_count(), 0);
    }

    #[test]
    fn row_accessors_slice_the_grid() {
        let mut g = tiny();
        assert_eq!(g.row(1), &[7, 9]);
        g.row_mut(0)[1] = 5;
        assert_eq!(g.get(0, 1), 5);
    }

    #[test]
    fn canonicalize_uses_min_column_major_position() {
        let g = tiny();
        let c = g.canonicalize();
        // Component {(0,0),(1,0)}: positions 0 and 1 -> label 0.
        // Component {(1,1)}: position 1*2+1 = 3 -> label 3.
        assert_eq!(c.get(0, 0), 0);
        assert_eq!(c.get(1, 0), 0);
        assert_eq!(c.get(1, 1), 3);
        assert_eq!(c.get(0, 1), LabelGrid::BACKGROUND);
    }

    #[test]
    fn same_partition_accepts_renaming() {
        let g = tiny();
        let mut h = LabelGrid::new_background(2, 2);
        h.set(0, 0, 100);
        h.set(1, 0, 100);
        h.set(1, 1, 5);
        assert!(g.same_partition(&h));
    }

    #[test]
    fn same_partition_rejects_merge_and_split() {
        let g = tiny();
        let mut merged = LabelGrid::new_background(2, 2);
        merged.set(0, 0, 1);
        merged.set(1, 0, 1);
        merged.set(1, 1, 1);
        assert!(!g.same_partition(&merged));
        let mut split = LabelGrid::new_background(2, 2);
        split.set(0, 0, 1);
        split.set(1, 0, 2);
        split.set(1, 1, 3);
        assert!(!g.same_partition(&split));
    }

    #[test]
    fn same_partition_rejects_mask_mismatch() {
        let g = tiny();
        let mut h = LabelGrid::new_background(2, 2);
        h.set(0, 0, 1);
        h.set(1, 0, 1);
        assert!(!g.same_partition(&h));
    }

    #[test]
    fn stats_cover_bounding_boxes() {
        let stats = tiny().component_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].label, 7);
        assert_eq!(stats[0].pixels, 2);
        assert_eq!(stats[0].height(), 2);
        assert_eq!(stats[0].width(), 1);
        assert_eq!(stats[1].label, 9);
        assert_eq!(stats[1].pixels, 1);
    }

    #[test]
    fn to_art_assigns_one_glyph_per_component() {
        let g = tiny();
        let art = g.to_art();
        assert_eq!(art, "a.\nab\n");
    }

    #[test]
    fn to_art_cycles_glyphs_beyond_62_components() {
        // 8x16 checkerboard = 32 isolated components; use a wide grid with
        // 70 singletons to force glyph reuse without panicking
        let mut g = LabelGrid::new_background(1, 70);
        for c in 0..70 {
            g.set(0, c, c as u32);
        }
        let art = g.to_art();
        assert_eq!(art.trim_end().chars().count(), 70);
        assert!(art.starts_with("abcdefgh"));
    }

    #[test]
    fn validate_against_detects_bad_mask() {
        let img = Bitmap::from_art("#.\n##\n");
        let mut g = LabelGrid::new_background(2, 2);
        g.set(0, 0, 0);
        // missing (1,0) and (1,1)
        assert!(g.validate_against(&img).is_err());
    }
}
