//! Plain (P1) and raw (P4) PBM image input/output.
//!
//! PBM is the natural interchange format for binary images; the examples use
//! it to dump workloads for inspection with standard tools, and
//! [`PbmRowReader`] feeds the streaming labeler ([`crate::stream`]) one row
//! at a time without ever materializing the frame.
//!
//! The header is parsed **byte-exactly**: magic, width, and height are
//! whitespace-separated tokens with `#` comments, and — critically for `P4`
//! — exactly *one* whitespace byte separates the height from the raw pixel
//! bytes. (An earlier line-oriented tokenizer consumed whole lines, so raw
//! pixel bytes sharing the height's line, or containing `#`/newline bytes,
//! could be swallowed as header text.)
//!
//! Every parse failure is a structured [`PbmError`] (wrapped into the
//! `io::Error` the signatures return): untrusted ingest — the `slapd`
//! labeling service in particular — recovers the variant with
//! [`PbmError::from_io`] and maps it to a typed wire error code instead of
//! pattern-matching message strings.

use crate::bitmap::Bitmap;
use crate::framing::{Frame, FrameError};
use crate::stream::RowSource;
use std::io::{self, BufRead, Read, Write};

/// Structured PBM parse failure. Every error this module produces is one of
/// these variants, wrapped into the [`io::Error`] the public signatures
/// return (so [`RowSource`] and every existing caller keep working); a
/// consumer that needs the *taxonomy* — the labeling service maps parse
/// failures to typed wire error codes — recovers it with
/// [`PbmError::from_io`].
#[derive(Debug)]
pub enum PbmError {
    /// Transport failure underneath the parser (the socket died, not the
    /// bytes).
    Io(io::Error),
    /// The magic token was neither `P1` nor `P4`.
    BadMagic(String),
    /// End of input inside the header (or a `P4` header with no pixel byte
    /// after the height's single whitespace).
    TruncatedHeader,
    /// A width/height token that is not a decimal number.
    BadDim {
        /// Which dimension failed (`"width"` or `"height"`).
        name: &'static str,
        /// The offending token.
        token: String,
    },
    /// A zero width or height: no pixel raster can follow.
    ZeroDim {
        /// Declared height.
        rows: usize,
        /// Declared width.
        cols: usize,
    },
    /// `rows × cols` overflows `usize`: the raster is unrepresentable, and
    /// any consumer doing arithmetic on the product would wrap.
    DimsOverflow {
        /// Declared height.
        rows: usize,
        /// Declared width.
        cols: usize,
    },
    /// End of input before the declared raster was complete.
    TruncatedPixels {
        /// Rows the header promised.
        declared_rows: usize,
        /// Rows fully read before the input ended.
        read_rows: usize,
    },
    /// A `P1` raster byte that is not a pixel digit, whitespace, or comment.
    BadPixelByte(u8),
    /// A framed-stream length prefix containing a non-digit byte.
    BadLengthPrefix(u8),
    /// A framed-stream length prefix too large to be a real frame
    /// (> [`MAX_FRAME_BYTES`]): the prefix is lying, reject before reading.
    LyingLengthPrefix {
        /// The declared (absurd) byte length.
        declared: usize,
    },
    /// A framed-stream body that ended before its declared length — either
    /// genuine truncation or a length prefix lying high.
    TruncatedFrame {
        /// Bytes the prefix declared.
        declared: usize,
        /// Bytes that never arrived.
        missing: usize,
    },
}

impl PbmError {
    /// The [`io::ErrorKind`] this error surfaces as: truncation classes map
    /// to [`io::ErrorKind::UnexpectedEof`], malformed bytes to
    /// [`io::ErrorKind::InvalidData`], transport errors to their own kind.
    pub fn kind(&self) -> io::ErrorKind {
        match self {
            PbmError::Io(e) => e.kind(),
            PbmError::TruncatedHeader
            | PbmError::TruncatedPixels { .. }
            | PbmError::TruncatedFrame { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        }
    }

    /// Recovers the typed error from an [`io::Error`] produced by this
    /// module (`None` for foreign errors).
    pub fn from_io(err: &io::Error) -> Option<&PbmError> {
        err.get_ref()?.downcast_ref::<PbmError>()
    }
}

impl std::fmt::Display for PbmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbmError::Io(e) => write!(f, "I/O error under the PBM parser: {e}"),
            PbmError::BadMagic(m) => write!(f, "unsupported PBM magic {m:?}"),
            PbmError::TruncatedHeader => f.write_str("truncated PBM header"),
            PbmError::BadDim { name, token } => write!(f, "bad PBM {name} {token:?}"),
            PbmError::ZeroDim { rows, cols } => {
                write!(f, "zero-sized PBM image ({rows} x {cols})")
            }
            PbmError::DimsOverflow { rows, cols } => {
                write!(f, "PBM dimensions {rows} x {cols} overflow the pixel count")
            }
            PbmError::TruncatedPixels {
                declared_rows,
                read_rows,
            } => write!(
                f,
                "PBM pixel data truncated: {declared_rows} row(s) declared, {read_rows} read"
            ),
            PbmError::BadPixelByte(b) => {
                write!(f, "unexpected pixel character {:?}", *b as char)
            }
            PbmError::BadLengthPrefix(b) => {
                write!(f, "bad framed PBM length byte {:?}", *b as char)
            }
            PbmError::LyingLengthPrefix { declared } => {
                write!(f, "framed PBM length prefix out of range ({declared})")
            }
            PbmError::TruncatedFrame { declared, missing } => write!(
                f,
                "framed PBM truncated: {missing} of {declared} frame bytes missing"
            ),
        }
    }
}

impl std::error::Error for PbmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PbmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PbmError> for io::Error {
    fn from(e: PbmError) -> io::Error {
        match e {
            // Transport errors pass through untouched; everything else is
            // wrapped so `PbmError::from_io` can recover the taxonomy.
            PbmError::Io(inner) => inner,
            other => io::Error::new(other.kind(), other),
        }
    }
}

impl From<FrameError> for PbmError {
    /// Maps the shared framing layer's taxonomy onto the PBM-specific one
    /// the framed readers have always reported, keeping every existing
    /// caller's match arms valid.
    fn from(e: FrameError) -> PbmError {
        match e {
            FrameError::BadPrefix(b) => PbmError::BadLengthPrefix(b),
            FrameError::Overflow { declared } => PbmError::LyingLengthPrefix { declared },
            FrameError::Truncated { declared, missing } => {
                PbmError::TruncatedFrame { declared, missing }
            }
            FrameError::Io(inner) => PbmError::Io(inner),
        }
    }
}

/// Writes `img` as plain-text PBM (`P1`).
pub fn write_plain<W: Write>(img: &Bitmap, mut w: W) -> io::Result<()> {
    writeln!(w, "P1")?;
    writeln!(w, "{} {}", img.cols(), img.rows())?;
    for r in 0..img.rows() {
        let mut line = String::with_capacity(img.cols() * 2);
        for c in 0..img.cols() {
            line.push(if img.get(r, c) { '1' } else { '0' });
            if c + 1 < img.cols() {
                line.push(' ');
            }
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Writes `img` as raw PBM (`P4`), rows padded to whole bytes.
pub fn write_raw<W: Write>(img: &Bitmap, mut w: W) -> io::Result<()> {
    writeln!(w, "P4")?;
    writeln!(w, "{} {}", img.cols(), img.rows())?;
    let bytes_per_row = img.cols().div_ceil(8);
    let mut row = vec![0u8; bytes_per_row];
    for r in 0..img.rows() {
        row.iter_mut().for_each(|b| *b = 0);
        for c in 0..img.cols() {
            if img.get(r, c) {
                row[c / 8] |= 0x80 >> (c % 8);
            }
        }
        w.write_all(&row)?;
    }
    Ok(())
}

/// PBM variants understood by the reader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Magic {
    /// Plain text: `0`/`1` characters with whitespace and `#` comments.
    Plain,
    /// Raw: rows of big-endian bit-packed bytes, rows padded to whole bytes.
    Raw,
}

/// PBM whitespace (the netpbm definition).
fn is_pbm_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// Reads one byte, `None` at end of input.
fn next_byte<R: Read>(r: &mut R) -> Result<Option<u8>, PbmError> {
    let mut b = [0u8; 1];
    loop {
        match r.read(&mut b) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(b[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(PbmError::Io(e)),
        }
    }
}

/// Reads one whitespace/comment-delimited header token, byte by byte.
/// Returns the token and the single byte that terminated it (`None` at end
/// of input). A `#` starts a comment running to the end of its line; a
/// comment terminating a token is reported as the newline that closed it, so
/// for `P4` the raw data always begins at the very next byte.
fn read_token<R: BufRead>(r: &mut R) -> Result<(String, Option<u8>), PbmError> {
    let mut token = String::new();
    loop {
        let Some(b) = next_byte(r)? else {
            return if token.is_empty() {
                Err(PbmError::TruncatedHeader)
            } else {
                Ok((token, None))
            };
        };
        if b == b'#' {
            // Swallow the comment through its newline. Mid-token this also
            // terminates the token (netpbm allows comments anywhere in the
            // header); the newline is the delimiter byte.
            loop {
                match next_byte(r)? {
                    Some(b'\n') => break,
                    Some(_) => {}
                    None => {
                        return if token.is_empty() {
                            Err(PbmError::TruncatedHeader)
                        } else {
                            Ok((token, None))
                        }
                    }
                }
            }
            if !token.is_empty() {
                return Ok((token, Some(b'\n')));
            }
        } else if is_pbm_space(b) {
            if !token.is_empty() {
                return Ok((token, Some(b)));
            }
        } else {
            token.push(b as char);
        }
    }
}

/// Parses the PBM header (`magic width height`) byte-exactly. On return the
/// reader is positioned at the first pixel byte: for `P4`, exactly one
/// whitespace byte (or one comment line) after the height. Dimensions are
/// guarded here — zero dims and a `rows × cols` product overflowing `usize`
/// are rejected before any consumer can size a buffer from them.
fn read_header<R: BufRead>(r: &mut R) -> Result<(Magic, usize, usize), PbmError> {
    let (magic_token, _) = read_token(r)?;
    let magic = match magic_token.as_str() {
        "P1" => Magic::Plain,
        "P4" => Magic::Raw,
        other => return Err(PbmError::BadMagic(other.to_string())),
    };
    let dim = |name: &'static str, token: String| {
        token
            .parse::<usize>()
            .map_err(|_| PbmError::BadDim { name, token })
    };
    let cols = dim("width", read_token(r)?.0)?;
    let (height_token, height_term) = read_token(r)?;
    let rows = dim("height", height_token)?;
    if rows == 0 || cols == 0 {
        return Err(PbmError::ZeroDim { rows, cols });
    }
    if rows.checked_mul(cols).is_none() {
        return Err(PbmError::DimsOverflow { rows, cols });
    }
    // The byte that ended the height token was the single whitespace the P4
    // spec puts before the raw data; hitting end of input instead means no
    // pixel data can follow.
    if magic == Magic::Raw && height_term.is_none() {
        return Err(PbmError::TruncatedHeader);
    }
    Ok((magic, cols, rows))
}

/// Incremental PBM reader: parses the header eagerly, then yields one packed
/// row per [`RowSource::next_row`] call — the adapter that feeds
/// [`crate::stream::StreamLabeler`] from a file or pipe in `O(cols)` memory.
#[derive(Debug)]
pub struct PbmRowReader<R: Read> {
    reader: io::BufReader<R>,
    magic: Magic,
    cols: usize,
    rows: usize,
    next_row: usize,
    /// Raw row buffer for `P4` (`ceil(cols / 8)` bytes).
    raw: Vec<u8>,
}

impl<R: Read> PbmRowReader<R> {
    /// Wraps `r`, reading and validating the PBM header immediately. Any
    /// failure carries a [`PbmError`] payload ([`PbmError::from_io`]).
    pub fn new(r: R) -> io::Result<Self> {
        let mut reader = io::BufReader::new(r);
        let (magic, cols, rows) = read_header(&mut reader).map_err(io::Error::from)?;
        Ok(PbmRowReader {
            reader,
            magic,
            cols,
            rows,
            next_row: 0,
            raw: vec![0u8; cols.div_ceil(8)],
        })
    }

    /// Image width from the header.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Image height from the header.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reads the next `P1` row: `cols` digit characters, skipping whitespace
    /// and `#` comments.
    fn next_plain_row(&mut self, words: &mut [u64]) -> Result<(), PbmError> {
        let mut col = 0usize;
        while col < self.cols {
            let Some(b) = next_byte(&mut self.reader)? else {
                return Err(PbmError::TruncatedPixels {
                    declared_rows: self.rows,
                    read_rows: self.next_row,
                });
            };
            match b {
                b'0' => col += 1,
                b'1' => {
                    words[col / 64] |= 1u64 << (col % 64);
                    col += 1;
                }
                b'#' => {
                    // Comment through end of line, allowed between pixels.
                    while !matches!(next_byte(&mut self.reader)?, Some(b'\n') | None) {}
                }
                _ if is_pbm_space(b) => {}
                other => return Err(PbmError::BadPixelByte(other)),
            }
        }
        Ok(())
    }

    /// Reads the next `P4` row: `ceil(cols / 8)` raw bytes, most significant
    /// bit leftmost, repacked into least-significant-bit-first words with
    /// the padding bits past `cols` cleared.
    fn next_raw_row(&mut self, words: &mut [u64]) -> Result<(), PbmError> {
        self.reader.read_exact(&mut self.raw).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PbmError::TruncatedPixels {
                    declared_rows: self.rows,
                    read_rows: self.next_row,
                }
            } else {
                PbmError::Io(e)
            }
        })?;
        for (i, &byte) in self.raw.iter().enumerate() {
            words[i / 8] |= u64::from(byte.reverse_bits()) << (8 * (i % 8));
        }
        let tail = self.cols % 64;
        if tail != 0 {
            let last = words.len() - 1;
            words[last] &= (1u64 << tail) - 1;
        }
        Ok(())
    }
}

impl<R: Read> RowSource for PbmRowReader<R> {
    fn cols(&self) -> usize {
        self.cols
    }

    fn rows_hint(&self) -> Option<usize> {
        Some(self.rows)
    }

    fn next_row(&mut self, words: &mut Vec<u64>) -> io::Result<bool> {
        if self.next_row >= self.rows {
            return Ok(false);
        }
        words.clear();
        words.resize(self.cols.div_ceil(64), 0);
        match self.magic {
            Magic::Plain => self.next_plain_row(words).map_err(io::Error::from)?,
            Magic::Raw => self.next_raw_row(words).map_err(io::Error::from)?,
        }
        self.next_row += 1;
        Ok(true)
    }
}

/// Writes `img` as one frame of the length-prefixed framed-PBM protocol: the
/// frame's byte length in ASCII decimal terminated by one `\n`, followed by
/// exactly that many bytes of a complete raw (`P4`) PBM image. Frames
/// concatenate into a multi-image stream ([`FramedPbmReader`]) — the
/// video-style continuous-ingest format `slap stream --framed` consumes.
pub fn write_framed<W: Write>(img: &Bitmap, w: &mut W) -> io::Result<()> {
    let mut frame = Vec::new();
    write_raw(img, &mut frame)?;
    Frame::write(w, &frame)
}

/// Upper bound on a declared frame length (2³¹ bytes). A corrupt prefix
/// below this still costs only the bytes that actually arrive — the body is
/// read in bounded chunks, never pre-allocated to the declared length.
/// Prefixes above it are rejected as [`PbmError::LyingLengthPrefix`].
pub use crate::framing::MAX_FRAME_BYTES;

/// Reader for the length-prefixed multi-image PBM framing
/// ([`write_framed`]): a stream of `<decimal length>\n<frame bytes>` records,
/// each frame a complete PBM image (`P4` as written, though `P1` frames are
/// accepted too). Frame dimensions may change between frames, so a single
/// long-lived process can ingest a whole video feed without restarting.
///
/// One frame's *compressed* bytes are buffered at a time (the buffer is
/// reused across frames); the pixels themselves still stream row by row
/// through the returned [`PbmRowReader`].
#[derive(Debug)]
pub struct FramedPbmReader<R: Read> {
    reader: io::BufReader<R>,
    frame: Vec<u8>,
}

impl<R: Read> FramedPbmReader<R> {
    /// Wraps `r`. No bytes are read until the first
    /// [`FramedPbmReader::next_frame`] call.
    pub fn new(r: R) -> Self {
        FramedPbmReader {
            reader: io::BufReader::new(r),
            frame: Vec::new(),
        }
    }

    /// Advances to the next frame: parses the decimal length prefix, reads
    /// exactly that many bytes, and returns a row reader over them (its
    /// header already validated). `Ok(None)` at a clean end of stream;
    /// a truncated prefix or frame body is an error.
    pub fn next_frame(&mut self) -> io::Result<Option<PbmRowReader<&[u8]>>> {
        match Frame::read_into(&mut self.reader, &mut self.frame, MAX_FRAME_BYTES) {
            Ok(None) => Ok(None), // clean end between frames
            Ok(Some(_)) => PbmRowReader::new(&self.frame[..]).map(Some),
            Err(e) => Err(PbmError::from(e).into()),
        }
    }
}

/// Reads a PBM image in either `P1` or `P4` format. `#` comments are honored
/// in the header and in `P1` pixel data. Built on [`PbmRowReader`], so it
/// shares the byte-exact header handling with the streaming path.
pub fn read<R: Read>(r: R) -> io::Result<Bitmap> {
    let mut reader = PbmRowReader::new(r)?;
    let mut img = Bitmap::new(reader.rows(), reader.cols());
    let mut words = Vec::new();
    for row in 0..reader.rows() {
        if !reader.next_row(&mut words)? {
            unreachable!("PbmRowReader yields exactly rows() rows");
        }
        img.set_row_words(row, &words);
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn plain_roundtrip() {
        let img = gen::uniform_random(13, 17, 0.4, 9);
        let mut buf = Vec::new();
        write_plain(&img, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn raw_roundtrip() {
        let img = gen::uniform_random(9, 21, 0.6, 10); // width not multiple of 8
        let mut buf = Vec::new();
        write_raw(&img, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn reads_comments_and_whitespace() {
        let text = "P1\n# a comment\n3 2 # trailing\n1 0 1\n0 1 0\n";
        let img = read(text.as_bytes()).unwrap();
        assert!(img.get(0, 0) && img.get(0, 2) && img.get(1, 1));
        assert_eq!(img.count_ones(), 3);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read("P5\n2 2\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_p1() {
        assert!(read("P1\n2 2\n1 0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(read("P1\n0 2\n".as_bytes()).is_err());
    }

    #[test]
    fn p4_pixel_bytes_may_contain_newlines_and_hashes() {
        // 2×2 image, 1 byte per row. Row bytes 0x0a (a newline) and 0x23
        // (`#`): the line-oriented header tokenizer used to swallow these as
        // header text; the byte-exact parser must treat them as pixels.
        let buf: &[u8] = b"P4\n2 2\n\x0a\x23";
        let img = read(buf).unwrap();
        // 0x0a = 0b0000_1010: leftmost two bits are 0,0.
        assert!(!img.get(0, 0) && !img.get(0, 1));
        // 0x23 = 0b0010_0011: leftmost two bits are 0,0 as well.
        assert!(!img.get(1, 0) && !img.get(1, 1));
        // An all-ones row byte right after the single whitespace.
        let full = read(&b"P4\n2 2\n\xff\xff"[..]).unwrap();
        assert_eq!(full.count_ones(), 4);
    }

    #[test]
    fn p4_single_whitespace_after_height_is_data_boundary() {
        // The first pixel byte is 0x31 (`'1'`): a tokenizer that keeps
        // reading header tokens would consume it. 8 columns, one row.
        let buf: &[u8] = b"P4 8 1 \x31";
        let img = read(buf).unwrap();
        assert_eq!(img.cols(), 8);
        // 0x31 = 0b0011_0001.
        let want = [false, false, true, true, false, false, false, true];
        for (c, &w) in want.iter().enumerate() {
            assert_eq!(img.get(0, c), w, "col {c}");
        }
    }

    #[test]
    fn p4_comment_adjacent_to_height_is_tolerated() {
        // A comment directly after the height digits: its terminating
        // newline is the single whitespace, and the data starts right after.
        let buf: &[u8] = b"P4\n8 1# trailing comment\n\xff";
        let img = read(buf).unwrap();
        assert_eq!(img.count_ones(), 8);
    }

    #[test]
    fn p4_truncated_pixel_data_is_an_error() {
        // 3 rows of 1 byte each declared, only 2 supplied.
        let buf: &[u8] = b"P4\n8 3\n\xff\xff";
        let err = read(buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Header that ends at the height with no data byte at all.
        let err = read(&b"P4\n8 3"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn row_reader_streams_rows_incrementally() {
        let img = gen::uniform_random(11, 70, 0.5, 3); // crosses a word boundary
        for raw in [false, true] {
            let mut buf = Vec::new();
            if raw {
                write_raw(&img, &mut buf).unwrap();
            } else {
                write_plain(&img, &mut buf).unwrap();
            }
            let mut reader = PbmRowReader::new(&buf[..]).unwrap();
            assert_eq!((reader.rows(), reader.cols()), (11, 70));
            assert_eq!(reader.rows_hint(), Some(11));
            let mut words = Vec::new();
            for r in 0..img.rows() {
                assert!(reader.next_row(&mut words).unwrap(), "row {r} (raw={raw})");
                assert_eq!(&words[..], img.row_words(r), "row {r} (raw={raw})");
            }
            assert!(!reader.next_row(&mut words).unwrap(), "exhausted");
        }
    }

    #[test]
    fn p1_rejects_garbage_pixel_characters() {
        let err = read("P1\n2 2\n1 0 x 1\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::BadPixelByte(b'x'))
        ));
    }

    #[test]
    fn errors_carry_the_typed_taxonomy() {
        // Every rejection path surfaces a structured PbmError that a
        // consumer (the labeling service) can recover by downcast.
        let err = read("P5\n2 2\n".as_bytes()).unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::BadMagic(m)) if m == "P5"
        ));
        let err = read("P1\n0 2\n".as_bytes()).unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::ZeroDim { rows: 2, cols: 0 })
        ));
        let err = read("P1\nx 2\n".as_bytes()).unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::BadDim { name: "width", .. })
        ));
        let err = read("P1".as_bytes()).unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::TruncatedHeader)
        ));
        let err = read(b"P4\n8 3\n\xff".as_slice()).unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::TruncatedPixels {
                declared_rows: 3,
                read_rows: 1
            })
        ));
        // A header whose pixel product overflows usize must be rejected at
        // parse time, before any consumer sizes a buffer from it.
        let huge = format!("P1\n{} 3\n", usize::MAX);
        let err = read(huge.as_bytes()).unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::DimsOverflow { rows: 3, .. })
        ));
        // Framed-stream taxonomy: lying prefixes and truncation.
        let mut reader = FramedPbmReader::new(&b"99999999999999999999\nP4"[..]);
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::LyingLengthPrefix { .. })
        ));
        let mut reader = FramedPbmReader::new(&b"xy\n"[..]);
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::BadLengthPrefix(b'x'))
        ));
        let mut reader = FramedPbmReader::new(&b"2000000000\nP4\n8 1\n\xff"[..]);
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(
            PbmError::from_io(&err),
            Some(PbmError::TruncatedFrame {
                declared: 2000000000,
                ..
            })
        ));
        // The io::ErrorKind convention is preserved across the taxonomy.
        assert_eq!(
            PbmError::TruncatedHeader.kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(
            PbmError::BadMagic(String::new()).kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn framed_stream_roundtrips_multiple_heterogeneous_frames() {
        let frames = [
            gen::uniform_random(5, 21, 0.5, 1),
            gen::uniform_random(9, 70, 0.3, 2), // different dims mid-stream
            gen::uniform_random(1, 1, 1.0, 3),
        ];
        let mut buf = Vec::new();
        for img in &frames {
            write_framed(img, &mut buf).unwrap();
        }
        let mut reader = FramedPbmReader::new(&buf[..]);
        let mut words = Vec::new();
        for (i, img) in frames.iter().enumerate() {
            let mut frame = reader.next_frame().unwrap().unwrap_or_else(|| {
                panic!("frame {i} missing");
            });
            assert_eq!((frame.rows(), frame.cols()), (img.rows(), img.cols()));
            for r in 0..img.rows() {
                assert!(frame.next_row(&mut words).unwrap());
                assert_eq!(&words[..], img.row_words(r), "frame {i} row {r}");
            }
            assert!(!frame.next_row(&mut words).unwrap());
        }
        assert!(reader.next_frame().unwrap().is_none(), "clean end");
        assert!(reader.next_frame().unwrap().is_none(), "idempotent end");
    }

    #[test]
    fn framed_stream_rejects_truncation_and_garbage() {
        // Truncated frame body.
        let img = gen::uniform_random(4, 8, 0.5, 7);
        let mut buf = Vec::new();
        write_framed(&img, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        let mut reader = FramedPbmReader::new(&buf[..]);
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Length prefix with no frame.
        let mut reader = FramedPbmReader::new(&b"12"[..]);
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Non-digit prefix byte.
        let mut reader = FramedPbmReader::new(&b"xy\n"[..]);
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Absurd length must error out, not allocate.
        let mut reader = FramedPbmReader::new(&b"99999999999999999999\nP4"[..]);
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // A lying (huge but in-range) prefix over a short body must fail
        // with EOF after buffering only the real bytes, not pre-allocate
        // the declared length.
        let body: &[u8] = b"2000000000\nP4\n8 1\n\xff";
        let real = body.len() - "2000000000\n".len();
        let mut reader = FramedPbmReader::new(body);
        assert_eq!(
            reader.next_frame().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert!(
            reader.frame.capacity() <= real + 64 * 1024,
            "buffered {} bytes for a {real}-byte body",
            reader.frame.capacity()
        );
    }
}
