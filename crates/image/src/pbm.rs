//! Plain (P1) and raw (P4) PBM image input/output.
//!
//! PBM is the natural interchange format for binary images; the examples use
//! it to dump workloads for inspection with standard tools.

use crate::bitmap::Bitmap;
use std::io::{self, BufRead, Read, Write};

/// Writes `img` as plain-text PBM (`P1`).
pub fn write_plain<W: Write>(img: &Bitmap, mut w: W) -> io::Result<()> {
    writeln!(w, "P1")?;
    writeln!(w, "{} {}", img.cols(), img.rows())?;
    for r in 0..img.rows() {
        let mut line = String::with_capacity(img.cols() * 2);
        for c in 0..img.cols() {
            line.push(if img.get(r, c) { '1' } else { '0' });
            if c + 1 < img.cols() {
                line.push(' ');
            }
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Writes `img` as raw PBM (`P4`), rows padded to whole bytes.
pub fn write_raw<W: Write>(img: &Bitmap, mut w: W) -> io::Result<()> {
    writeln!(w, "P4")?;
    writeln!(w, "{} {}", img.cols(), img.rows())?;
    let bytes_per_row = img.cols().div_ceil(8);
    let mut row = vec![0u8; bytes_per_row];
    for r in 0..img.rows() {
        row.iter_mut().for_each(|b| *b = 0);
        for c in 0..img.cols() {
            if img.get(r, c) {
                row[c / 8] |= 0x80 >> (c % 8);
            }
        }
        w.write_all(&row)?;
    }
    Ok(())
}

/// Reads a PBM image in either `P1` or `P4` format. `#` comments are honored
/// in the header and in `P1` pixel data.
pub fn read<R: Read>(r: R) -> io::Result<Bitmap> {
    let mut reader = io::BufReader::new(r);
    let mut header = Vec::new();
    // Read magic, width, height as whitespace-separated tokens with comments.
    let mut tokens: Vec<String> = Vec::new();
    while tokens.len() < 3 {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated PBM header",
            ));
        }
        let data = line.split('#').next().unwrap_or("");
        tokens.extend(data.split_whitespace().map(str::to_string));
        header.extend_from_slice(line.as_bytes());
    }
    let magic = tokens[0].clone();
    let cols: usize = tokens[1]
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad width: {e}")))?;
    let rows: usize = tokens[2]
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad height: {e}")))?;
    if rows == 0 || cols == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-sized PBM image",
        ));
    }
    let mut img = Bitmap::new(rows, cols);
    match magic.as_str() {
        "P1" => {
            let mut text = String::new();
            reader.read_to_string(&mut text)?;
            let digits = text
                .lines()
                .flat_map(|l| l.split('#').next().unwrap_or("").chars())
                .filter(|ch| !ch.is_whitespace());
            let mut count = 0usize;
            for ch in digits {
                if count >= rows * cols {
                    break;
                }
                let v = match ch {
                    '0' => false,
                    '1' => true,
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected pixel character {other:?}"),
                        ))
                    }
                };
                img.set(count / cols, count % cols, v);
                count += 1;
            }
            if count != rows * cols {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("expected {} pixels, found {count}", rows * cols),
                ));
            }
        }
        "P4" => {
            let bytes_per_row = cols.div_ceil(8);
            let mut buf = vec![0u8; bytes_per_row];
            for r in 0..rows {
                reader.read_exact(&mut buf)?;
                for c in 0..cols {
                    if buf[c / 8] & (0x80 >> (c % 8)) != 0 {
                        img.set(r, c, true);
                    }
                }
            }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported PBM magic {other:?}"),
            ))
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn plain_roundtrip() {
        let img = gen::uniform_random(13, 17, 0.4, 9);
        let mut buf = Vec::new();
        write_plain(&img, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn raw_roundtrip() {
        let img = gen::uniform_random(9, 21, 0.6, 10); // width not multiple of 8
        let mut buf = Vec::new();
        write_raw(&img, &mut buf).unwrap();
        let back = read(&buf[..]).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn reads_comments_and_whitespace() {
        let text = "P1\n# a comment\n3 2 # trailing\n1 0 1\n0 1 0\n";
        let img = read(text.as_bytes()).unwrap();
        assert!(img.get(0, 0) && img.get(0, 2) && img.get(1, 1));
        assert_eq!(img.count_ones(), 3);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read("P5\n2 2\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncated_p1() {
        assert!(read("P1\n2 2\n1 0 1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(read("P1\n0 2\n".as_bytes()).is_err());
    }
}
