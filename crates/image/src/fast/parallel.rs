//! Strip-parallel run-based labeling: disjoint horizontal bands labeled
//! concurrently, seams stitched over the run universe.
//!
//! This is the multi-core counterpart of the sequential [`super`] engine and
//! the host-side analogue of the paper's scan-line decomposition: where the
//! SLAP gives every image *column* its own PE and reconciles the per-column
//! views with a stitch (Algorithm CC step 3, `slap_cc::stitch`), this engine
//! gives every worker thread a band of image *rows* and reconciles the bands
//! with a seam pass — the strip/merge shape of the parallel two-pass CCL
//! literature (Gupta et al., arXiv:1606.05973; coarse-to-fine variants,
//! arXiv:1712.09789). The phases:
//!
//! 1. **strip pass (parallel)** — each worker runs the word-parallel
//!    run-extraction + union–find pass ([`FastLabeler`]'s pass 1) over its
//!    own rows, with *local* run indices but **global** minimum-position
//!    payloads;
//! 2. **relocation (parallel)** — workers copy their run tables and
//!    union–find nodes into one global arena at precomputed offsets, so a
//!    strip-local parent pointer becomes a global one by adding the strip's
//!    base index;
//! 3. **seam pass (sequential, tiny)** — for each of the `T − 1` seams, runs
//!    of the two facing rows are unioned under the requested connectivity
//!    (word-level `AND` adjacency for 4-connectivity; for 8, the same sweep
//!    over the *dilated* upper row, `upper | upper<<1 | upper>>1` — see
//!    [`crate::bitmap::for_each_diagonal_pair`]);
//! 4. **flatten (parallel)** — a tiny sequential pre-pass (`O(seam runs)`)
//!    finalizes the recorded seam-loser chains, after which each strip's
//!    ascending sweep only ever reads its own nodes (every remaining parent
//!    points down *within* the strip), so the workers flatten concurrently;
//! 5. **output (parallel)** — workers fill disjoint row bands of the
//!    [`LabelGrid`] ([`LabelGrid::strip_rows_mut`]) with run-at-a-time label
//!    fills.
//!
//! The result is **bit-identical** to [`super::fast_labels_conn`] and to the
//! BFS oracle for every image, connectivity, and thread count: labels are
//! component minima, which no decomposition can change.

use super::{link_roots, FastLabeler};
use crate::bitmap::{dilate_words_into, for_each_diagonal_pair, for_each_run_in_words, Bitmap};
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;

/// Labels `img` under 4-connectivity on `threads` worker threads.
/// Convenience wrapper allocating a fresh grid and labeler; hot loops should
/// hold a [`ParallelLabeler`] instead.
pub fn parallel_labels(img: &Bitmap, threads: usize) -> LabelGrid {
    parallel_labels_conn(img, Connectivity::Four, threads)
}

/// Labels `img` under an arbitrary adjacency convention on `threads` worker
/// threads. Output is bit-identical to [`super::fast_labels_conn`] and
/// [`crate::oracle::bfs_labels_conn`] for every thread count.
pub fn parallel_labels_conn(img: &Bitmap, conn: Connectivity, threads: usize) -> LabelGrid {
    let mut out = LabelGrid::new_background(img.rows(), img.cols());
    ParallelLabeler::new(threads).label_into(img, conn, &mut out);
    out
}

/// Reusable strip-parallel labeler (see the module docs for the phases).
///
/// Every scratch structure — one [`FastLabeler`] per strip, the global run
/// and union–find arenas — is kept between calls, so labeling a stream of
/// images allocates only when an image exceeds all previous highs.
#[derive(Debug)]
pub struct ParallelLabeler {
    /// Worker count requested at construction (≥ 1). The effective strip
    /// count of a call is `threads.min(rows)`.
    threads: usize,
    /// Per-strip scratch labelers; `strips[t]` is owned by worker `t` during
    /// the parallel phases.
    strips: Vec<FastLabeler>,
    /// Global run bounds, strips concatenated (same packing as
    /// [`FastLabeler`]: `start << 32 | end`, inclusive columns).
    runs: Vec<u64>,
    /// Global union–find arena, packed `min_pos << 32 | parent` with
    /// *global* parent indices.
    node: Vec<u64>,
    /// Global index of the first run of each image row, plus one trailing
    /// sentinel.
    row_runs: Vec<u32>,
    /// Scratch words for seam adjacency: `row[s] & row[s-1]` at 4-conn,
    /// `row[s] & dilate(row[s-1])` at 8.
    seam_and: Vec<u64>,
    /// Scratch words for the dilated upper seam row at 8-connectivity.
    seam_dilate: Vec<u64>,
    /// Roots that lost a seam union (their parent may cross a strip
    /// boundary) — the only nodes the cross-strip flatten pre-pass must
    /// finalize before the per-strip sweeps run independently.
    seam_losers: Vec<u32>,
    /// Scratch path for the pre-pass root chases.
    chase: Vec<u32>,
    /// Root count each flatten worker observed in its strip (summed by
    /// [`ParallelLabeler::last_components`]).
    strip_roots: Vec<usize>,
    /// Whether the most recent call took the multi-strip path (`false`: the
    /// sequential delegate in `strips[0]` holds the run/node state).
    last_parallel: bool,
    /// Strip count of the most recent call (stale strips beyond it hold
    /// tile/run state from older, larger calls).
    last_strips: usize,
}

impl ParallelLabeler {
    /// Creates a labeler that will use `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ParallelLabeler {
            threads: threads.max(1),
            strips: Vec::new(),
            runs: Vec::new(),
            node: Vec::new(),
            row_runs: Vec::new(),
            seam_and: Vec::new(),
            seam_dilate: Vec::new(),
            seam_losers: Vec::new(),
            chase: Vec::new(),
            strip_roots: Vec::new(),
            last_parallel: false,
            last_strips: 0,
        }
    }

    /// Number of runs extracted by the most recent labeling call.
    pub fn last_runs(&self) -> usize {
        if self.last_parallel {
            self.runs.len()
        } else {
            self.strips.first().map_or(0, FastLabeler::last_runs)
        }
    }

    /// Number of components found by the most recent labeling call. O(strip
    /// count): each flatten worker counts its own roots as it sweeps.
    pub fn last_components(&self) -> usize {
        if self.last_parallel {
            self.strip_roots.iter().sum()
        } else {
            self.strips.first().map_or(0, FastLabeler::last_components)
        }
    }

    /// Tile classification counts of the most recent labeling call, summed
    /// over the strips that participated (see [`super::TileStats`]; seam
    /// stitching classifies no tiles of its own).
    pub fn last_tile_stats(&self) -> super::TileStats {
        let mut total = super::TileStats::default();
        for lab in &self.strips[..self.last_strips.min(self.strips.len())] {
            total.accumulate(lab.last_tile_stats());
        }
        total
    }

    /// Total bytes of scratch capacity currently reserved across the global
    /// arenas and every per-strip labeler — the session's high-water mark.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.runs.capacity() * size_of::<u64>()
            + self.node.capacity() * size_of::<u64>()
            + self.row_runs.capacity() * size_of::<u32>()
            + self.seam_and.capacity() * size_of::<u64>()
            + self.seam_dilate.capacity() * size_of::<u64>()
            + self.seam_losers.capacity() * size_of::<u32>()
            + self.chase.capacity() * size_of::<u32>()
            + self.strip_roots.capacity() * size_of::<usize>()
            + self
                .strips
                .iter()
                .map(FastLabeler::scratch_bytes)
                .sum::<usize>()
    }

    /// The worker count requested at construction.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Labels `img` into `out` (re-dimensioned; every cell is written exactly
    /// once). With one thread — or an image of fewer rows than threads — this
    /// delegates to the sequential [`FastLabeler`] hot path.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) {
        let rows = img.rows();
        let cols = img.cols();
        let t = self.threads.min(rows);
        if self.strips.is_empty() {
            self.strips.push(FastLabeler::new());
        }
        if t <= 1 {
            self.last_parallel = false;
            self.last_strips = 1;
            self.strips[0].label_into(img, conn, out);
            return;
        }
        self.last_parallel = true;
        self.last_strips = t;
        while self.strips.len() < t {
            self.strips.push(FastLabeler::new());
        }
        // Even row split; t <= rows guarantees every strip is non-empty.
        let bounds: Vec<usize> = (0..=t).map(|i| i * rows / t).collect();

        // Phase 1: per-strip run extraction + intra-strip unions, parallel.
        std::thread::scope(|s| {
            for (i, lab) in self.strips[..t].iter_mut().enumerate() {
                let (lo, hi) = (bounds[i], bounds[i + 1]);
                s.spawn(move || {
                    lab.build_runs_rows(img, conn, lo, hi);
                });
            }
        });

        // Strip base offsets in the global run index space.
        let mut base = Vec::with_capacity(t + 1);
        base.push(0usize);
        for lab in &self.strips[..t] {
            base.push(base.last().unwrap() + lab.runs.len());
        }
        let total = base[t];
        // Phase 2 adds each strip's base to packed `min_pos << 32 | parent`
        // words; a parent index at or above 2^32 - 1 would carry into (and
        // silently corrupt) the `min_pos` half, so the invariant is enforced
        // here — an explicit error path, not a comment. It can only fire if
        // the LabelGrid pixel-count assertion is ever relaxed: the run count
        // never exceeds the pixel count.
        assert!(
            total < u32::MAX as usize,
            "{total} runs overflow the packed u32 parent index space"
        );

        // Global row → run-range table (local tables shifted by the base).
        self.row_runs.clear();
        self.row_runs.reserve(rows + 1);
        for (i, lab) in self.strips[..t].iter().enumerate() {
            let b = u32::try_from(base[i]).expect("strip base exceeds u32");
            // Drop each local sentinel; the next strip's first entry (or the
            // final global sentinel) takes its place.
            for &rr in &lab.row_runs[..lab.row_runs.len() - 1] {
                self.row_runs.push(b + rr);
            }
        }
        self.row_runs.push(total as u32);

        // Phase 2: relocate strips into the global arenas, parallel. The
        // guard above makes the packed addition safe: `n + b` only touches
        // the parent half.
        self.runs.clear();
        self.runs.resize(total, 0);
        self.node.clear();
        self.node.resize(total, 0);
        std::thread::scope(|s| {
            let mut runs_rest = &mut self.runs[..];
            let mut node_rest = &mut self.node[..];
            for (i, lab) in self.strips[..t].iter().enumerate() {
                let (runs_dst, rr) = runs_rest.split_at_mut(lab.runs.len());
                let (node_dst, nr) = node_rest.split_at_mut(lab.node.len());
                (runs_rest, node_rest) = (rr, nr);
                let b = base[i] as u64;
                s.spawn(move || {
                    runs_dst.copy_from_slice(&lab.runs);
                    for (dst, &n) in node_dst.iter_mut().zip(&lab.node) {
                        *dst = n + b;
                    }
                });
            }
        });

        // Phase 3: seam unions. Each seam joins the last row of strip i-1
        // with the first row of strip i; O(words + seam runs) per seam, so
        // the sequential pass is negligible next to the strip work. Every
        // root that loses a union is recorded: those are exactly the nodes
        // whose parent may cross a strip boundary, which phase 4a must
        // finalize before the strips can flatten independently.
        self.seam_losers.clear();
        for &seam in &bounds[1..t] {
            let cur = self.row_runs[seam] as usize..self.row_runs[seam + 1] as usize;
            let prev = self.row_runs[seam - 1] as usize..self.row_runs[seam] as usize;
            match conn {
                Connectivity::Four => {
                    self.seam_and.clear();
                    self.seam_and.extend(
                        img.row_words(seam)
                            .iter()
                            .zip(img.row_words(seam - 1))
                            .map(|(&a, &b)| a & b),
                    );
                    seam_union_four(
                        &mut self.node,
                        &self.runs,
                        &self.seam_and,
                        cols,
                        cur.start,
                        prev.start,
                        &mut self.seam_losers,
                    );
                }
                Connectivity::Eight => {
                    // The same word-level sweep, over the dilated upper row:
                    // segments of `row[s] & dilate(row[s-1])` enumerate every
                    // 8-adjacent run pair (the old two-pointer walk survives
                    // only as a test cross-check).
                    dilate_words_into(img.row_words(seam - 1), cols, &mut self.seam_dilate);
                    self.seam_and.clear();
                    self.seam_and.extend(
                        img.row_words(seam)
                            .iter()
                            .zip(self.seam_dilate.iter())
                            .map(|(&a, &b)| a & b),
                    );
                    seam_union_eight_words(
                        &mut self.node,
                        &self.runs,
                        &self.seam_and,
                        cols,
                        cur,
                        prev,
                        &mut self.seam_losers,
                    );
                }
            }
        }

        // Phase 4a: finalize the seam losers (sequential, O(seam runs) —
        // independent of the strip sizes). Chasing a loser's parent chain
        // ends at a true root holding the component minimum (link_roots
        // keeps minima at survivors); writing that packed `min << 32 | root`
        // back along the path makes every node with a cross-strip parent
        // final, so the per-strip sweeps below never have to read another
        // strip's (concurrently mutated) nodes.
        for i in 0..self.seam_losers.len() {
            let mut x = self.seam_losers[i];
            self.chase.clear();
            loop {
                let p = self.node[x as usize] as u32;
                if p == x {
                    break;
                }
                self.chase.push(x);
                x = p;
            }
            let final_val = self.node[x as usize];
            for &y in &self.chase {
                self.node[y as usize] = final_val;
            }
        }

        // Phase 4b: flatten, parallel over strips. Within a strip, ascending
        // order + parents-point-down means node[parent] is already flattened
        // when node[k] copies it; a parent below the strip base marks a
        // phase-4a-finalized node, which is skipped. Every node ends as
        // `component_min << 32 | root` (roots self-copy — counted here per
        // strip so `last_components` never rescans the arena).
        self.strip_roots.clear();
        self.strip_roots.resize(t, 0);
        std::thread::scope(|s| {
            let mut rest = &mut self.node[..];
            for (i, roots) in self.strip_roots.iter_mut().enumerate() {
                let (lo, hi) = (base[i], base[i + 1]);
                let (strip, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                s.spawn(move || {
                    let mut count = 0usize;
                    for k in 0..strip.len() {
                        let p = strip[k] as u32 as usize;
                        if let Some(pl) = p.checked_sub(lo) {
                            if pl == k {
                                count += 1; // root: the copy would be a no-op
                            } else {
                                strip[k] = strip[pl];
                            }
                        }
                    }
                    *roots = count;
                });
            }
        });

        // Phase 5: write labels, parallel over disjoint row bands.
        out.reset_dims(rows, cols);
        let bands = out.strip_rows_mut(&bounds);
        std::thread::scope(|s| {
            for (i, band) in bands.into_iter().enumerate() {
                let (lo, hi) = (bounds[i], bounds[i + 1]);
                let (runs, node, row_runs) = (&self.runs, &self.node, &self.row_runs);
                s.spawn(move || {
                    for r in lo..hi {
                        let row = &mut band[(r - lo) * cols..(r - lo + 1) * cols];
                        row.fill(LabelGrid::BACKGROUND);
                        for k in row_runs[r] as usize..row_runs[r + 1] as usize {
                            let label = (node[k] >> 32) as u32;
                            let sb = runs[k];
                            let (a, b) = ((sb >> 32) as usize, (sb & 0xffff_ffff) as usize);
                            row[a] = label;
                            row[b] = label;
                            if b - a > 1 {
                                row[a + 1..b].fill(label);
                            }
                        }
                    }
                });
            }
        });
    }
}

/// Read-only find over the packed nodes. The seam pass deliberately does
/// **not** path-halve: halving could rewrite a non-root node's parent onto a
/// cross-strip ancestor, breaking the phase-4a invariant that only recorded
/// seam losers carry cross-strip parents. Chains are at most a few seam
/// links long (one per strip a component spans), so pure finds stay cheap.
pub(crate) fn find_pure(node: &[u64], mut x: u32) -> u32 {
    loop {
        let p = node[x as usize] as u32;
        if p == x {
            return x;
        }
        x = p;
    }
}

/// 4-connectivity seam union: every maximal run of `and_words`
/// (`seam_row & row_above`) marks one required union between a run of the
/// lower seam row (runs start at global index `cur_lo`) and one of the upper
/// row (starting at `prev_lo`). Unlike the fused in-strip merge, *both*
/// sides need a find — each row has already been unioned into its strip.
/// Each root that loses a link is appended to `losers` for the flatten
/// pre-pass. Shared by the strip seams here and the tile seams of
/// [`super::tiled`].
pub(crate) fn seam_union_four(
    node: &mut [u64],
    runs: &[u64],
    and_words: &[u64],
    cols: usize,
    cur_lo: usize,
    prev_lo: usize,
    losers: &mut Vec<u32>,
) {
    let mut c = cur_lo; // cursor over the lower row's runs
    let mut q = prev_lo; // cursor over the upper row's runs
    let mut root = u32::MAX; // cached surviving root of run `c`'s set
    for_each_run_in_words(and_words, cols, |s, _| {
        let s = s as u64;
        // Advance to the runs containing column `s`; both exist because `s`
        // is a set bit of both rows.
        if root == u32::MAX || (runs[c] & 0xffff_ffff) < s {
            while (runs[c] & 0xffff_ffff) < s {
                c += 1;
            }
            root = find_pure(node, c as u32);
        }
        while (runs[q] & 0xffff_ffff) < s {
            q += 1;
        }
        let rq = find_pure(node, q as u32);
        if rq != root {
            losers.push(root.max(rq));
        }
        root = link_roots(node, root, rq);
    });
}

/// 8-connectivity seam union over the word-level dilated-AND adjacency:
/// `and_words` holds `lower_row & dilate(upper_row)` and
/// [`for_each_diagonal_pair`] enumerates exactly the 8-adjacent run pairs
/// across the seam, finding on both sides (each row was already unioned into
/// its strip/tile). Each root that loses a link is appended to `losers` for
/// the flatten pre-pass. Shared by the strip seams here and the tile seams
/// of [`super::tiled`]; the retired two-pointer walk it replaces survives as
/// [`seam_union_eight_two_pointer`], a test-only cross-check.
pub(crate) fn seam_union_eight_words(
    node: &mut [u64],
    runs: &[u64],
    and_words: &[u64],
    cols: usize,
    cur: std::ops::Range<usize>,
    prev: std::ops::Range<usize>,
    losers: &mut Vec<u32>,
) {
    let mut last_c = usize::MAX;
    let mut croot = 0u32;
    for_each_diagonal_pair(
        and_words,
        cols,
        &runs[cur.clone()],
        &runs[prev.clone()],
        |c, q| {
            // Cache the lower run's surviving root across its pairs: one find
            // per run, not per pair (link_roots returns the survivor).
            if c != last_c {
                last_c = c;
                croot = find_pure(node, (cur.start + c) as u32);
            }
            let rq = find_pure(node, (prev.start + q) as u32);
            if rq != croot {
                losers.push(croot.max(rq));
            }
            croot = link_roots(node, croot, rq);
        },
    );
}

/// The retired 8-connectivity seam union: a two-pointer join of the facing
/// rows' run lists with one column of diagonal reach. Kept only to
/// cross-check [`seam_union_eight_words`] — the word-level sweep must
/// produce the identical unions in the identical order.
#[cfg(test)]
fn seam_union_eight_two_pointer(
    node: &mut [u64],
    runs: &[u64],
    cur: std::ops::Range<usize>,
    prev: std::ops::Range<usize>,
    losers: &mut Vec<u32>,
) {
    let mut p = prev.start;
    for c in cur {
        let sb = runs[c];
        let aw = (sb >> 32).saturating_sub(1);
        let bw = (sb & 0xffff_ffff) + 1;
        while p < prev.end && (runs[p] & 0xffff_ffff) < aw {
            p += 1;
        }
        let mut q = p;
        let mut root = find_pure(node, c as u32);
        while q < prev.end && (runs[q] >> 32) <= bw {
            let rq = find_pure(node, q as u32);
            if rq != root {
                losers.push(root.max(rq));
            }
            root = link_roots(node, root, rq);
            q += 1;
        }
        // The last overlapping run may also touch the next run of the lower
        // row; step back so it is reconsidered.
        if q > p {
            p = q - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_labels_conn;
    use crate::gen;
    use crate::oracle::bfs_labels_conn;

    const THREADS: &[usize] = &[1, 2, 3, 4, 8];

    #[test]
    fn matches_fast_engine_on_tiny_shapes() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
            "#..#\n....\n#..#\n",
            "#\n#\n#\n#\n#\n#\n#\n#\n",
        ] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for &t in THREADS {
                    assert_eq!(
                        parallel_labels_conn(&img, conn, t),
                        fast_labels_conn(&img, conn),
                        "threads={t} conn={conn:?} art:\n{art}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_fast_engine_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 41, 13).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let reference = fast_labels_conn(&img, conn);
                for &t in THREADS {
                    assert_eq!(
                        parallel_labels_conn(&img, conn, t),
                        reference,
                        "workload {name} threads={t} conn={conn:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_word_boundary_widths() {
        for cols in [63usize, 64, 65, 127, 128, 130] {
            let img = gen::uniform_random(37, cols, 0.5, cols as u64);
            for &t in THREADS {
                assert_eq!(
                    parallel_labels(&img, t),
                    bfs_labels_conn(&img, Connectivity::Four),
                    "cols={cols} threads={t}"
                );
            }
        }
    }

    #[test]
    fn seam_components_spanning_every_strip_collapse_to_one_label() {
        // A full column through many strips: every seam must union it.
        let img = gen::uniform_random(64, 9, 0.0, 0); // start empty
        let mut bm = img.clone();
        for r in 0..64 {
            bm.set(r, 4, true);
        }
        for &t in THREADS {
            let l = parallel_labels(&bm, t);
            assert_eq!(l.component_count(), 1, "threads={t}");
        }
    }

    #[test]
    fn more_threads_than_rows_degrades_gracefully() {
        let img = gen::uniform_random(3, 50, 0.5, 7);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(
                parallel_labels_conn(&img, conn, 64),
                fast_labels_conn(&img, conn)
            );
        }
    }

    #[test]
    fn reused_parallel_labeler_leaves_no_stale_state() {
        let mut labeler = ParallelLabeler::new(4);
        let mut grid = LabelGrid::new_background(1, 1);
        let big = gen::uniform_random(80, 80, 0.6, 1);
        labeler.label_into(&big, Connectivity::Four, &mut grid);
        assert_eq!(grid, fast_labels_conn(&big, Connectivity::Four));
        let small = Bitmap::from_art("#.#\n###\n");
        labeler.label_into(&small, Connectivity::Four, &mut grid);
        assert_eq!(grid, fast_labels_conn(&small, Connectivity::Four));
        labeler.label_into(&big, Connectivity::Eight, &mut grid);
        assert_eq!(grid, fast_labels_conn(&big, Connectivity::Eight));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let labeler = ParallelLabeler::new(0);
        assert_eq!(labeler.threads(), 1);
    }

    #[test]
    fn one_by_one_and_single_row_images_do_not_panic() {
        // Degenerate dimensions through every phase: bounds construction,
        // seam loops, strip_rows_mut, and the output bands.
        for art in ["#", ".", "#\n", "##"] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for &t in &[1usize, 2, 4, 64] {
                    assert_eq!(
                        parallel_labels_conn(&img, conn, t),
                        fast_labels_conn(&img, conn),
                        "art {art:?} conn={conn:?} threads={t}"
                    );
                }
            }
        }
        // Single column, many rows: every seam is one-run-to-one-run.
        let mut col = Bitmap::new(9, 1);
        for r in 0..9 {
            col.set(r, 0, r != 4);
        }
        for &t in THREADS {
            assert_eq!(
                parallel_labels_conn(&col, Connectivity::Four, t),
                fast_labels_conn(&col, Connectivity::Four),
                "threads={t}"
            );
        }
    }

    #[test]
    fn word_level_eight_seam_matches_the_retired_two_pointer_path() {
        // Build a two-row run arena directly and drive both seam-union
        // implementations over it: the word-level dilated-AND sweep must
        // perform the identical links in the identical order — same node
        // array, same loser log — as the retired two-pointer join.
        for case in 0u64..200 {
            let density = 0.05 + 0.9 * (case % 10) as f64 / 10.0;
            let img = gen::uniform_random(2, 131, density, case + 1);
            let mut runs = Vec::new();
            let mut node = Vec::new();
            for r in 0..2 {
                img.for_each_row_run(r, |a, b| {
                    let min = u64::from(a) * 2 + r as u64;
                    node.push((min << 32) | runs.len() as u64);
                    runs.push((u64::from(a) << 32) | u64::from(b));
                });
            }
            let split = runs.len() - img.count_row_runs(1);
            let (prev, cur) = (0..split, split..runs.len());

            let mut node_tp = node.clone();
            let mut losers_tp = Vec::new();
            seam_union_eight_two_pointer(
                &mut node_tp,
                &runs,
                cur.clone(),
                prev.clone(),
                &mut losers_tp,
            );

            let mut dilated = Vec::new();
            dilate_words_into(img.row_words(0), img.cols(), &mut dilated);
            let and_words: Vec<u64> = img
                .row_words(1)
                .iter()
                .zip(dilated.iter())
                .map(|(&a, &b)| a & b)
                .collect();
            let mut losers = Vec::new();
            seam_union_eight_words(
                &mut node,
                &runs,
                &and_words,
                img.cols(),
                cur,
                prev,
                &mut losers,
            );
            assert_eq!(node, node_tp, "case {case}");
            assert_eq!(losers, losers_tp, "case {case}");
        }
    }

    #[test]
    fn seam_eight_backstep_shares_one_upper_run_across_adjacent_lower_runs() {
        // Regression for the `p = q - 1` backstep in the diagonal-pair
        // enumeration (now inside `for_each_diagonal_pair`): two
        // adjacent lower-row runs each touch the single upper-row run only
        // diagonally (through column 2), so after the first lower run
        // consumes the upper run the cursor must step back for the second.
        // threads = 2 puts the seam exactly between the two rows.
        let img = Bitmap::from_art(
            "..#..\n\
             ##.##\n",
        );
        let l8 = parallel_labels_conn(&img, Connectivity::Eight, 2);
        assert_eq!(l8, fast_labels_conn(&img, Connectivity::Eight));
        assert_eq!(l8.component_count(), 1, "diagonals bridge all three runs");
        let l4 = parallel_labels_conn(&img, Connectivity::Four, 2);
        assert_eq!(l4, fast_labels_conn(&img, Connectivity::Four));
        assert_eq!(l4.component_count(), 3, "no bridge under 4-connectivity");
        // The mirrored orientation exercises the backstep from the other
        // side, and a longer seam chains repeated backsteps.
        let chain = Bitmap::from_art(
            "##.##.##.##\n\
             ..#..#..#..\n",
        );
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(
                parallel_labels_conn(&chain, conn, 2),
                fast_labels_conn(&chain, conn),
                "chain conn={conn:?}"
            );
        }
        assert_eq!(
            parallel_labels_conn(&chain, Connectivity::Eight, 2).component_count(),
            1
        );
    }
}
