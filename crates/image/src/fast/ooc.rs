//! Out-of-core gigaframe labeling: a band-of-tiles scheduler that streams an
//! arbitrarily tall frame through the tiled engine one band at a time.
//!
//! The streaming engine ([`crate::stream`]) already labels unbounded frames
//! in `O(cols + live)` memory, but it advances one *row* per step — every row
//! pays the frontier bookkeeping. This scheduler moves the same carried-state
//! idea up one level: read `band_rows` rows from a [`RowSource`] into a
//! reusable band bitmap, label the whole band with the 2-D tiled engine
//! (`TiledLabeler::build_arena`, whose tile pass parallelizes across
//! `tiles_x` columns), then reconcile the band against a carried frontier —
//! the runs of the previous band's last row, each pointing at a union–find
//! slot holding its component's running feature record. The carried state is
//! one row of runs plus one slot per live component: `O(cols + live)`, made
//! measurable by [`OocStats::peak_carried_runs`] and
//! [`OocStats::peak_live_slots`], while the transient band arena is
//! `O(band_rows × cols)` by construction.
//!
//! Per band, in order:
//!
//! 1. **ingest** — `band_rows` packed rows (fewer for the final band; the
//!    tail is zeroed so the band bitmap can be labeled whole);
//! 2. **band label** — the tiled engine's phases 1–4 leave every band run
//!    flattened to its band-local root;
//! 3. **bottom exposure** — each carried run adds its uncovered span under
//!    the band's first row to its component's perimeter (the half of the
//!    seam accounting the previous band could not see);
//! 4. **seam merge** — word-level `AND` (4-conn) or dilated-`AND` (8-conn,
//!    the same [`for_each_diagonal_pair`] sweep as every other seam in the
//!    crate) pairs carried runs with first-row runs: a band root *adopts* the
//!    first slot it meets and unions with any further ones;
//! 5. **fold** — every band run folds its feature contribution (area, bbox,
//!    centroid sums, perimeter with word-level exposure counts, minimum
//!    column-major position at **global** row coordinates) into its root's
//!    slot, minting slots for components born in this band;
//! 6. **carry + retire** — the band's last real row becomes the new carried
//!    frontier; every slot live before the band that did not make it into
//!    the frontier retires its finished [`RetiredComponent`]. Forwarded and
//!    retired slots return to a free list, so slot storage tracks *live*
//!    components, not total ones.
//!
//! Identities proven in the test suite: the retired-component multiset is
//! **identical** (every field, perimeter included) to the row-streaming
//! engine's, and label/area sets match the whole-frame engines whenever the
//! frame fits in memory.

use super::tiled::TiledLabeler;
use crate::bitmap::{count_ones_in_span, dilate_words_into, for_each_diagonal_pair, Bitmap};
use crate::connectivity::Connectivity;
use crate::stream::{RetiredComponent, RowSource};
use std::io;

/// Streams `src` through a fresh [`OutOfCoreLabeler`] with the given band
/// height and tile-column count. Convenience wrapper; repeated frames should
/// hold the labeler.
pub fn label_out_of_core<S: RowSource>(
    src: &mut S,
    conn: Connectivity,
    band_rows: usize,
    tiles_x: usize,
) -> io::Result<OocRun> {
    OutOfCoreLabeler::new(band_rows, tiles_x).label_source(src, conn)
}

/// Aggregate statistics of an out-of-core run: the frame shape actually
/// seen, and the peaks that witness the memory model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OocStats {
    /// Rows read from the source.
    pub rows: u64,
    /// Row width in pixels.
    pub cols: usize,
    /// Foreground pixels seen.
    pub pixels: u64,
    /// Bands processed (`ceil(rows / band_rows)`).
    pub bands: u64,
    /// Band height the labeler was configured with.
    pub band_rows: usize,
    /// Components retired.
    pub retired: u64,
    /// Maximum carried frontier size (runs of one band-boundary row) — the
    /// `O(cols)` half of the carried-state bound; at most `cols / 2 + 1`.
    pub peak_carried_runs: usize,
    /// Maximum simultaneously live union–find slots — the `O(live)` half
    /// (live components plus the seam-merge garbage of one band boundary,
    /// reclaimed before the next band).
    pub peak_live_slots: usize,
    /// Maximum runs held by a single band arena (transient, bounded by the
    /// band area).
    pub peak_band_runs: usize,
}

/// The result of draining a [`RowSource`] out-of-core.
#[derive(Clone, Debug)]
pub struct OocRun {
    /// Every retired component, in retirement order.
    pub components: Vec<RetiredComponent>,
    /// Frame shape and carried-state peaks.
    pub stats: OocStats,
}

/// A union–find slot over components live across a band boundary.
/// `parent == self` marks a root owning a running feature record; forwarded
/// slots are reclaimed at the end of the band that forwarded them.
#[derive(Clone, Copy, Debug)]
struct Slot {
    parent: u32,
    /// Stamp marking membership in the newest carried frontier.
    touched: u64,
    /// Stamp guarding the retirement scan against visiting a root twice.
    scanned: u64,
    rec: RetiredComponent,
}

/// Reusable out-of-core labeler (see the module docs for the band cycle).
/// The band bitmap, the tiled core, and every carried vector persist across
/// calls, so a stream of frames with equal widths reallocates nothing.
#[derive(Debug)]
pub struct OutOfCoreLabeler {
    /// Rows per band (≥ 1); the in-memory working set is `band_rows × cols`.
    band_rows: usize,
    /// Tile columns the band labeler splits each band into.
    tiles_x: usize,
    /// The band-labeling core: a 1 × `tiles_x` tiled engine driven through
    /// its arena-building phases only.
    core: TiledLabeler,
    /// The reusable band bitmap (`None` until the first band reveals the
    /// width; reallocated only when the width changes).
    band: Option<Bitmap>,
    /// Row read buffer handed to the source.
    words: Vec<u64>,
    /// Packed words of the previous band's last real row.
    prev_words: Vec<u64>,
    /// Runs of that row, packed `start << 32 | end`.
    prev_runs: Vec<u64>,
    /// Slot index of each carried run.
    prev_slots: Vec<u32>,
    /// Scratch for the next frontier while the previous is still readable.
    next_runs: Vec<u64>,
    next_slots: Vec<u32>,
    /// Slot slab plus its free list.
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Slots forwarded by this band's seam unions, reclaimed at band end.
    forwarded: Vec<u32>,
    /// Slots minted by this band's fold — retirement candidates alongside
    /// the old frontier (a component can be born and die within one band).
    minted: Vec<u32>,
    /// Band-root → slot map for the current band (`NONE` = unmapped).
    band_slot: Vec<u32>,
    /// Scratch words for the 8-conn dilated seam row.
    dilate_buf: Vec<u64>,
    /// Scratch words for seam adjacency.
    and_buf: Vec<u64>,
    /// Band counter driving the `touched`/`scanned` stamps.
    stamp: u64,
}

const NONE: u32 = u32::MAX;

/// Path-halving find over the slot slab.
fn resolve(slots: &mut [Slot], mut x: u32) -> u32 {
    loop {
        let p = slots[x as usize].parent;
        if p == x {
            return x;
        }
        let gp = slots[p as usize].parent;
        slots[x as usize].parent = gp;
        x = gp;
    }
}

impl OutOfCoreLabeler {
    /// Creates a labeler reading `band_rows` rows per band and labeling each
    /// band with `tiles_x` tile columns (both clamped to ≥ 1; the tile pass
    /// uses `tiles_x` workers).
    pub fn new(band_rows: usize, tiles_x: usize) -> Self {
        let tiles_x = tiles_x.max(1);
        OutOfCoreLabeler {
            band_rows: band_rows.max(1),
            tiles_x,
            core: TiledLabeler::new(1, tiles_x, tiles_x),
            band: None,
            words: Vec::new(),
            prev_words: Vec::new(),
            prev_runs: Vec::new(),
            prev_slots: Vec::new(),
            next_runs: Vec::new(),
            next_slots: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            forwarded: Vec::new(),
            minted: Vec::new(),
            band_slot: Vec::new(),
            dilate_buf: Vec::new(),
            and_buf: Vec::new(),
            stamp: 0,
        }
    }

    /// The configured band height.
    pub fn band_rows(&self) -> usize {
        self.band_rows
    }

    /// The configured tile-column count.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Total bytes of scratch capacity currently reserved — carried state,
    /// slot slab, band bitmap, and the tiled core's arenas.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.core.scratch_bytes()
            + self
                .band
                .as_ref()
                .map_or(0, |b| b.rows() * b.words_per_row() * size_of::<u64>())
            + (self.words.capacity()
                + self.prev_words.capacity()
                + self.prev_runs.capacity()
                + self.next_runs.capacity()
                + self.dilate_buf.capacity()
                + self.and_buf.capacity())
                * size_of::<u64>()
            + (self.prev_slots.capacity()
                + self.next_slots.capacity()
                + self.free.capacity()
                + self.forwarded.capacity()
                + self.minted.capacity()
                + self.band_slot.capacity())
                * size_of::<u32>()
            + self.slots.capacity() * size_of::<Slot>()
    }

    /// Drains `src` and returns every component of the frame with full
    /// feature records, never holding more than one band of bitmap plus the
    /// carried frontier. Component order is retirement order; sort for the
    /// canonical order, or use [`RetiredComponent::label`] with
    /// `stats.rows` for the paper's labels.
    pub fn label_source<S: RowSource>(
        &mut self,
        src: &mut S,
        conn: Connectivity,
    ) -> io::Result<OocRun> {
        let cols = src.cols();
        assert!(cols > 0, "out-of-core source must have positive width");
        assert!(
            (self.band_rows as u64) * (cols as u64) < u32::MAX as u64,
            "band must fit the u32 run-index space; lower --band-rows"
        );
        // Reset carried state from any previous frame.
        self.prev_runs.clear();
        self.prev_slots.clear();
        self.slots.clear();
        self.free.clear();
        self.forwarded.clear();
        self.minted.clear();
        self.stamp = 0;
        if self
            .band
            .as_ref()
            .is_none_or(|b| b.rows() != self.band_rows || b.cols() != cols)
        {
            self.band = None; // drop the old allocation before the new one
            self.band = Some(Bitmap::new(self.band_rows, cols));
        }
        self.prev_words.clear();
        self.prev_words.resize(cols.div_ceil(64), 0);

        let mut components = Vec::new();
        let mut stats = OocStats {
            cols,
            band_rows: self.band_rows,
            ..OocStats::default()
        };

        loop {
            let h = self.read_band(src)?;
            if h == 0 {
                break;
            }
            self.process_band(conn, stats.rows, h, &mut components, &mut stats);
            stats.rows += h as u64;
            stats.bands += 1;
            if h < self.band_rows {
                break;
            }
        }

        // End of frame: first every carried run's bottom edges face the
        // border, then every still-live component retires. Two passes — a
        // slot can own several carried runs, and its record must not be
        // emitted before the later runs add their exposure.
        self.stamp += 1;
        for q in 0..self.prev_runs.len() {
            let sb = self.prev_runs[q];
            let len = (sb & 0xffff_ffff) - (sb >> 32) + 1;
            let s = resolve(&mut self.slots, self.prev_slots[q]);
            self.prev_slots[q] = s;
            self.slots[s as usize].rec.perimeter += len;
        }
        for q in 0..self.prev_slots.len() {
            let slot = &mut self.slots[self.prev_slots[q] as usize];
            if slot.scanned != self.stamp {
                slot.scanned = self.stamp;
                components.push(slot.rec);
                stats.retired += 1;
            }
        }
        stats.peak_carried_runs = stats.peak_carried_runs.max(self.prev_runs.len());
        Ok(OocRun { components, stats })
    }

    /// Reads up to `band_rows` rows into the band bitmap, zeroing the unused
    /// tail, and returns how many real rows arrived.
    fn read_band<S: RowSource>(&mut self, src: &mut S) -> io::Result<usize> {
        let band = self.band.as_mut().expect("band allocated by label_source");
        let mut h = 0usize;
        while h < self.band_rows {
            if !src.next_row(&mut self.words)? {
                break;
            }
            band.set_row_words(h, &self.words);
            h += 1;
        }
        if h < self.band_rows {
            self.words.clear();
            self.words.resize(band.words_per_row(), 0);
            for r in h..self.band_rows {
                band.set_row_words(r, &self.words);
            }
        }
        Ok(h)
    }

    /// Labels the loaded band (first `h` rows real, `band_top` its global
    /// row offset), reconciles it with the carried frontier, and advances
    /// the frontier to the band's last real row.
    fn process_band(
        &mut self,
        conn: Connectivity,
        band_top: u64,
        h: usize,
        components: &mut Vec<RetiredComponent>,
        stats: &mut OocStats,
    ) {
        let band = self.band.as_ref().expect("band allocated by label_source");
        let cols = band.cols();
        self.core.build_arena(band, conn);
        let (runs, node, row_runs) = self.core.arena();
        stats.peak_band_runs = stats.peak_band_runs.max(runs.len());
        self.band_slot.clear();
        self.band_slot.resize(runs.len(), NONE);

        let first = band_top == 0;
        if !first {
            // Step 3: bottom exposure of the carried frontier against the
            // band's first row.
            let row0 = band.row_words(0);
            for q in 0..self.prev_runs.len() {
                let sb = self.prev_runs[q];
                let (a, b) = ((sb >> 32) as u32, (sb & 0xffff_ffff) as u32);
                let covered = u64::from(count_ones_in_span(row0, a, b));
                let s = resolve(&mut self.slots, self.prev_slots[q]);
                self.prev_slots[q] = s;
                self.slots[s as usize].rec.perimeter += u64::from(b - a + 1) - covered;
            }

            // Step 4: seam merge across the band boundary. Adjacent
            // (first-row run, carried run) pairs come from the same
            // word-level sweeps as every other seam; a band root adopts the
            // first carried slot it meets and unions with the rest.
            let (r0lo, r0hi) = (row_runs[0] as usize, row_runs[1] as usize);
            let cur_runs = &runs[r0lo..r0hi];
            let OutOfCoreLabeler {
                prev_words,
                prev_runs,
                prev_slots,
                slots,
                forwarded,
                band_slot,
                dilate_buf,
                and_buf,
                ..
            } = self;
            and_buf.clear();
            match conn {
                Connectivity::Four => {
                    and_buf.extend(row0.iter().zip(prev_words.iter()).map(|(&a, &b)| a & b));
                }
                Connectivity::Eight => {
                    dilate_words_into(prev_words, cols, dilate_buf);
                    and_buf.extend(row0.iter().zip(dilate_buf.iter()).map(|(&a, &b)| a & b));
                }
            }
            let mut join = |c: usize, q: usize| {
                let sq = resolve(slots, prev_slots[q]);
                prev_slots[q] = sq;
                let rc = node[r0lo + c] as u32 as usize;
                if band_slot[rc] == NONE {
                    band_slot[rc] = sq;
                    return;
                }
                let sk = resolve(slots, band_slot[rc]);
                band_slot[rc] = sk;
                if sk != sq {
                    let rec = slots[sq as usize].rec;
                    slots[sk as usize].rec.absorb(&rec);
                    slots[sq as usize].parent = sk;
                    forwarded.push(sq);
                }
            };
            match conn {
                Connectivity::Four => {
                    // Each AND segment lies inside exactly one run on each
                    // side, so locating the runs containing its start pairs
                    // them; a (cur, prev) pair overlaps in at most one
                    // segment, so no pair is reported twice.
                    let mut c = 0usize;
                    let mut q = 0usize;
                    crate::bitmap::for_each_run_in_words(and_buf, cols, |s, _| {
                        let s = u64::from(s);
                        while (cur_runs[c] & 0xffff_ffff) < s {
                            c += 1;
                        }
                        while (prev_runs[q] & 0xffff_ffff) < s {
                            q += 1;
                        }
                        join(c, q);
                    });
                }
                Connectivity::Eight => {
                    for_each_diagonal_pair(and_buf, cols, cur_runs, prev_runs, join);
                }
            }
        }

        // Step 5: fold every band run's feature contribution into its
        // root's slot, minting slots for components born in this band.
        for lr in 0..h {
            let gr = band_top + lr as u64;
            let gr32 = u32::try_from(gr).expect("frame rows exceed u32");
            let north_words = if lr > 0 {
                Some(band.row_words(lr - 1))
            } else if first {
                None
            } else {
                Some(&self.prev_words[..])
            };
            let south_words = (lr + 1 < h).then(|| band.row_words(lr + 1));
            let (row_lo, row_hi) = (row_runs[lr] as usize, row_runs[lr + 1] as usize);
            for k in row_lo..row_hi {
                let sb = runs[k];
                let (a, b) = ((sb >> 32) as u32, (sb & 0xffff_ffff) as u32);
                let len = u64::from(b - a + 1);
                stats.pixels += len;
                // The band arena clips runs at tile-column boundaries, so a
                // run's left/right pixel edge is exposed only when the
                // neighboring arena run (same row, adjacent index) does not
                // continue it.
                let left = u64::from(k == row_lo || (runs[k - 1] & 0xffff_ffff) + 1 != sb >> 32);
                let right =
                    u64::from(k + 1 == row_hi || (runs[k + 1] >> 32) != (sb & 0xffff_ffff) + 1);
                let north = match north_words {
                    Some(w) => len - u64::from(count_ones_in_span(w, a, b)),
                    None => len, // image top border
                };
                // The last real row's south edges are settled by the next
                // band (or the end-of-frame pass).
                let south = match south_words {
                    Some(w) => len - u64::from(count_ones_in_span(w, a, b)),
                    None => 0,
                };
                let rec = RetiredComponent {
                    min_pos_col: a,
                    min_pos_row: gr32,
                    area: len,
                    min_row: gr32,
                    max_row: gr32,
                    min_col: a,
                    max_col: b,
                    sum_row: len * gr,
                    sum_col: (u64::from(a) + u64::from(b)) * len / 2,
                    perimeter: left + right + north + south,
                };
                let rc = node[k] as u32 as usize;
                if self.band_slot[rc] == NONE {
                    let s = match self.free.pop() {
                        Some(s) => {
                            self.slots[s as usize] = Slot {
                                parent: s,
                                touched: 0,
                                scanned: 0,
                                rec,
                            };
                            s
                        }
                        None => {
                            let s = u32::try_from(self.slots.len())
                                .expect("live components exceed u32 slots");
                            self.slots.push(Slot {
                                parent: s,
                                touched: 0,
                                scanned: 0,
                                rec,
                            });
                            s
                        }
                    };
                    self.band_slot[rc] = s;
                    self.minted.push(s);
                } else {
                    let s = resolve(&mut self.slots, self.band_slot[rc]);
                    self.band_slot[rc] = s;
                    self.slots[s as usize].rec.absorb(&rec);
                }
            }
        }

        // Step 6: the band's last real row becomes the new carried frontier.
        // Arena runs clipped at tile boundaries are coalesced back into
        // maximal row runs — the seam sweeps and the `O(cols)` carried-run
        // bound both assume them — which is safe because touching runs
        // always share a component (the vertical seams unioned them).
        self.stamp += 1;
        self.next_runs.clear();
        self.next_slots.clear();
        for k in row_runs[h - 1] as usize..row_runs[h] as usize {
            let sb = runs[k];
            let rc = node[k] as u32 as usize;
            let s = resolve(&mut self.slots, self.band_slot[rc]);
            self.band_slot[rc] = s;
            self.slots[s as usize].touched = self.stamp;
            if let Some(last) = self.next_runs.last_mut() {
                if (*last & 0xffff_ffff) + 1 == sb >> 32 {
                    debug_assert_eq!(*self.next_slots.last().unwrap(), s);
                    *last = (*last & 0xffff_ffff_0000_0000) | (sb & 0xffff_ffff);
                    continue;
                }
            }
            self.next_runs.push(sb);
            self.next_slots.push(s);
        }

        // Step 7: retire every slot live before this band — old frontier
        // or minted within it — that missed the new frontier. Such a
        // component has no pixel on the boundary row and can never grow.
        for i in 0..self.prev_slots.len() + self.minted.len() {
            let cand = if i < self.prev_slots.len() {
                resolve(&mut self.slots, self.prev_slots[i])
            } else {
                self.minted[i - self.prev_slots.len()]
            };
            let slot = &mut self.slots[cand as usize];
            if slot.scanned == self.stamp {
                continue;
            }
            slot.scanned = self.stamp;
            if slot.touched != self.stamp {
                components.push(slot.rec);
                stats.retired += 1;
                self.free.push(cand);
            }
        }
        self.minted.clear();

        // Step 8: reclaim forwarded slots and swap in the new frontier.
        self.free.append(&mut self.forwarded);
        std::mem::swap(&mut self.prev_runs, &mut self.next_runs);
        std::mem::swap(&mut self.prev_slots, &mut self.next_slots);
        self.prev_words.copy_from_slice(band.row_words(h - 1));
        stats.peak_carried_runs = stats.peak_carried_runs.max(self.prev_runs.len());
        stats.peak_live_slots = stats
            .peak_live_slots
            .max(self.slots.len() - self.free.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_labels_conn;
    use crate::gen;
    use crate::stream::{label_stream, BitmapRows};

    const CONNS: [Connectivity; 2] = [Connectivity::Four, Connectivity::Eight];

    fn ooc_on(img: &Bitmap, conn: Connectivity, band_rows: usize, tiles_x: usize) -> OocRun {
        let mut rows = BitmapRows::new(img);
        label_out_of_core(&mut rows, conn, band_rows, tiles_x).unwrap()
    }

    /// The strongest identity available: every retired feature record —
    /// perimeter, centroid sums, bounding box, minimum position — must match
    /// the row-streaming engine's, for every band height.
    #[test]
    fn retired_records_match_the_streaming_engine_exactly() {
        for name in ["random50", "blobs", "checker", "maze", "spiral"] {
            let img = gen::by_name(name, 53, 9).unwrap();
            for conn in CONNS {
                let mut want = label_stream(&mut BitmapRows::new(&img), conn)
                    .unwrap()
                    .components;
                want.sort_unstable();
                for band_rows in [1usize, 2, 7, 16, 53, 64, 100] {
                    for tiles_x in [1usize, 2, 4] {
                        let mut got = ooc_on(&img, conn, band_rows, tiles_x).components;
                        got.sort_unstable();
                        assert_eq!(
                            got, want,
                            "{name} conn={conn:?} band_rows={band_rows} tiles_x={tiles_x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn labels_and_areas_match_the_whole_frame_engine() {
        let img = gen::uniform_random(97, 130, 0.45, 3);
        for conn in CONNS {
            let grid = fast_labels_conn(&img, conn);
            let mut want: Vec<(u64, u64)> = grid
                .component_stats()
                .iter()
                .map(|c| (u64::from(c.label), c.pixels as u64))
                .collect();
            want.sort_unstable();
            let run = ooc_on(&img, conn, 16, 2);
            let mut got: Vec<(u64, u64)> = run
                .components
                .iter()
                .map(|c| (c.label(img.rows()), c.area))
                .collect();
            got.sort_unstable();
            assert_eq!(got, want, "conn={conn:?}");
            assert_eq!(run.stats.retired as usize, want.len());
        }
    }

    #[test]
    fn carried_state_stays_bounded_by_one_row_of_runs() {
        // A dense tall frame: the band arena sees many runs, but the carried
        // frontier can never exceed ceil(cols / 2) runs.
        let img = gen::uniform_random(200, 64, 0.5, 5);
        for conn in CONNS {
            let run = ooc_on(&img, conn, 8, 2);
            assert!(run.stats.peak_carried_runs <= 64 / 2 + 1);
            assert!(run.stats.peak_band_runs >= run.stats.peak_carried_runs);
            assert_eq!(run.stats.rows, 200);
            assert_eq!(run.stats.bands, 25);
        }
    }

    #[test]
    fn components_born_and_dying_inside_one_band_are_retired() {
        // An isolated dot strictly inside band 0 of a 2-band frame must not
        // be lost when the frontier moves past it.
        let mut img = Bitmap::new(8, 8);
        img.set(1, 3, true);
        img.set(6, 6, true);
        let run = ooc_on(&img, Connectivity::Four, 4, 1);
        assert_eq!(run.components.len(), 2);
        let dot = run.components.iter().find(|c| c.min_pos_row == 1).unwrap();
        assert_eq!((dot.area, dot.perimeter), (1, 4));
    }

    #[test]
    fn a_component_straddling_every_band_keeps_one_record() {
        // One vertical line through a 10-band frame: each band boundary must
        // chain the same slot forward.
        let mut img = Bitmap::new(40, 5);
        for r in 0..40 {
            img.set(r, 2, true);
        }
        for conn in CONNS {
            let run = ooc_on(&img, conn, 4, 2);
            assert_eq!(run.components.len(), 1, "conn={conn:?}");
            let c = &run.components[0];
            assert_eq!(c.area, 40);
            assert_eq!(c.perimeter, 2 * 40 + 2);
            assert_eq!((c.min_row, c.max_row), (0, 39));
            assert_eq!(run.stats.peak_live_slots, 1);
        }
    }

    #[test]
    fn diagonal_links_across_band_boundaries_merge_at_eight_conn() {
        // A staircase touching only diagonally at every boundary row.
        let mut img = Bitmap::new(6, 6);
        for k in 0..6 {
            img.set(k, k, true);
        }
        for band_rows in [1usize, 2, 3] {
            let run = ooc_on(&img, Connectivity::Eight, band_rows, 2);
            assert_eq!(run.components.len(), 1, "band_rows={band_rows}");
            let four = ooc_on(&img, Connectivity::Four, band_rows, 2);
            assert_eq!(four.components.len(), 6, "band_rows={band_rows}");
        }
    }

    #[test]
    fn reused_labeler_carries_nothing_between_frames() {
        let mut lab = OutOfCoreLabeler::new(4, 2);
        let a = gen::uniform_random(30, 33, 0.5, 1);
        let b = gen::uniform_random(9, 33, 0.7, 2);
        for img in [&a, &b, &a] {
            let run = lab
                .label_source(&mut BitmapRows::new(img), Connectivity::Eight)
                .unwrap();
            let mut got = run.components;
            got.sort_unstable();
            let mut want = label_stream(&mut BitmapRows::new(img), Connectivity::Eight)
                .unwrap()
                .components;
            want.sort_unstable();
            assert_eq!(got, want);
        }
        // Width change reallocates the band bitmap.
        let c = gen::uniform_random(10, 70, 0.5, 3);
        let run = lab
            .label_source(&mut BitmapRows::new(&c), Connectivity::Four)
            .unwrap();
        assert_eq!(
            run.components.len(),
            fast_labels_conn(&c, Connectivity::Four).component_count()
        );
    }

    #[test]
    fn empty_and_degenerate_frames_do_not_panic() {
        let empty = Bitmap::new(5, 5);
        let run = ooc_on(&empty, Connectivity::Four, 2, 2);
        assert!(run.components.is_empty());
        assert_eq!(run.stats.rows, 5);
        let line = gen::uniform_random(1, 100, 0.5, 4);
        for conn in CONNS {
            let run = ooc_on(&line, conn, 3, 4);
            assert_eq!(
                run.components.len(),
                fast_labels_conn(&line, conn).component_count()
            );
        }
    }
}
