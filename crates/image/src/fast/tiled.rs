//! 2-D tiled run-based labeling: a grid of rectangular tiles labeled
//! concurrently, seams merged hierarchically.
//!
//! The strip engine ([`super::parallel`]) stops scaling when rows are short
//! and thread counts grow — its 1-D seams are as long as the image is wide,
//! and there is one per worker. This engine generalizes the decomposition to
//! a `tiles_y × tiles_x` grid, the shape Stout's optimal mesh-labeling
//! analysis prescribes (arXiv:1502.01435): seam work then grows with the
//! tile *perimeter*, not the image width, and the seams merge in a balanced
//! pairwise-doubling order so each level halves the number of unmerged
//! regions. The phases:
//!
//! 1. **tile pass (parallel)** — each worker runs the word-parallel
//!    run-extraction + union–find pass over its own rectangular window
//!    ([`FastLabeler`]'s column-window variant), with *local* run indices
//!    but **global** run bounds and minimum-position payloads;
//! 2. **relocation (parallel per band)** — tiles are interleaved row-by-row
//!    into one global arena laid out exactly like the sequential engine's
//!    (runs in (row, column) order, a global per-row run table), remapping
//!    each tile-local parent through a per-tile index map;
//! 3. **hierarchical seam merge (sequential, tiny)** — vertical seams first
//!    (per band, runs clipped at a tile's column boundary are looked up by
//!    binary search and unioned across it, with diagonal reach at 8-conn),
//!    then full-width horizontal band seams (the word-level `AND` adjacency
//!    at 4-conn, the dilated-AND sweep at 8 — both shared with the strip
//!    engine). Boundaries are processed in pairwise-doubling order —
//!    level ℓ merges the boundaries at odd multiples of `2^ℓ` — and each
//!    level's seam count and union count are recorded
//!    ([`TiledLabeler::seam_levels`]);
//! 4. **flatten (parallel per band)** — the strip engine's scheme verbatim:
//!    a sequential `O(seam runs)` pre-pass finalizes recorded seam losers,
//!    then each band's ascending sweep reads only its own nodes;
//! 5. **output (parallel per band)** — run-at-a-time label fills into
//!    disjoint row bands of the [`LabelGrid`].
//!
//! Corner cases the decomposition must not miss: a diagonal adjacency
//! straddling a vertical boundary is handled by the vertical seam's ±1-row
//! reach *within* the band, and one straddling a horizontal boundary —
//! including the four-corner point where four tiles meet — by the full-width
//! horizontal seam. The result is **bit-identical** to
//! [`super::fast_labels_conn`] and the BFS oracle for every image,
//! connectivity, tile shape, and thread count.
//!
//! The out-of-core scheduler ([`super::ooc`]) reuses phases 1–4 through
//! `TiledLabeler::build_arena` to label one band of tiles at a time.

use super::parallel::{find_pure, seam_union_eight_words, seam_union_four};
use super::{link_roots, FastLabeler, MIN_HALF};
use crate::bitmap::{dilate_words_into, Bitmap};
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;

/// Labels `img` under 4-connectivity on a 2×2 tile grid. Convenience wrapper
/// allocating a fresh grid and labeler; hot loops should hold a
/// [`TiledLabeler`] instead.
pub fn tiled_labels(img: &Bitmap, threads: usize) -> LabelGrid {
    tiled_labels_conn(img, Connectivity::Four, 2, 2, threads)
}

/// Labels `img` under an arbitrary adjacency convention on a
/// `tiles_y × tiles_x` grid with `threads` workers. Output is bit-identical
/// to [`super::fast_labels_conn`] for every tile shape and thread count.
pub fn tiled_labels_conn(
    img: &Bitmap,
    conn: Connectivity,
    tiles_y: usize,
    tiles_x: usize,
    threads: usize,
) -> LabelGrid {
    let mut out = LabelGrid::new_background(img.rows(), img.cols());
    TiledLabeler::new(tiles_y, tiles_x, threads).label_into(img, conn, &mut out);
    out
}

/// Per-level cost record of the hierarchical seam merge (see
/// [`TiledLabeler::seam_levels`]): how many seam boundaries the level
/// processed and how many union–find links actually joined two sets there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeamLevel {
    /// Position in the schedule: vertical levels first, then horizontal.
    pub level: usize,
    /// `true` for vertical (column-boundary) seams, `false` for horizontal
    /// (full-width band) seams.
    pub vertical: bool,
    /// Seam segments processed: boundary × band for vertical levels, whole
    /// boundaries for horizontal ones.
    pub seams: usize,
    /// Effective unions (links that joined two distinct sets).
    pub unions: usize,
}

/// Reusable tiled labeler (see the module docs for the phases).
///
/// Every scratch structure — one [`FastLabeler`] per tile, the per-tile
/// index maps, the global arenas — is kept between calls, so labeling a
/// stream of images allocates only when an image exceeds all previous highs.
#[derive(Debug)]
pub struct TiledLabeler {
    /// Requested grid shape; a call clamps to `tiles_y.min(rows)` ×
    /// `tiles_x.min(cols)` so every tile is non-empty.
    tiles_y: usize,
    tiles_x: usize,
    /// Worker count for the parallel phases (≥ 1).
    threads: usize,
    /// Per-tile scratch labelers, row-major (`tiles[i * tiles_x + j]`).
    tiles: Vec<FastLabeler>,
    /// Per-tile local→global run index maps, filled during relocation so
    /// tile-local parent pointers can be remapped.
    l2g: Vec<Vec<u32>>,
    /// Global run bounds in (row, column) order — the same layout the
    /// sequential engine produces, which is what makes the row-wise seam
    /// machinery and the output sweep reusable verbatim.
    runs: Vec<u64>,
    /// Global union–find arena, packed `min_pos << 32 | parent`.
    node: Vec<u64>,
    /// Global index of the first run of each image row, plus a sentinel.
    row_runs: Vec<u32>,
    /// Scratch words for horizontal seam adjacency.
    seam_and: Vec<u64>,
    /// Scratch words for the dilated upper seam row at 8-connectivity.
    seam_dilate: Vec<u64>,
    /// Roots that lost a seam union — the nodes whose parent may cross a
    /// band, finalized by the flatten pre-pass.
    seam_losers: Vec<u32>,
    /// Scratch path for the pre-pass root chases.
    chase: Vec<u32>,
    /// Root count each flatten worker observed in its band.
    band_roots: Vec<usize>,
    /// Cost accounting of the most recent hierarchical merge.
    levels: Vec<SeamLevel>,
    /// Whether the most recent call took the tiled path (`false`: the
    /// sequential delegate in `tiles[0]` holds the run/node state).
    last_tiled: bool,
    /// Tile-worker count of the most recent call (stale workers beyond it
    /// hold state from older, larger calls).
    last_ntiles: usize,
}

impl TiledLabeler {
    /// Creates a labeler for a `tiles_y × tiles_x` grid labeled by `threads`
    /// workers (all clamped to ≥ 1).
    pub fn new(tiles_y: usize, tiles_x: usize, threads: usize) -> Self {
        TiledLabeler {
            tiles_y: tiles_y.max(1),
            tiles_x: tiles_x.max(1),
            threads: threads.max(1),
            tiles: Vec::new(),
            l2g: Vec::new(),
            runs: Vec::new(),
            node: Vec::new(),
            row_runs: Vec::new(),
            seam_and: Vec::new(),
            seam_dilate: Vec::new(),
            seam_losers: Vec::new(),
            chase: Vec::new(),
            band_roots: Vec::new(),
            levels: Vec::new(),
            last_tiled: false,
            last_ntiles: 0,
        }
    }

    /// The grid shape requested at construction, `(tiles_y, tiles_x)`.
    pub fn tiles(&self) -> (usize, usize) {
        (self.tiles_y, self.tiles_x)
    }

    /// The worker count requested at construction.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of runs extracted by the most recent labeling call.
    pub fn last_runs(&self) -> usize {
        if self.last_tiled {
            self.runs.len()
        } else {
            self.tiles.first().map_or(0, FastLabeler::last_runs)
        }
    }

    /// Number of components found by the most recent labeling call. O(band
    /// count): each flatten worker counts its own roots as it sweeps.
    pub fn last_components(&self) -> usize {
        if self.last_tiled {
            self.band_roots.iter().sum()
        } else {
            self.tiles.first().map_or(0, FastLabeler::last_components)
        }
    }

    /// Tile classification counts of the most recent labeling call, summed
    /// over the tile workers that participated (see [`super::TileStats`];
    /// the hierarchical seam merge classifies no tiles of its own).
    pub fn last_tile_stats(&self) -> super::TileStats {
        let mut total = super::TileStats::default();
        for lab in &self.tiles[..self.last_ntiles.min(self.tiles.len())] {
            total.accumulate(lab.last_tile_stats());
        }
        total
    }

    /// Per-level costs of the most recent hierarchical seam merge (empty for
    /// calls that took the sequential delegate).
    pub fn seam_levels(&self) -> &[SeamLevel] {
        &self.levels
    }

    /// Total bytes of scratch capacity currently reserved across the global
    /// arenas and every per-tile labeler — the session's high-water mark.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.runs.capacity() * size_of::<u64>()
            + self.node.capacity() * size_of::<u64>()
            + self.row_runs.capacity() * size_of::<u32>()
            + self.seam_and.capacity() * size_of::<u64>()
            + self.seam_dilate.capacity() * size_of::<u64>()
            + self.seam_losers.capacity() * size_of::<u32>()
            + self.chase.capacity() * size_of::<u32>()
            + self.band_roots.capacity() * size_of::<usize>()
            + self.levels.capacity() * size_of::<SeamLevel>()
            + self
                .l2g
                .iter()
                .map(|m| m.capacity() * size_of::<u32>())
                .sum::<usize>()
            + self
                .tiles
                .iter()
                .map(FastLabeler::scratch_bytes)
                .sum::<usize>()
    }

    /// Labels `img` into `out` (re-dimensioned; every cell is written exactly
    /// once). A degenerate 1×1 grid delegates to the sequential
    /// [`FastLabeler`] hot path.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) {
        let (ty, tx) = self.effective_grid(img);
        if self.tiles.is_empty() {
            self.tiles.push(FastLabeler::new());
        }
        if ty * tx <= 1 {
            self.last_tiled = false;
            self.last_ntiles = 1;
            self.levels.clear();
            self.tiles[0].label_into(img, conn, out);
            return;
        }
        self.build_arena(img, conn);

        // Phase 5: write labels, parallel over disjoint row bands. After the
        // flatten every node holds `component_min << 32 | root`.
        let rows = img.rows();
        let cols = img.cols();
        let rb: Vec<usize> = (0..=ty).map(|i| i * rows / ty).collect();
        out.reset_dims(rows, cols);
        let bands = out.strip_rows_mut(&rb);
        std::thread::scope(|s| {
            for (i, band) in bands.into_iter().enumerate() {
                let (lo, hi) = (rb[i], rb[i + 1]);
                let (runs, node, row_runs) = (&self.runs, &self.node, &self.row_runs);
                s.spawn(move || {
                    for r in lo..hi {
                        let row = &mut band[(r - lo) * cols..(r - lo + 1) * cols];
                        row.fill(LabelGrid::BACKGROUND);
                        for k in row_runs[r] as usize..row_runs[r + 1] as usize {
                            let label = (node[k] >> 32) as u32;
                            let sb = runs[k];
                            let (a, b) = ((sb >> 32) as usize, (sb & 0xffff_ffff) as usize);
                            row[a] = label;
                            row[b] = label;
                            if b - a > 1 {
                                row[a + 1..b].fill(label);
                            }
                        }
                    }
                });
            }
        });
    }

    /// The clamped grid shape for `img`: every tile must own at least one
    /// row and one column.
    fn effective_grid(&self, img: &Bitmap) -> (usize, usize) {
        (self.tiles_y.min(img.rows()), self.tiles_x.min(img.cols()))
    }

    /// Phases 1–4 without the output sweep: afterwards [`Self::arena`]
    /// exposes the global run table in (row, column) order with every
    /// union–find node flattened to `component_min << 32 | root`. This is
    /// the band-labeling core the out-of-core scheduler drives once per
    /// band; unlike [`Self::label_into`] it always takes the tiled path
    /// (a 1×1 grid is simply a zero-seam merge).
    pub(crate) fn build_arena(&mut self, img: &Bitmap, conn: Connectivity) {
        let rows = img.rows();
        let cols = img.cols();
        let (ty, tx) = self.effective_grid(img);
        let ntiles = ty * tx;
        self.last_tiled = true;
        self.last_ntiles = ntiles;
        while self.tiles.len() < ntiles {
            self.tiles.push(FastLabeler::new());
        }
        while self.l2g.len() < ntiles {
            self.l2g.push(Vec::new());
        }
        // Even splits; the clamp guarantees every tile is non-empty.
        let rb: Vec<usize> = (0..=ty).map(|i| i * rows / ty).collect();
        let cb: Vec<usize> = (0..=tx).map(|j| j * cols / tx).collect();

        // Phase 1: per-tile run extraction + intra-tile unions, parallel.
        // Tiles are handed out in contiguous chunks (their areas are within
        // one row/column of equal, so chunks balance).
        let workers = self.threads.min(ntiles);
        std::thread::scope(|s| {
            let (rb, cb) = (&rb, &cb);
            let mut rest = &mut self.tiles[..ntiles];
            let mut k0 = 0usize;
            for w in 0..workers {
                let take = (ntiles - k0) / (workers - w);
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                let base_k = k0;
                s.spawn(move || {
                    for (off, lab) in chunk.iter_mut().enumerate() {
                        let k = base_k + off;
                        let (i, j) = (k / tx, k % tx);
                        lab.build_runs_window(img, conn, rb[i], rb[i + 1], cb[j], cb[j + 1]);
                    }
                });
                k0 += take;
            }
        });

        // Global row → run-range table: row `r`'s runs are the tiles of its
        // band interleaved in column order, so the global arena is laid out
        // exactly as the sequential engine would lay it out.
        self.row_runs.clear();
        self.row_runs.reserve(rows + 1);
        let mut band_base = Vec::with_capacity(ty + 1);
        band_base.push(0usize);
        let mut total = 0usize;
        for i in 0..ty {
            for r in rb[i]..rb[i + 1] {
                self.row_runs
                    .push(u32::try_from(total).expect("run count exceeds u32"));
                let lr = r - rb[i];
                for j in 0..tx {
                    let t = &self.tiles[i * tx + j];
                    total += (t.row_runs[lr + 1] - t.row_runs[lr]) as usize;
                }
            }
            band_base.push(total);
        }
        // Same packed-word overflow guard as the strip engine: a parent
        // index at or above 2^32 - 1 would carry into the `min_pos` half.
        assert!(
            total < u32::MAX as usize,
            "{total} runs overflow the packed u32 parent index space"
        );
        self.row_runs.push(total as u32);

        // Phase 2: relocate tiles into the global arenas, parallel over
        // bands (a band owns a contiguous global index range and its own
        // tiles). A tile-local parent always points to a smaller local
        // index, and local index order is (row, column) order, so the
        // per-tile map entry for a parent is already written when its child
        // is relocated.
        for (k, map) in self.l2g[..ntiles].iter_mut().enumerate() {
            map.clear();
            map.resize(self.tiles[k].runs.len(), 0);
        }
        self.runs.clear();
        self.runs.resize(total, 0);
        self.node.clear();
        self.node.resize(total, 0);
        std::thread::scope(|s| {
            let mut runs_rest = &mut self.runs[..];
            let mut node_rest = &mut self.node[..];
            let mut l2g_rest = &mut self.l2g[..ntiles];
            let mut tiles_rest = &self.tiles[..ntiles];
            for i in 0..ty {
                let band_len = band_base[i + 1] - band_base[i];
                let (runs_dst, rr) = runs_rest.split_at_mut(band_len);
                let (node_dst, nr) = node_rest.split_at_mut(band_len);
                let (l2g_band, lr2) = l2g_rest.split_at_mut(tx);
                let (tiles_band, tr2) = tiles_rest.split_at(tx);
                (runs_rest, node_rest, l2g_rest, tiles_rest) = (rr, nr, lr2, tr2);
                let gbase = band_base[i];
                let band_rows = rb[i + 1] - rb[i];
                s.spawn(move || {
                    let mut g = 0usize;
                    for lr in 0..band_rows {
                        for (j, tile) in tiles_band.iter().enumerate() {
                            let (klo, khi) =
                                (tile.row_runs[lr] as usize, tile.row_runs[lr + 1] as usize);
                            for k in klo..khi {
                                l2g_band[j][k] = (gbase + g) as u32;
                                runs_dst[g] = tile.runs[k];
                                let n = tile.node[k];
                                node_dst[g] =
                                    (n & MIN_HALF) | u64::from(l2g_band[j][n as u32 as usize]);
                                g += 1;
                            }
                        }
                    }
                    debug_assert_eq!(g, band_len);
                });
            }
        });

        // Phase 3: hierarchical seam merge. Level ℓ of the pairwise-doubling
        // schedule merges the boundaries at odd multiples of 2^ℓ — after it,
        // runs of 2^(ℓ+1) tiles are connected. Vertical seams go first (they
        // stay within a band; their parents never cross band flatten
        // domains... they do stay in-band), then the full-width horizontal
        // band seams, which also cover every diagonal straddling a band
        // boundary — including the four-corner points.
        self.seam_losers.clear();
        self.levels.clear();
        let mut level = 0usize;
        for l in 0..schedule_levels(tx) {
            let before = self.seam_losers.len();
            let mut seams = 0usize;
            let (half, step) = (1usize << l, 1usize << (l + 1));
            let mut j = half;
            while j < tx {
                let x = cb[j] as u64;
                for i in 0..ty {
                    seams += 1;
                    vertical_seam_unions(
                        &mut self.node,
                        &self.runs,
                        &self.row_runs,
                        conn,
                        x,
                        rb[i],
                        rb[i + 1],
                        &mut self.seam_losers,
                    );
                }
                j += step;
            }
            self.levels.push(SeamLevel {
                level,
                vertical: true,
                seams,
                unions: self.seam_losers.len() - before,
            });
            level += 1;
        }
        for l in 0..schedule_levels(ty) {
            let before = self.seam_losers.len();
            let mut seams = 0usize;
            let (half, step) = (1usize << l, 1usize << (l + 1));
            let mut i = half;
            while i < ty {
                let y = rb[i];
                seams += 1;
                let cur = self.row_runs[y] as usize..self.row_runs[y + 1] as usize;
                let prev = self.row_runs[y - 1] as usize..self.row_runs[y] as usize;
                match conn {
                    Connectivity::Four => {
                        self.seam_and.clear();
                        self.seam_and.extend(
                            img.row_words(y)
                                .iter()
                                .zip(img.row_words(y - 1))
                                .map(|(&a, &b)| a & b),
                        );
                        seam_union_four(
                            &mut self.node,
                            &self.runs,
                            &self.seam_and,
                            cols,
                            cur.start,
                            prev.start,
                            &mut self.seam_losers,
                        );
                    }
                    Connectivity::Eight => {
                        dilate_words_into(img.row_words(y - 1), cols, &mut self.seam_dilate);
                        self.seam_and.clear();
                        self.seam_and.extend(
                            img.row_words(y)
                                .iter()
                                .zip(self.seam_dilate.iter())
                                .map(|(&a, &b)| a & b),
                        );
                        seam_union_eight_words(
                            &mut self.node,
                            &self.runs,
                            &self.seam_and,
                            cols,
                            cur,
                            prev,
                            &mut self.seam_losers,
                        );
                    }
                }
                i += step;
            }
            self.levels.push(SeamLevel {
                level,
                vertical: false,
                seams,
                unions: self.seam_losers.len() - before,
            });
            level += 1;
        }

        // Phase 4a: finalize the seam losers (sequential, O(seam runs)).
        // Identical to the strip engine: chasing a loser's chain ends at a
        // true root holding the component minimum; writing that packed value
        // back along the path makes every cross-band parent final.
        for i in 0..self.seam_losers.len() {
            let mut x = self.seam_losers[i];
            self.chase.clear();
            loop {
                let p = self.node[x as usize] as u32;
                if p == x {
                    break;
                }
                self.chase.push(x);
                x = p;
            }
            let final_val = self.node[x as usize];
            for &y in &self.chase {
                self.node[y as usize] = final_val;
            }
        }

        // Phase 4b: flatten, parallel over bands. Within a band, ascending
        // order + parents-point-down means node[parent] is already flattened
        // when node[k] copies it (vertical seam links stay in-band, so
        // cross-tile parents are fine); a parent below the band base marks a
        // phase-4a-finalized node, which is skipped.
        self.band_roots.clear();
        self.band_roots.resize(ty, 0);
        std::thread::scope(|s| {
            let mut rest = &mut self.node[..];
            for (i, roots) in self.band_roots.iter_mut().enumerate() {
                let (lo, hi) = (band_base[i], band_base[i + 1]);
                let (band, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                s.spawn(move || {
                    let mut count = 0usize;
                    for k in 0..band.len() {
                        let p = band[k] as u32 as usize;
                        if let Some(pl) = p.checked_sub(lo) {
                            if pl == k {
                                count += 1;
                            } else {
                                band[k] = band[pl];
                            }
                        }
                    }
                    *roots = count;
                });
            }
        });
    }

    /// Read access to the flattened arena after `Self::build_arena`:
    /// `(runs, node, row_runs)` — run bounds in (row, column) order, nodes
    /// holding `component_min << 32 | root`, and the per-row run ranges.
    pub(crate) fn arena(&self) -> (&[u64], &[u64], &[u32]) {
        (&self.runs, &self.node, &self.row_runs)
    }
}

/// Number of pairwise-doubling levels needed to merge `n` regions: the
/// smallest `L` with `2^L >= n`.
fn schedule_levels(n: usize) -> usize {
    let mut l = 0usize;
    while (1usize << l) < n {
        l += 1;
    }
    l
}

/// Unions runs across the vertical boundary at column `x` for every row in
/// `row_lo..row_hi`: a left run clipped to end exactly at `x - 1` joins the
/// right run starting exactly at `x` on the same row (4-conn) and, with
/// diagonal reach, on the rows directly above/below within the range
/// (8-conn). Rows above/below the range are deliberately out of scope —
/// those adjacencies belong to the full-width horizontal seams.
///
/// Runs are located by binary search within the row's `row_runs` range, so a
/// seam costs `O(rows_in_band · log(runs_per_row))` — proportional to the
/// boundary length, not the band area. Shared with the out-of-core band
/// merger ([`super::ooc`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn vertical_seam_unions(
    node: &mut [u64],
    runs: &[u64],
    row_runs: &[u32],
    conn: Connectivity,
    x: u64,
    row_lo: usize,
    row_hi: usize,
    losers: &mut Vec<u32>,
) {
    debug_assert!(x > 0);
    for r in row_lo..row_hi {
        let Some(left) = run_ending_at(runs, row_runs, r, x - 1) else {
            continue;
        };
        match conn {
            Connectivity::Four => {
                if let Some(right) = run_starting_at(runs, row_runs, r, x) {
                    union_pair(node, left, right, losers);
                }
            }
            Connectivity::Eight => {
                let lo = r.max(row_lo + 1) - 1;
                let hi = (r + 1).min(row_hi - 1);
                for rr in lo..=hi {
                    if let Some(right) = run_starting_at(runs, row_runs, rr, x) {
                        union_pair(node, left, right, losers);
                    }
                }
            }
        }
    }
}

/// Global index of row `r`'s run ending exactly at column `col`, if any —
/// the left side of a vertical seam.
#[inline]
fn run_ending_at(runs: &[u64], row_runs: &[u32], r: usize, col: u64) -> Option<usize> {
    let (lo, hi) = (row_runs[r] as usize, row_runs[r + 1] as usize);
    let row = &runs[lo..hi];
    let k = row.partition_point(|&sb| (sb >> 32) <= col);
    if k > 0 && (row[k - 1] & 0xffff_ffff) == col {
        Some(lo + k - 1)
    } else {
        None
    }
}

/// Global index of row `r`'s run starting exactly at column `col`, if any —
/// the right side of a vertical seam.
#[inline]
fn run_starting_at(runs: &[u64], row_runs: &[u32], r: usize, col: u64) -> Option<usize> {
    let (lo, hi) = (row_runs[r] as usize, row_runs[r + 1] as usize);
    let row = &runs[lo..hi];
    let k = row.partition_point(|&sb| (sb >> 32) < col);
    if k < row.len() && (row[k] >> 32) == col {
        Some(lo + k)
    } else {
        None
    }
}

/// Finds both runs' roots (pure, like every seam find) and links them,
/// recording the loser for the flatten pre-pass.
#[inline]
fn union_pair(node: &mut [u64], a: usize, b: usize, losers: &mut Vec<u32>) {
    let ra = find_pure(node, a as u32);
    let rb = find_pure(node, b as u32);
    if ra != rb {
        losers.push(ra.max(rb));
    }
    link_roots(node, ra, rb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::fast_labels_conn;
    use crate::gen;
    use crate::oracle::bfs_labels_conn;

    const SHAPES: &[(usize, usize)] = &[(1, 2), (2, 1), (2, 2), (3, 3), (4, 4), (1, 8), (8, 1)];

    #[test]
    fn matches_fast_engine_on_tiny_shapes() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
            "#..#\n....\n#..#\n",
            "####\n....\n####\n####\n",
        ] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for &(ty, tx) in SHAPES {
                    assert_eq!(
                        tiled_labels_conn(&img, conn, ty, tx, 3),
                        fast_labels_conn(&img, conn),
                        "tiles {ty}x{tx} conn={conn:?} art:\n{art}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_fast_engine_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 41, 13).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let reference = fast_labels_conn(&img, conn);
                for &(ty, tx) in SHAPES {
                    assert_eq!(
                        tiled_labels_conn(&img, conn, ty, tx, 4),
                        reference,
                        "workload {name} tiles {ty}x{tx} conn={conn:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_word_boundary_widths_and_seam_columns() {
        // Widths chosen so vertical seams fall on, next to, and far from
        // 64-bit word boundaries.
        for cols in [63usize, 64, 65, 127, 128, 130, 191] {
            let img = gen::uniform_random(37, cols, 0.5, cols as u64);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for &(ty, tx) in SHAPES {
                    assert_eq!(
                        tiled_labels_conn(&img, conn, ty, tx, 4),
                        bfs_labels_conn(&img, conn),
                        "cols={cols} tiles {ty}x{tx} conn={conn:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn four_corner_diagonals_union_across_the_tile_cross() {
        // A 2×2 grid over a 4×4 image puts the tile cross at (2, 2); the two
        // pixels at (1,1) and (2,2) touch only diagonally, straddling both
        // seams at once — the horizontal seam must catch it.
        let mut img = Bitmap::new(4, 4);
        img.set(1, 1, true);
        img.set(2, 2, true);
        assert_eq!(
            tiled_labels_conn(&img, Connectivity::Eight, 2, 2, 4).component_count(),
            1
        );
        assert_eq!(
            tiled_labels_conn(&img, Connectivity::Four, 2, 2, 4).component_count(),
            2
        );
        // The anti-diagonal orientation crosses the corner the other way.
        let mut anti = Bitmap::new(4, 4);
        anti.set(1, 2, true);
        anti.set(2, 1, true);
        assert_eq!(
            tiled_labels_conn(&anti, Connectivity::Eight, 2, 2, 4).component_count(),
            1
        );
    }

    #[test]
    fn components_spanning_every_tile_collapse_to_one_label() {
        // A frame around the image touches all tiles of any grid.
        let n = 24usize;
        let mut img = Bitmap::new(n, n);
        for k in 0..n {
            img.set(0, k, true);
            img.set(n - 1, k, true);
            img.set(k, 0, true);
            img.set(k, n - 1, true);
        }
        for &(ty, tx) in SHAPES {
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let l = tiled_labels_conn(&img, conn, ty, tx, 4);
                assert_eq!(l.component_count(), 1, "tiles {ty}x{tx} conn={conn:?}");
                assert_eq!(l, fast_labels_conn(&img, conn));
            }
        }
    }

    #[test]
    fn more_tiles_than_pixels_degrades_gracefully() {
        let img = gen::uniform_random(3, 3, 0.5, 7);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(
                tiled_labels_conn(&img, conn, 64, 64, 8),
                fast_labels_conn(&img, conn)
            );
        }
    }

    #[test]
    fn seam_levels_follow_the_pairwise_doubling_schedule() {
        let img = gen::by_name("maze", 48, 5).unwrap();
        let mut lab = TiledLabeler::new(4, 4, 2);
        let mut out = LabelGrid::new_background(1, 1);
        lab.label_into(&img, Connectivity::Four, &mut out);
        let levels = lab.seam_levels();
        // 4 columns of tiles: 2 vertical levels (boundaries {1,3} then {2}),
        // each boundary crossing all 4 bands; 4 bands: 2 horizontal levels
        // (boundaries {1,3} then {2}).
        let shape: Vec<(usize, bool, usize)> = levels
            .iter()
            .map(|l| (l.level, l.vertical, l.seams))
            .collect();
        assert_eq!(
            shape,
            vec![(0, true, 8), (1, true, 4), (2, false, 2), (3, false, 1)]
        );
        // Every merge the sequential engine finds must happen at some level:
        // total unions = runs - components.
        let total_unions: usize = levels.iter().map(|l| l.unions).sum();
        let intra: usize = {
            // unions inside tiles = runs - roots before seams; recompute via
            // component counts instead: seam unions = tile components summed
            // minus final components.
            let mut parts = 0usize;
            for i in 0..4usize {
                for j in 0..4usize {
                    let (r0, r1) = (i * 48 / 4, (i + 1) * 48 / 4);
                    let (c0, c1) = (j * 48 / 4, (j + 1) * 48 / 4);
                    let mut tile = Bitmap::new(r1 - r0, c1 - c0);
                    for r in r0..r1 {
                        for c in c0..c1 {
                            if img.get(r, c) {
                                tile.set(r - r0, c - c0, true);
                            }
                        }
                    }
                    parts += fast_labels_conn(&tile, Connectivity::Four).component_count();
                }
            }
            parts
        };
        assert_eq!(
            total_unions,
            intra - out.component_count(),
            "hierarchical merge must perform exactly the cross-tile unions"
        );
    }

    #[test]
    fn reused_tiled_labeler_leaves_no_stale_state() {
        let mut labeler = TiledLabeler::new(2, 2, 4);
        let mut grid = LabelGrid::new_background(1, 1);
        let big = gen::uniform_random(80, 80, 0.6, 1);
        labeler.label_into(&big, Connectivity::Four, &mut grid);
        assert_eq!(grid, fast_labels_conn(&big, Connectivity::Four));
        let small = Bitmap::from_art("#.#\n###\n");
        labeler.label_into(&small, Connectivity::Four, &mut grid);
        assert_eq!(grid, fast_labels_conn(&small, Connectivity::Four));
        labeler.label_into(&big, Connectivity::Eight, &mut grid);
        assert_eq!(grid, fast_labels_conn(&big, Connectivity::Eight));
        assert_eq!(labeler.last_components(), grid.component_count());
    }

    #[test]
    fn single_row_and_single_column_images_do_not_panic() {
        for (rows, cols) in [(1usize, 200usize), (200, 1), (1, 1), (2, 2)] {
            let img = gen::uniform_random(rows, cols, 0.5, 11);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    tiled_labels_conn(&img, conn, 4, 4, 4),
                    fast_labels_conn(&img, conn),
                    "{rows}x{cols} conn={conn:?}"
                );
            }
        }
    }
}
