//! Iterative label-equivalence propagation — the GPU-style CCL kernel on
//! the host.
//!
//! This is the sixth registry engine, and the deliberate *contrast* to the
//! union–find two-pass in [`crate::fast`]: instead of linking runs into a
//! forest as the scan discovers adjacencies, it initializes every run's
//! label to its own index and then **iterates** — the label-equivalence
//! scheme of modern data-parallel CCL (Komura's label equivalence as refined
//! by Chen/Playne et al., arXiv:1708.08180, and the adaptive iteration of
//! Sutton et al., arXiv:1612.01178), which descends directly from the SLAP
//! paper's min-propagation view of labeling:
//!
//! * **word-level adjacency extraction, once** — runs come straight from the
//!   packed row words (`trailing_zeros` scans), and the run-adjacency edge
//!   list is built by whole-word shift/AND kernels (`cur & prev` for
//!   4-connectivity, `cur & dilate(prev)` for 8 — the same
//!   [`crate::bitmap::dilate_words_into`] sweep every other engine shares),
//!   so no per-pixel branching happens anywhere;
//! * **alternating relaxation sweeps** — each round relaxes every edge
//!   forward (ascending row order) then backward, writing the smaller label
//!   into the *representative slot* of the larger side (the 1708.08180
//!   "merge": hooking labels at their roots, which merges whole equivalence
//!   trees per edge instead of moving one run at a time);
//! * **pointer-jumping reduction between rounds** — `L[i] = L[L[i]]` passes
//!   until the forest is flat (the 1708.08180 "compression"), so the next
//!   sweep relaxes with fully-resolved representatives. Hooking + flattening
//!   is what turns the spiral/serpentine/hilbert adversarial families from
//!   Θ(path) rounds into a handful;
//! * **flat hot loop** — a round is three branch-predictable passes over
//!   flat `u32`/`u64` arrays (no pointer chasing beyond one indirection),
//!   the shape that vectorizes and the natural kernel to hand to real
//!   SIMD/GPU later.
//!
//! Output is **bit-identical** to [`crate::oracle::bfs_labels_conn`]: at the
//! fixpoint every run's representative is its component's minimum run index,
//! and a final fold resolves that to the minimum column-major position.
//! [`PropagateLabeler`] keeps all arenas between calls and is
//! allocation-free once warm, like every other engine session.

use crate::bitmap::{dilate_words_into, for_each_diagonal_pair, for_each_run_in_words, Bitmap};
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;

/// Labels `img` under 4-connectivity by iterative label propagation.
/// Convenience wrapper; hot loops should hold a [`PropagateLabeler`].
pub fn propagate_labels(img: &Bitmap) -> LabelGrid {
    propagate_labels_conn(img, Connectivity::Four)
}

/// Labels `img` under an arbitrary adjacency convention. Output is
/// bit-identical to [`crate::oracle::bfs_labels_conn`].
pub fn propagate_labels_conn(img: &Bitmap, conn: Connectivity) -> LabelGrid {
    let mut out = LabelGrid::new_background(img.rows(), img.cols());
    PropagateLabeler::new().label_into(img, conn, &mut out);
    out
}

/// Reusable iterative-propagation labeler (see the module docs for the
/// algorithm). All scratch arenas persist across calls.
#[derive(Debug, Default)]
pub struct PropagateLabeler {
    /// Bounds of run `k`, packed `start << 32 | end` (inclusive columns),
    /// in row order.
    runs: Vec<u64>,
    /// Index of the first run of each row, plus one trailing sentinel.
    row_runs: Vec<u32>,
    /// Run-adjacency edges, packed `cur << 32 | prev` with `cur` in row `r`
    /// and `prev` in row `r - 1` (so `prev < cur` always). Built once per
    /// call by the word-level kernels; ascending row order by construction.
    edges: Vec<u64>,
    /// The label array `L`: run index → representative run index. `L[i] <= i`
    /// always; at the fixpoint `L[i]` is the component's minimum run index.
    labels: Vec<u32>,
    /// Per run: minimum column-major position (the run's leftmost pixel);
    /// folded to per-component minima over the representatives at readout.
    minpos: Vec<u32>,
    /// Whole-word adjacency scratch (`cur & prev`, possibly dilated).
    and_buf: Vec<u64>,
    /// Dilation scratch for the 8-connectivity kernel.
    dil_buf: Vec<u64>,
    components: usize,
    iterations: usize,
    reduction_passes: usize,
}

impl PropagateLabeler {
    /// Creates a labeler with empty (growable) scratch storage.
    pub fn new() -> Self {
        PropagateLabeler::default()
    }

    /// Pass 1: extract every row's runs from the packed words and build the
    /// run-adjacency edge list with whole-word AND kernels.
    fn build(&mut self, img: &Bitmap, conn: Connectivity) {
        let rows = img.rows();
        let rows_u64 = rows as u64;
        self.runs.clear();
        self.row_runs.clear();
        self.edges.clear();
        self.minpos.clear();
        self.row_runs.reserve(rows + 1);
        let mut prev_lo = 0usize;
        for r in 0..rows {
            let prev_hi = self.runs.len();
            self.row_runs
                .push(u32::try_from(prev_hi).expect("run count exceeds u32"));
            {
                let PropagateLabeler { runs, minpos, .. } = self;
                let r_u64 = r as u64;
                img.for_each_row_run(r, |a, b| {
                    runs.push((u64::from(a) << 32) | u64::from(b));
                    minpos.push((u64::from(a) * rows_u64 + r_u64) as u32);
                });
            }
            if r > 0 {
                let cur_hi = self.runs.len();
                self.push_row_edges(img, conn, r, prev_lo, prev_hi, cur_hi);
                prev_lo = prev_hi;
            }
        }
        self.row_runs
            .push(u32::try_from(self.runs.len()).expect("run count exceeds u32"));
    }

    /// Appends the adjacency edges between row `r` (runs
    /// `prev_hi..cur_hi`) and row `r - 1` (runs `prev_lo..prev_hi`).
    fn push_row_edges(
        &mut self,
        img: &Bitmap,
        conn: Connectivity,
        r: usize,
        prev_lo: usize,
        prev_hi: usize,
        cur_hi: usize,
    ) {
        let cur_w = img.row_words(r);
        let prev_w = img.row_words(r - 1);
        let PropagateLabeler {
            runs,
            edges,
            and_buf,
            dil_buf,
            ..
        } = self;
        let (prev_runs, cur_runs) = runs[prev_lo..cur_hi].split_at(prev_hi - prev_lo);
        match conn {
            Connectivity::Four => {
                // Word-level exact-overlap kernel: every maximal segment of
                // `cur & prev` lies inside exactly one run of each row, and
                // each 4-adjacent run pair contains exactly one segment, so
                // two forward cursors enumerate the edges with no backstep.
                and_buf.clear();
                and_buf.extend(cur_w.iter().zip(prev_w).map(|(&a, &b)| a & b));
                let (mut c, mut q) = (0usize, 0usize);
                for_each_run_in_words(and_buf, img.cols(), |s, _| {
                    let s = u64::from(s);
                    while (cur_runs[c] & 0xffff_ffff) < s {
                        c += 1;
                    }
                    while (prev_runs[q] & 0xffff_ffff) < s {
                        q += 1;
                    }
                    edges.push((((prev_hi + c) as u64) << 32) | (prev_lo + q) as u64);
                });
            }
            Connectivity::Eight => {
                // The shared dilated-AND diagonal kernel: bit `i` of the AND
                // word is set iff row `r` has a pixel at `i` and row `r - 1`
                // one within horizontal reach 1; the sweep reports each
                // 8-adjacent run pair exactly once.
                dilate_words_into(prev_w, img.cols(), dil_buf);
                and_buf.clear();
                and_buf.extend(cur_w.iter().zip(dil_buf.iter()).map(|(&a, &b)| a & b));
                for_each_diagonal_pair(and_buf, img.cols(), cur_runs, prev_runs, |ci, qi| {
                    edges.push((((prev_hi + ci) as u64) << 32) | (prev_lo + qi) as u64);
                });
            }
        }
    }

    /// Pass 2: iterate relaxation rounds to the fixpoint. Each round is a
    /// forward edge sweep, a backward edge sweep, and pointer-jumping
    /// reduction passes until the label forest is flat; rounds repeat until
    /// one changes nothing.
    fn solve(&mut self) {
        let n = self.runs.len();
        self.labels.clear();
        self.labels.extend(0..n as u32);
        self.iterations = 0;
        self.reduction_passes = 0;
        let PropagateLabeler { edges, labels, .. } = self;
        loop {
            self.iterations += 1;
            let mut changed = false;
            // Forward sweep (ascending rows): hook the larger representative
            // to the smaller. Writing through `L[l]` (the representative
            // slot) instead of the run itself is the 1708.08180 merge — one
            // edge can pull a whole equivalence tree down.
            for &e in edges.iter() {
                let (a, b) = ((e >> 32) as usize, (e & 0xffff_ffff) as usize);
                // SAFETY: edges hold run indices `< n == labels.len()`, and
                // labels always hold run indices (they only ever take values
                // of other label slots, starting from the identity).
                unsafe {
                    let la = *labels.get_unchecked(a);
                    let lb = *labels.get_unchecked(b);
                    let (lo, hi) = if la < lb { (la, lb) } else { (lb, la) };
                    let slot = labels.get_unchecked_mut(hi as usize);
                    if lo < *slot {
                        *slot = lo;
                        changed = true;
                    }
                }
            }
            // Backward sweep (descending rows): the mirror relaxation, so a
            // monotone-ascending chain resolves within the same round.
            for &e in edges.iter().rev() {
                let (a, b) = ((e >> 32) as usize, (e & 0xffff_ffff) as usize);
                // SAFETY: as above.
                unsafe {
                    let la = *labels.get_unchecked(a);
                    let lb = *labels.get_unchecked(b);
                    let (lo, hi) = if la < lb { (la, lb) } else { (lb, la) };
                    let slot = labels.get_unchecked_mut(hi as usize);
                    if lo < *slot {
                        *slot = lo;
                        changed = true;
                    }
                }
            }
            if !changed {
                // The previous round's reduction left the forest flat and no
                // edge relaxed: every adjacent pair agrees — fixpoint.
                break;
            }
            // Pointer-jumping reduction (the 1708.08180 compression):
            // `L[i] = L[L[i]]` passes until flat. Ascending order makes each
            // pass at least halve every chain's depth.
            loop {
                self.reduction_passes += 1;
                let mut jumped = false;
                for i in 0..n {
                    // SAFETY: label values are run indices < n.
                    unsafe {
                        let l = *labels.get_unchecked(i);
                        let ll = *labels.get_unchecked(l as usize);
                        if ll != l {
                            *labels.get_unchecked_mut(i) = ll;
                            jumped = true;
                        }
                    }
                }
                if !jumped {
                    break;
                }
            }
        }
    }

    /// Labels `img` into `out` (re-dimensioned; every cell written exactly
    /// once). With reused storage of sufficient capacity the call performs
    /// no heap allocation.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) {
        self.build(img, conn);
        self.solve();
        let rows = img.rows();
        out.reset_dims(rows, img.cols());
        // Readout: fold each run's minimum position into its representative
        // (ascending order — `L[i] <= i`, so every representative slot is
        // final before any member reads it back), then fill runs with their
        // component minima.
        let n = self.runs.len();
        let mut components = 0usize;
        for i in 0..n {
            let l = self.labels[i] as usize;
            components += (l == i) as usize;
            if self.minpos[i] < self.minpos[l] {
                self.minpos[l] = self.minpos[i];
            }
        }
        self.components = components;
        for r in 0..rows {
            let (lo, hi) = (self.row_runs[r] as usize, self.row_runs[r + 1] as usize);
            let row = out.row_mut(r);
            row.fill(LabelGrid::BACKGROUND);
            for k in lo..hi {
                let label = self.minpos[self.labels[k] as usize];
                let sb = self.runs[k];
                let (a, b) = ((sb >> 32) as usize, (sb & 0xffff_ffff) as usize);
                row[a..=b].fill(label);
            }
        }
    }

    /// Counts components without writing any labels.
    pub fn count_components(&mut self, img: &Bitmap, conn: Connectivity) -> usize {
        self.build(img, conn);
        self.solve();
        self.components = self
            .labels
            .iter()
            .enumerate()
            .filter(|&(i, &l)| l as usize == i)
            .count();
        self.components
    }

    /// Number of runs extracted by the most recent call.
    pub fn last_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of components found by the most recent call.
    pub fn last_components(&self) -> usize {
        self.components
    }

    /// Relaxation rounds the most recent call needed to reach the fixpoint
    /// (each a forward plus a backward edge sweep), including the final
    /// no-change round that proves convergence. Always ≥ 1.
    pub fn last_iterations(&self) -> usize {
        self.iterations
    }

    /// Pointer-jumping reduction passes the most recent call performed
    /// across all rounds (each a full `L[i] = L[L[i]]` sweep, counting the
    /// final pass that verifies flatness).
    pub fn last_reduction_passes(&self) -> usize {
        self.reduction_passes
    }

    /// Total bytes of scratch capacity currently reserved — the session's
    /// high-water mark, stable once warm.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.runs.capacity() * size_of::<u64>()
            + self.row_runs.capacity() * size_of::<u32>()
            + self.edges.capacity() * size_of::<u64>()
            + self.labels.capacity() * size_of::<u32>()
            + self.minpos.capacity() * size_of::<u32>()
            + self.and_buf.capacity() * size_of::<u64>()
            + self.dil_buf.capacity() * size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle::{bfs_labels, bfs_labels_conn};

    #[test]
    fn matches_oracle_on_tiny_shapes() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
            "#..#\n....\n#..#\n",
            "..#..\n##.##\n",
            "##.##\n..#..\n",
        ] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    propagate_labels_conn(&img, conn),
                    bfs_labels_conn(&img, conn),
                    "conn={conn:?} art:\n{art}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 40, 17).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    propagate_labels_conn(&img, conn),
                    bfs_labels_conn(&img, conn),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_word_boundary_widths() {
        for cols in [63usize, 64, 65, 127, 128, 130] {
            for density in [0.1, 0.5, 0.9] {
                let img = gen::uniform_random(37, cols, density, cols as u64);
                for conn in [Connectivity::Four, Connectivity::Eight] {
                    assert_eq!(
                        propagate_labels_conn(&img, conn),
                        bfs_labels_conn(&img, conn),
                        "cols={cols} density={density} conn={conn:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_degenerate_shapes() {
        for art in ["#", "#.##.#", "#\n#\n.\n#\n"] {
            let img = Bitmap::from_art(art);
            assert_eq!(propagate_labels(&img), bfs_labels(&img), "art {art:?}");
        }
        let single_row = gen::uniform_random(1, 200, 0.5, 9);
        assert_eq!(propagate_labels(&single_row), bfs_labels(&single_row));
        let single_col = gen::uniform_random(200, 1, 0.5, 9);
        assert_eq!(propagate_labels(&single_col), bfs_labels(&single_col));
    }

    #[test]
    fn adversarial_families_converge_in_few_rounds() {
        // Hooking + flattening must make the pathological families cheap in
        // *rounds* (the plain-propagation cost would be Θ(path)): the spiral,
        // serpentine, and hilbert geodesics at n = 64 are hundreds to
        // thousands of runs long, yet the fixpoint arrives in well under
        // log²-ish round counts.
        let mut labeler = PropagateLabeler::new();
        let mut out = LabelGrid::new_background(1, 1);
        for name in ["spiral", "serpentine", "hilbert"] {
            let img = gen::by_name(name, 64, 1).unwrap();
            labeler.label_into(&img, Connectivity::Four, &mut out);
            assert_eq!(out, bfs_labels(&img), "{name}");
            assert!(
                labeler.last_iterations() <= 32,
                "{name}: {} rounds for a 64x64 frame",
                labeler.last_iterations()
            );
            assert!(labeler.last_reduction_passes() >= 1, "{name}");
        }
    }

    #[test]
    fn reused_labeler_leaves_no_stale_state() {
        let mut labeler = PropagateLabeler::new();
        let mut grid = LabelGrid::new_background(1, 1);
        let big = gen::uniform_random(80, 80, 0.6, 1);
        labeler.label_into(&big, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&big));
        let small = Bitmap::from_art("#.#\n###\n");
        labeler.label_into(&small, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&small));
        labeler.label_into(&big, Connectivity::Eight, &mut grid);
        assert_eq!(grid, bfs_labels_conn(&big, Connectivity::Eight));
    }

    #[test]
    fn component_count_matches_labels() {
        for name in ["random50", "checker", "maze", "antidiag", "empty", "full"] {
            let img = gen::by_name(name, 32, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    PropagateLabeler::new().count_components(&img, conn),
                    bfs_labels_conn(&img, conn).component_count(),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn eight_connectivity_bridges_only_diagonals_in_reach() {
        let touch = Bitmap::from_art("##..\n..##\n");
        let mut lab = PropagateLabeler::new();
        assert_eq!(lab.count_components(&touch, Connectivity::Four), 2);
        assert_eq!(lab.count_components(&touch, Connectivity::Eight), 1);
        let gap = Bitmap::from_art("##...\n...##\n");
        assert_eq!(lab.count_components(&gap, Connectivity::Four), 2);
        assert_eq!(lab.count_components(&gap, Connectivity::Eight), 2);
    }

    #[test]
    fn iteration_counters_report_the_fixpoint_proof() {
        // Even an empty frame runs (and counts) the one round that proves
        // convergence; a two-row ladder needs exactly one more.
        let mut lab = PropagateLabeler::new();
        let mut out = LabelGrid::new_background(1, 1);
        let empty = gen::by_name("empty", 16, 0).unwrap();
        lab.label_into(&empty, Connectivity::Four, &mut out);
        assert_eq!(lab.last_iterations(), 1);
        assert_eq!(lab.last_reduction_passes(), 0);
        let ladder = Bitmap::from_art("###\n###\n");
        lab.label_into(&ladder, Connectivity::Four, &mut out);
        assert_eq!(out, bfs_labels(&ladder));
        assert_eq!(lab.last_iterations(), 2);
        assert!(lab.last_reduction_passes() >= 1);
    }
}
