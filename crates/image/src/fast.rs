//! Word-parallel run-based connected-component labeling.
//!
//! This is the workspace's *fast sequential engine*: the labeler every
//! differential suite and sweep compares against, and the host-side
//! counterpart the SLAP simulation is benchmarked against. It produces
//! labelings **bit-identical** to [`crate::oracle::bfs_labels_conn`] — each
//! component labeled with the minimum column-major position
//! (`col * rows + row`) over its pixels — at a fraction of the cost:
//!
//! * **coarse-to-fine tiles** — each word × 2-row tile is classified before
//!   any bit is scanned (the block-first strategy of Chen et al.,
//!   arXiv:1712.09789, and Gupta et al., arXiv:1606.05973): *all-background*
//!   tiles are skipped outright, *all-interior* continuation tiles resolve
//!   without touching the run table or the union–find, and only
//!   *boundary* tiles go through the bit-scan path (see [`TileStats`]);
//! * **no per-pixel probing** — maximal horizontal runs are extracted
//!   straight from the packed row words with `trailing_zeros` scans, so a
//!   background word costs one test and a `k`-pixel run costs `O(1 + k/64)`;
//! * **branchless run location** — the 4-connectivity merge finds the run
//!   containing an adjacency segment by *popcount over per-row run-start
//!   masks* instead of walking cursors over the run table, so the hot merge
//!   loop performs no data-dependent pointer chasing outside the union–find
//!   itself;
//! * **one unified 8-connectivity kernel** — the diagonal merge is the same
//!   word-level dilated-AND sweep ([`crate::bitmap::for_each_diagonal_pair`])
//!   used by strip seams, tile seams, the out-of-core band merge, and the
//!   streaming engine; the retired two-pointer join survives only as a
//!   test-only reference;
//! * **two-pass union–find over the run universe** — union by minimum run
//!   index, path halving, and per-root minimum-position maintenance;
//! * **bulk output** — labels are written a run at a time with slice fills,
//!   not per pixel.
//!
//! On `x86_64` hosts the row kernel is compiled twice and dispatched at
//! runtime: a baseline build, and a `popcnt`/`bmi1`/`bmi2` build for the
//! popcount-heavy merge indexing (the portable-binary alternative to a
//! global `-C target-cpu` bump).
//!
//! The run universe here is the *horizontal* transpose of the vertical-run
//! refinement the simulator uses (`slap_cc::runs`): both exploit that a
//! scan line meets each component in a handful of maximal runs.
//!
//! [`FastLabeler`] keeps every scratch array between calls, so labeling a
//! stream of images allocates only when an image exceeds all previous highs.

use crate::bitmap::{for_each_diagonal_pair_at, Bitmap};
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;

pub mod ooc;
pub mod parallel;
pub mod propagate;
pub mod tiled;

pub use ooc::{label_out_of_core, OocRun, OocStats, OutOfCoreLabeler};
pub use parallel::{parallel_labels, parallel_labels_conn, ParallelLabeler};
pub use propagate::{propagate_labels, propagate_labels_conn, PropagateLabeler};
pub use tiled::{tiled_labels, tiled_labels_conn, SeamLevel, TiledLabeler};

/// Labels `img` under 4-connectivity. Convenience wrapper allocating a fresh
/// grid and labeler; hot loops should hold a [`FastLabeler`] instead.
pub fn fast_labels(img: &Bitmap) -> LabelGrid {
    fast_labels_conn(img, Connectivity::Four)
}

/// Labels `img` under an arbitrary adjacency convention. Output is
/// bit-identical to [`crate::oracle::bfs_labels_conn`].
pub fn fast_labels_conn(img: &Bitmap, conn: Connectivity) -> LabelGrid {
    let mut out = LabelGrid::new_background(img.rows(), img.cols());
    FastLabeler::new().label_into(img, conn, &mut out);
    out
}

/// Counts connected components without materializing a label grid.
pub fn fast_component_count(img: &Bitmap, conn: Connectivity) -> usize {
    FastLabeler::new().count_components(img, conn)
}

/// Coarse word × 2-row tile classification counts from the most recent
/// build — the block-based first pass of the coarse-to-fine scan.
///
/// Every scanned row pairs each of its words with the word directly above
/// (the first row of a scan pairs with an implicit empty row), so a
/// full-frame build classifies exactly `words_per_row × rows` tiles and
/// `background + interior + boundary == total` always holds. A ragged tail
/// word (width not a multiple of 64) is never *interior* — its padding bits
/// are background by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Tiles with no pixel in either row: skipped outright.
    pub background: u64,
    /// Tiles solid in both rows: the open run continues, and — under
    /// 4-connectivity, once the run is linked to the row above — the tile
    /// resolves with no run-table or union–find access at all.
    pub interior: u64,
    /// Mixed tiles, resolved by the run-level bit-scan path.
    pub boundary: u64,
}

impl TileStats {
    /// Total tiles classified (`background + interior + boundary`).
    pub fn total(&self) -> u64 {
        self.background + self.interior + self.boundary
    }

    /// Accumulates another build's counts (worker aggregation in the
    /// strip-parallel and tiled engines).
    pub fn accumulate(&mut self, other: TileStats) {
        self.background += other.background;
        self.interior += other.interior;
        self.boundary += other.boundary;
    }
}

/// Reusable word-parallel labeler (see the module docs for the algorithm).
///
/// All scratch storage — the run table, the union–find arrays — lives in the
/// struct and is recycled across calls.
#[derive(Debug, Default)]
pub struct FastLabeler {
    /// Bounds of run `k`, packed `start << 32 | end` (both inclusive
    /// columns) so extraction pushes one word per run. A run still crossing
    /// the current word edge carries a provisional all-ones end until its
    /// closing word patches it.
    runs: Vec<u64>,
    /// Index of the first run of each row, plus one trailing sentinel
    /// (`row_runs[r]..row_runs[r + 1]` are row `r`'s runs).
    row_runs: Vec<u32>,
    /// Union–find node per run, packed `min_pos << 32 | parent` so a find or
    /// link touches one cache line per node instead of two.
    ///
    /// `min_pos` is the minimum column-major position over the set (valid at
    /// roots, propagated downward by the output sweep). Linking is by
    /// *minimum run index* (the smaller-indexed root survives), so every
    /// parent pointer aims at a smaller index and one ascending sweep
    /// flattens the whole forest.
    node: Vec<u64>,
    /// Scratch words for the 8-connectivity merge: `row[r] & dilate(row[r-1])`.
    and_buf: Vec<u64>,
    /// Masked copies of the current/previous row's words restricted to a
    /// column window — scratch for [`FastLabeler::build_runs_window`].
    win_cur: Vec<u64>,
    win_prev: Vec<u64>,
    /// Per-word run-start masks of the current/previous row (swapped each
    /// row) — the 4-connectivity merge locates runs by popcount over these
    /// instead of walking cursors over the run table.
    starts_cur: Vec<u64>,
    starts_prev: Vec<u64>,
    /// Root count of the most recent call, folded into the output sweep (so
    /// [`FastLabeler::last_components`] is O(1), never a node-arena rescan).
    components: usize,
    /// Tile classification counts of the most recent build.
    tiles: TileStats,
}

/// Mask selecting the high half of a packed word — the `min_pos` half of a
/// union–find node, and equally the `start` half of a packed run.
const MIN_HALF: u64 = 0xffff_ffff_0000_0000;

/// Find with path halving over the packed nodes (the parent lives in the
/// low half; halving writes preserve the `min_pos` half).
#[inline]
fn find_in(node: &mut [u64], mut x: u32) -> u32 {
    // SAFETY of the unchecked accesses: every index chased is a parent
    // pointer, and parents always hold valid (equal-or-smaller) run indices.
    debug_assert!((x as usize) < node.len());
    loop {
        let p = unsafe { *node.get_unchecked(x as usize) } as u32;
        if p == x {
            return x;
        }
        let g = unsafe { *node.get_unchecked(p as usize) } as u32;
        if g != p {
            let n = unsafe { node.get_unchecked_mut(x as usize) };
            *n = (*n & MIN_HALF) | g as u64;
        }
        x = g;
    }
}

/// Links two roots, the smaller index surviving (so parent pointers always
/// aim at smaller indices), and keeps the smaller minimum position at the
/// surviving root; returns it. Idempotent when `ra == rb`.
#[inline]
fn link_roots(node: &mut [u64], ra: u32, rb: u32) -> u32 {
    debug_assert!((ra as usize) < node.len() && (rb as usize) < node.len());
    let (hi, lo) = if ra < rb { (ra, rb) } else { (rb, ra) };
    // SAFETY: callers pass run indices of already-pushed runs.
    unsafe {
        let m = (*node.get_unchecked(ra as usize) & MIN_HALF)
            .min(*node.get_unchecked(rb as usize) & MIN_HALF);
        let nl = node.get_unchecked_mut(lo as usize);
        *nl = (*nl & MIN_HALF) | hi as u64;
        *node.get_unchecked_mut(hi as usize) = m | hi as u64;
    }
    hi
}

/// Patches the inclusive end column of the most recently pushed run (runs
/// crossing a word edge are pushed with a provisional all-ones end).
#[inline]
fn close_last_run(runs: &mut [u64], end: u64) {
    let last = runs.len() - 1;
    runs[last] = (runs[last] & MIN_HALF) | end;
}

/// Geometry of one row scan, bundled so the multiversioned kernel keeps a
/// small signature.
#[derive(Clone, Copy)]
struct RowGeom {
    /// Valid bit count of the row's words.
    bits: usize,
    /// Absolute column of bit 0 (word-aligned window offset; 0 full-width).
    col_base: u64,
    /// This row's index, as the row term of column-major positions.
    row: u64,
    /// Total image rows, as the column stride of column-major positions.
    rows: u64,
    /// First run index of the previous row.
    prev_lo: u32,
    /// First run index of this row (== one past the previous row's last).
    prev_hi: u32,
}

/// The labeler's arenas split into disjoint borrows for one row scan.
struct RowScan<'a> {
    runs: &'a mut Vec<u64>,
    node: &'a mut Vec<u64>,
    /// Run-start masks (4-connectivity only; may be empty otherwise).
    starts_cur: &'a mut [u64],
    starts_prev: &'a [u64],
    /// Dilated-AND scratch (8-connectivity only).
    and_buf: &'a mut Vec<u64>,
    tiles: &'a mut TileStats,
}

/// Whether the `popcnt`/`bmi1`/`bmi2` kernel build may run on this host.
/// Detection results are cached by the standard library.
#[inline]
fn hw_scan_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("popcnt")
            && std::is_x86_feature_detected!("bmi1")
            && std::is_x86_feature_detected!("bmi2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dispatches one row scan to the hardware-feature build when available
/// (`hw` from [`hw_scan_available`]), else the baseline build.
#[inline]
fn scan_row<const FOUR: bool>(hw: bool, cur: &[u64], prev: &[u64], g: RowGeom, s: RowScan<'_>) {
    #[cfg(target_arch = "x86_64")]
    {
        if hw {
            // SAFETY: `hw` is true only when popcnt/bmi1/bmi2 were detected
            // at runtime, so the target-feature build is valid on this CPU.
            unsafe { scan_row_hw::<FOUR>(cur, prev, g, s) };
            return;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = hw;
    scan_row_impl::<FOUR>(cur, prev, g, s);
}

/// The row kernel compiled with the hardware bit-manipulation features the
/// popcount merge indexing leans on. Must only be called after runtime
/// detection (see [`scan_row`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt,bmi1,bmi2")]
unsafe fn scan_row_hw<const FOUR: bool>(cur: &[u64], prev: &[u64], g: RowGeom, s: RowScan<'_>) {
    scan_row_impl::<FOUR>(cur, prev, g, s);
}

/// One row of the fused coarse-to-fine scan: word × 2-row tile
/// classification, run extraction, and the vertical merge in a single pass
/// over the packed words.
///
/// `cur` is the row's words (masked to `g.bits`), `prev` the row above (or
/// empty on a scan's first row, which then only extracts). Under
/// 4-connectivity (`FOUR`) the merge is fused into the word loop: each
/// maximal segment of `cur & prev` lies in exactly one run of each row, and
/// the two run indices are recovered *branchlessly* as popcounts of the
/// run-start masks at or left of the segment start — no cursor walks over
/// the run table. Under 8-connectivity the loop instead stages
/// `cur & dilate(prev)` words and the shared diagonal-pair sweep
/// ([`for_each_diagonal_pair_at`]) runs once the row's bounds are final.
///
/// Merge links always aim at the previous row (a current-row run is still a
/// singleton root when first linked), so each adjacency pair costs one find
/// on the previous-row side plus one link, with the current run's root
/// cached across its consecutive pairs.
#[inline(always)]
fn scan_row_impl<const FOUR: bool>(cur: &[u64], prev: &[u64], g: RowGeom, s: RowScan<'_>) {
    let RowScan {
        runs,
        node,
        starts_cur,
        starts_prev,
        and_buf,
        tiles,
    } = s;
    let nw = cur.len();
    let merge = !prev.is_empty();
    debug_assert!(!merge || prev.len() == nw);
    debug_assert!(!FOUR || (starts_cur.len() == nw && starts_prev.len() == nw));
    if !FOUR {
        and_buf.clear();
        and_buf.reserve(nw);
    }
    let rows = g.rows;
    let (prev_lo, prev_hi) = (g.prev_lo, g.prev_hi);
    let mut open = false; // the last pushed run continues into this word
    let mut and_carry = 0u64; // bit 63 of the previous word's AND (4-conn)
    let mut dil_carry = 0u64; // bit 63 of the previous `prev` word (8-conn)
    let mut cur_cum = 0u32; // this row's runs started in earlier words
    let mut prev_cum = 0u32; // previous row's runs started in earlier words
    let mut last_c = u32::MAX; // run whose set root is cached in `root`
    let mut root = 0u32;
    for wi in 0..nw {
        let w = cur[wi];
        let pw = if merge { prev[wi] } else { 0 };
        // Coarse first pass: classify the word × 2-row tile before scanning
        // any bit. All-background tiles are skipped outright; all-interior
        // continuation tiles resolve with no run-table or union–find access.
        if w | pw == 0 {
            tiles.background += 1;
            if open {
                close_last_run(runs, g.col_base + (wi as u64) * 64 - 1);
                open = false;
            }
            if FOUR {
                starts_cur[wi] = 0;
                and_carry = 0;
                // `pw == 0` implies `starts_prev[wi] == 0`: prev_cum holds.
            } else {
                and_buf.push(0);
                dil_carry = 0;
            }
            continue;
        }
        let solid = w & pw == !0u64;
        if solid {
            tiles.interior += 1;
            if open && (!FOUR || and_carry != 0) {
                // All-interior continuation: the open run spans this word
                // and is already linked to the row above (the AND carry),
                // so under 4-connectivity nothing is read or written at
                // all. Under 8-connectivity the run table is likewise
                // untouched; the diagonal sweep crosses the solid AND word
                // in O(1).
                if FOUR {
                    starts_cur[wi] = 0;
                    prev_cum += starts_prev[wi].count_ones();
                } else {
                    and_buf.push(!0u64);
                    dil_carry = 1;
                }
                continue;
            }
        } else {
            tiles.boundary += 1;
        }
        // Boundary path: bit-scan extraction and the run-level merge.
        let base = g.col_base + (wi as u64) * 64;
        let starts_w = w & !((w << 1) | (open as u64));
        if FOUR {
            starts_cur[wi] = starts_w;
        }
        let mut x = w;
        if open {
            if x & 1 == 1 {
                let ones = (!x).trailing_zeros();
                if ones == 64 {
                    x = 0; // the run spans this whole word too
                } else {
                    close_last_run(runs, base + u64::from(ones) - 1);
                    open = false;
                    x &= x.wrapping_add(1); // clear the trailing ones
                }
            } else {
                close_last_run(runs, base - 1);
                open = false;
            }
        }
        while x != 0 {
            // Adding the lowest set bit carries through the lowest run,
            // clearing it and depositing a bit just past its end — one add
            // yields both the cleared word and the run's end position.
            let lsb = x & x.wrapping_neg();
            let t = x.wrapping_add(lsb);
            let start = base + u64::from(lsb.trailing_zeros());
            node.push(((start * rows + g.row) << 32) | runs.len() as u64);
            if t == 0 {
                // The run reaches bit 63: provisional end, patched at close.
                runs.push((start << 32) | 0xffff_ffff);
                open = true;
                break;
            }
            runs.push((start << 32) | (base + u64::from(t.trailing_zeros()) - 1));
            x &= t;
        }
        if FOUR {
            if merge {
                // Word-parallel 4-adjacency: each maximal segment of
                // `cur & prev` lies inside exactly one run of each row, and
                // every 4-adjacent run pair contains at least one segment —
                // the segment *starts* enumerate precisely the required
                // unions.
                let a = w & pw;
                let seg = a & !((a << 1) | and_carry);
                and_carry = a >> 63;
                let psw = starts_prev[wi];
                let mut sbits = seg;
                while sbits != 0 {
                    let sp = sbits.trailing_zeros();
                    sbits &= sbits - 1;
                    // Locate the runs containing column `sp` branchlessly:
                    // count run starts at or left of it (both rows have a
                    // pixel at `sp`, so both containing runs exist).
                    let below = !0u64 >> (63 - sp);
                    let c = prev_hi + cur_cum + (starts_w & below).count_ones() - 1;
                    let q = prev_lo + prev_cum + (psw & below).count_ones() - 1;
                    if c != last_c {
                        last_c = c;
                        root = c; // a fresh run is still a singleton root
                    }
                    let rq = find_in(node, q);
                    root = link_roots(node, root, rq);
                }
                prev_cum += psw.count_ones();
            }
            cur_cum += starts_w.count_ones();
        } else {
            // Stage the dilated-AND word for the diagonal sweep: bit `i`
            // set iff this row has a pixel at `i` and the row above one
            // within horizontal reach 1 (carries cross word edges).
            let a8 = if merge {
                let next_lo = if wi + 1 < nw { prev[wi + 1] & 1 } else { 0 };
                let d = pw | (pw << 1) | dil_carry | (pw >> 1) | (next_lo << 63);
                dil_carry = pw >> 63;
                w & d
            } else {
                0
            };
            and_buf.push(a8);
        }
    }
    if open {
        close_last_run(runs, g.col_base + g.bits as u64 - 1);
    }
    if !FOUR && merge {
        // The unified word-level 8-connectivity kernel — the same sweep as
        // strip seams, tile seams, the out-of-core band merge, and the
        // streaming engine (the per-site two-pointer join it replaced
        // survives as a test-only reference).
        let (prev_runs, cur_runs) = runs[prev_lo as usize..].split_at((prev_hi - prev_lo) as usize);
        for_each_diagonal_pair_at(
            and_buf,
            g.bits,
            g.col_base,
            cur_runs,
            prev_runs,
            |ci, qi| {
                let c = prev_hi + ci as u32;
                if c != last_c {
                    last_c = c;
                    root = c; // a fresh run is still a singleton root
                }
                let rq = find_in(node, prev_lo + qi as u32);
                root = link_roots(node, root, rq);
            },
        );
    }
}

impl FastLabeler {
    /// Creates a labeler with empty (growable) scratch storage.
    pub fn new() -> Self {
        FastLabeler::default()
    }

    /// Pass 1: extract every row's runs and union vertically adjacent ones,
    /// in one fused coarse-to-fine sweep — tiles are classified first, and
    /// each surviving run is merged with the previous row the moment the
    /// word scan reports it. Returns the total run count.
    fn build_runs(&mut self, img: &Bitmap, conn: Connectivity) -> usize {
        self.build_runs_rows(img, conn, 0, img.rows())
    }

    /// Row-range variant of the run-building pass, the unit of work one
    /// strip-parallel worker performs: rows `row_lo..row_hi` of `img` are
    /// scanned in isolation (no merge against row `row_lo - 1`; the seam is
    /// stitched later by [`parallel`]). Run bounds, `row_runs`, and
    /// union–find parents are *local* to the range (indices start at 0), but
    /// each run's `min_pos` uses the **global** column-major position, so a
    /// later seam union combines minima that are already in the final label
    /// space. Returns the range's run count.
    fn build_runs_rows(
        &mut self,
        img: &Bitmap,
        conn: Connectivity,
        row_lo: usize,
        row_hi: usize,
    ) -> usize {
        let rows = img.rows() as u64;
        self.runs.clear();
        self.row_runs.clear();
        self.node.clear();
        self.tiles = TileStats::default();
        self.row_runs.reserve(row_hi - row_lo + 1);
        let nw = img.words_per_row();
        let four = conn == Connectivity::Four;
        if four {
            self.starts_cur.clear();
            self.starts_cur.resize(nw, 0);
            self.starts_prev.clear();
            self.starts_prev.resize(nw, 0);
        }
        let hw = hw_scan_available();
        let mut prev_lo = 0u32;
        for r in row_lo..row_hi {
            let prev_hi = u32::try_from(self.runs.len()).expect("run count exceeds u32");
            self.row_runs.push(prev_hi);
            if four {
                std::mem::swap(&mut self.starts_cur, &mut self.starts_prev);
            }
            let prev: &[u64] = if r > row_lo {
                img.row_words(r - 1)
            } else {
                &[]
            };
            let g = RowGeom {
                bits: img.cols(),
                col_base: 0,
                row: r as u64,
                rows,
                prev_lo,
                prev_hi,
            };
            let FastLabeler {
                runs,
                node,
                and_buf,
                starts_cur,
                starts_prev,
                tiles,
                ..
            } = self;
            let scan = RowScan {
                runs,
                node,
                starts_cur,
                starts_prev,
                and_buf,
                tiles,
            };
            if four {
                scan_row::<true>(hw, img.row_words(r), prev, g, scan);
            } else {
                scan_row::<false>(hw, img.row_words(r), prev, g, scan);
            }
            prev_lo = prev_hi;
        }
        self.row_runs
            .push(u32::try_from(self.runs.len()).expect("run count exceeds u32"));
        self.runs.len()
    }

    /// Rectangular-window variant of [`FastLabeler::build_runs_rows`]: rows
    /// `row_lo..row_hi` restricted to columns `col_lo..col_hi` — the unit of
    /// work one *tile* worker performs ([`tiled`]). Each row's words are
    /// copied into a masked window buffer, so the coarse classification,
    /// extraction, and vertical merge reuse the exact word-level kernel of
    /// the full-width path; run bounds and minima stay **global** (absolute
    /// columns, global column-major positions) while run indices and
    /// union–find parents are local to the window. Adjacency crossing the
    /// window's left/right edge is deliberately not resolved here — that is
    /// the tile stitcher's seam pass. Returns the window's run count.
    fn build_runs_window(
        &mut self,
        img: &Bitmap,
        conn: Connectivity,
        row_lo: usize,
        row_hi: usize,
        col_lo: usize,
        col_hi: usize,
    ) -> usize {
        debug_assert!(col_lo < col_hi && col_hi <= img.cols());
        if col_lo == 0 && col_hi == img.cols() {
            // Full-width window: the row-range path already does exactly this
            // without the masked copies.
            return self.build_runs_rows(img, conn, row_lo, row_hi);
        }
        let rows = img.rows() as u64;
        self.runs.clear();
        self.row_runs.clear();
        self.node.clear();
        self.tiles = TileStats::default();
        self.row_runs.reserve(row_hi - row_lo + 1);
        let (wlo, whi) = (col_lo / 64, (col_hi - 1) / 64 + 1);
        let nw = whi - wlo;
        // Window positions are relative to word `wlo`; `col_base` maps them
        // back to absolute columns.
        let bits = col_hi - wlo * 64;
        let col_base = (wlo * 64) as u64;
        let mask_lo = !0u64 << (col_lo % 64);
        let mask_hi = if col_hi.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (col_hi % 64)) - 1
        };
        let four = conn == Connectivity::Four;
        if four {
            self.starts_cur.clear();
            self.starts_cur.resize(nw, 0);
            self.starts_prev.clear();
            self.starts_prev.resize(nw, 0);
        }
        let hw = hw_scan_available();
        self.win_prev.clear();
        let mut prev_lo = 0u32;
        for r in row_lo..row_hi {
            let prev_hi = u32::try_from(self.runs.len()).expect("run count exceeds u32");
            self.row_runs.push(prev_hi);
            // Masked copy of this row's window words.
            self.win_cur.clear();
            self.win_cur.extend_from_slice(&img.row_words(r)[wlo..whi]);
            self.win_cur[0] &= mask_lo;
            let last = self.win_cur.len() - 1;
            self.win_cur[last] &= mask_hi;
            if four {
                std::mem::swap(&mut self.starts_cur, &mut self.starts_prev);
            }
            let g = RowGeom {
                bits,
                col_base,
                row: r as u64,
                rows,
                prev_lo,
                prev_hi,
            };
            let FastLabeler {
                runs,
                node,
                and_buf,
                win_cur,
                win_prev,
                starts_cur,
                starts_prev,
                tiles,
                ..
            } = self;
            let prev: &[u64] = if r > row_lo { win_prev } else { &[] };
            let scan = RowScan {
                runs,
                node,
                starts_cur,
                starts_prev,
                and_buf,
                tiles,
            };
            if four {
                scan_row::<true>(hw, win_cur, prev, g, scan);
            } else {
                scan_row::<false>(hw, win_cur, prev, g, scan);
            }
            std::mem::swap(&mut self.win_cur, &mut self.win_prev);
            prev_lo = prev_hi;
        }
        self.row_runs
            .push(u32::try_from(self.runs.len()).expect("run count exceeds u32"));
        self.runs.len()
    }

    /// Labels `img` into `out` (re-dimensioned; every cell is written exactly
    /// once — runs with their component label, gaps with background). With
    /// reused storage of sufficient capacity the call performs no heap
    /// allocation.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) {
        let rows = img.rows();
        self.build_runs(img, conn);
        out.reset_dims(rows, img.cols());
        // Pass 2, fused with the flattening sweep. Runs are visited in
        // ascending index order (row_runs is ascending) and every parent
        // points to a smaller index, so when run `k` is visited its parent
        // `p` is already flattened: `node[p]` holds the root in its parent
        // half and the component minimum in its `min_pos` half — whether `p`
        // is the root itself or not — and copying it down both flattens `k`
        // and delivers its label.
        let mut components = 0usize;
        for r in 0..rows {
            let (lo, hi) = (self.row_runs[r] as usize, self.row_runs[r + 1] as usize);
            let row = out.row_mut(r);
            // One vectorized background fill per row, then label fills only.
            row.fill(LabelGrid::BACKGROUND);
            for k in lo..hi {
                // Branchless flatten: for a root, `p == k` and the copy is a
                // no-op self-assignment.
                let p = self.node[k] as u32;
                components += (p as usize == k) as usize;
                // SAFETY: parents always point at equal-or-smaller run
                // indices (link_roots invariant), so `p <= k < node.len()`.
                let np = unsafe { *self.node.get_unchecked(p as usize) };
                self.node[k] = np;
                let label = (np >> 32) as u32;
                let sb = self.runs[k];
                let (a, b) = ((sb >> 32) as usize, (sb & 0xffff_ffff) as usize);
                // SAFETY: extraction clamps every run of row `r` to
                // `0 <= a <= b < cols == row.len()`.
                unsafe {
                    // Most runs are a pixel or two: two unconditional stores
                    // cover them, the fill only handles longer spans.
                    *row.get_unchecked_mut(a) = label;
                    *row.get_unchecked_mut(b) = label;
                    if b - a > 1 {
                        row.get_unchecked_mut(a + 1..b).fill(label);
                    }
                }
            }
        }
        self.components = components;
    }

    /// Counts components (number of union–find roots) without writing any
    /// labels.
    pub fn count_components(&mut self, img: &Bitmap, conn: Connectivity) -> usize {
        self.build_runs(img, conn);
        self.components = self
            .node
            .iter()
            .enumerate()
            .filter(|&(k, &n)| n as u32 == k as u32)
            .count();
        self.components
    }

    /// Number of runs extracted by the most recent labeling call.
    pub fn last_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of components found by the most recent labeling call. O(1):
    /// the count is folded into the labeling sweep itself.
    pub fn last_components(&self) -> usize {
        self.components
    }

    /// Tile classification counts of the most recent labeling call (see
    /// [`TileStats`]).
    pub fn last_tile_stats(&self) -> TileStats {
        self.tiles
    }

    /// Total bytes of scratch capacity currently reserved — the session's
    /// high-water mark. Steady-state reuse keeps this constant; tests assert
    /// warm calls perform zero arena reallocations by watching it.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.runs.capacity() * size_of::<u64>()
            + self.row_runs.capacity() * size_of::<u32>()
            + self.node.capacity() * size_of::<u64>()
            + self.and_buf.capacity() * size_of::<u64>()
            + self.win_cur.capacity() * size_of::<u64>()
            + self.win_prev.capacity() * size_of::<u64>()
            + self.starts_cur.capacity() * size_of::<u64>()
            + self.starts_prev.capacity() * size_of::<u64>()
    }
}

#[cfg(test)]
impl FastLabeler {
    /// The retired pre-coarse-to-fine build, kept verbatim as the reference
    /// the differential battery compares arenas against: exact presizing,
    /// whole-row extraction, the cursor-walk 4-connectivity merge, and the
    /// two-pointer diagonal join with widened reach that the word-level
    /// dilated-AND sweep replaced. Produces `runs`/`row_runs`/`node` arrays
    /// the production [`FastLabeler::build_runs`] must match **word for
    /// word** — same run order, same union order, same packed minima.
    fn build_runs_reference(&mut self, img: &Bitmap, conn: Connectivity) -> usize {
        use crate::bitmap::for_each_run_in_words;
        let rows_u64 = img.rows() as u64;
        self.runs.clear();
        self.row_runs.clear();
        self.node.clear();
        let total_runs: usize = (0..img.rows()).map(|r| img.count_row_runs(r)).sum();
        self.runs.reserve(total_runs);
        self.node.reserve(total_runs);
        self.row_runs.reserve(img.rows() + 1);
        // Under 8-connectivity a run also touches the previous row's runs one
        // column diagonally past each end.
        let reach = match conn {
            Connectivity::Four => 0u64,
            Connectivity::Eight => 1u64,
        };
        let mut prev_lo = 0usize;
        for r in 0..img.rows() {
            let prev_hi = self.runs.len();
            self.row_runs
                .push(u32::try_from(prev_hi).expect("run count exceeds u32"));
            let runs = &mut self.runs;
            img.for_each_row_run(r, |a, b| {
                runs.push(((a as u64) << 32) | b as u64);
            });
            let cur_hi = self.runs.len();
            let r_u64 = r as u64;
            {
                let FastLabeler { runs, node, .. } = self;
                node.extend(runs[prev_hi..cur_hi].iter().enumerate().map(|(off, &sb)| {
                    let min = (sb >> 32) * rows_u64 + r_u64;
                    (min << 32) | (prev_hi + off) as u64
                }));
            }
            match conn {
                Connectivity::Four if r > 0 => {
                    // Word-parallel adjacency with cursor walks over the run
                    // table (the production path recovers the same indices
                    // by popcount instead).
                    let FastLabeler {
                        runs,
                        node,
                        and_buf,
                        ..
                    } = self;
                    and_buf.clear();
                    and_buf.extend(
                        img.row_words(r)
                            .iter()
                            .zip(img.row_words(r - 1))
                            .map(|(&a, &b)| a & b),
                    );
                    let mut c = prev_hi;
                    let mut q = prev_lo;
                    let mut root = u32::MAX;
                    for_each_run_in_words(and_buf, img.cols(), |s, _| {
                        let s = s as u64;
                        if root == u32::MAX || (runs[c] & 0xffff_ffff) < s {
                            while (runs[c] & 0xffff_ffff) < s {
                                c += 1;
                            }
                            root = c as u32;
                        }
                        while (runs[q] & 0xffff_ffff) < s {
                            q += 1;
                        }
                        let rq = find_in(node, q as u32);
                        root = link_roots(node, root, rq);
                    });
                }
                _ => {
                    // The retired two-pointer diagonal join: column-sorted
                    // run lists, widened bounds, and the p = q - 1 backstep
                    // so a prev run shared by two adjacent lower runs is
                    // reconsidered.
                    let FastLabeler { runs, node, .. } = self;
                    let (prev, cur) = runs[prev_lo..].split_at(prev_hi - prev_lo);
                    let mut p = 0usize;
                    for (off, &sb) in cur.iter().enumerate() {
                        let aw = (sb >> 32).saturating_sub(reach);
                        let bw = (sb & 0xffff_ffff) + reach;
                        while p < prev.len() && (prev[p] & 0xffff_ffff) < aw {
                            p += 1;
                        }
                        let mut q = p;
                        let mut root = (prev_hi + off) as u32;
                        while q < prev.len() && (prev[q] >> 32) <= bw {
                            let rq = find_in(node, (prev_lo + q) as u32);
                            root = link_roots(node, root, rq);
                            q += 1;
                        }
                        if q > p {
                            p = q - 1;
                        }
                    }
                }
            }
            prev_lo = prev_hi;
        }
        self.row_runs
            .push(u32::try_from(self.runs.len()).expect("run count exceeds u32"));
        self.runs.len()
    }

    /// Snapshot of the three build arenas, for word-for-word comparison.
    fn arena_snapshot(&self) -> (Vec<u64>, Vec<u32>, Vec<u64>) {
        (self.runs.clone(), self.row_runs.clone(), self.node.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle::{bfs_labels, bfs_labels_conn};

    #[test]
    fn matches_oracle_on_tiny_shapes() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
            "#..#\n....\n#..#\n",
        ] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    fast_labels_conn(&img, conn),
                    bfs_labels_conn(&img, conn),
                    "conn={conn:?} art:\n{art}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 40, 17).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    fast_labels_conn(&img, conn),
                    bfs_labels_conn(&img, conn),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_word_boundary_widths() {
        for cols in [63usize, 64, 65, 127, 128, 130] {
            let img = gen::uniform_random(37, cols, 0.5, cols as u64);
            assert_eq!(fast_labels(&img), bfs_labels(&img), "cols={cols}");
        }
    }

    #[test]
    fn matches_oracle_on_degenerate_shapes() {
        for art in ["#", "#.##.#", "#\n#\n.\n#\n"] {
            let img = Bitmap::from_art(art);
            assert_eq!(fast_labels(&img), bfs_labels(&img), "art {art:?}");
        }
        let single_row = gen::uniform_random(1, 200, 0.5, 9);
        assert_eq!(fast_labels(&single_row), bfs_labels(&single_row));
        let single_col = gen::uniform_random(200, 1, 0.5, 9);
        assert_eq!(fast_labels(&single_col), bfs_labels(&single_col));
    }

    #[test]
    fn reused_labeler_leaves_no_stale_state() {
        let mut labeler = FastLabeler::new();
        let mut grid = LabelGrid::new_background(1, 1);
        // Large then small: scratch arrays shrink logically, not physically.
        let big = gen::uniform_random(80, 80, 0.6, 1);
        labeler.label_into(&big, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&big));
        let small = Bitmap::from_art("#.#\n###\n");
        labeler.label_into(&small, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&small));
        labeler.label_into(&big, Connectivity::Eight, &mut grid);
        assert_eq!(grid, bfs_labels_conn(&big, Connectivity::Eight));
    }

    #[test]
    fn component_count_matches_labels() {
        for name in ["random50", "checker", "maze", "antidiag", "empty", "full"] {
            let img = gen::by_name(name, 32, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    fast_component_count(&img, conn),
                    bfs_labels_conn(&img, conn).component_count(),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn eight_connectivity_bridges_only_diagonals_in_reach() {
        // Two runs offset by exactly one column must merge under 8-conn but
        // not 4-conn; offset two must merge under neither.
        let touch = Bitmap::from_art("##..\n..##\n");
        assert_eq!(fast_component_count(&touch, Connectivity::Four), 2);
        assert_eq!(fast_component_count(&touch, Connectivity::Eight), 1);
        let gap = Bitmap::from_art("##...\n...##\n");
        assert_eq!(fast_component_count(&gap, Connectivity::Four), 2);
        assert_eq!(fast_component_count(&gap, Connectivity::Eight), 2);
    }

    /// Asserts the production build and the retired reference build agree
    /// arena for arena — same runs, same row table, same packed union–find
    /// words (so the same unions in the same order, not merely the same
    /// partition).
    fn assert_build_matches_reference(img: &Bitmap, conn: Connectivity, what: &str) {
        let mut prod = FastLabeler::new();
        let mut reference = FastLabeler::new();
        prod.build_runs(img, conn);
        reference.build_runs_reference(img, conn);
        let (pr, prr, pn) = prod.arena_snapshot();
        let (rr, rrr, rn) = reference.arena_snapshot();
        assert_eq!(pr, rr, "run table diverged: {what} conn={conn:?}");
        assert_eq!(prr, rrr, "row table diverged: {what} conn={conn:?}");
        assert_eq!(pn, rn, "union-find arena diverged: {what} conn={conn:?}");
    }

    #[test]
    fn coarse_build_matches_retired_reference_word_for_word() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 48, 23).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_build_matches_reference(&img, conn, name);
            }
        }
        for cols in [63usize, 64, 65, 127, 128, 130] {
            for density in [0.1, 0.5, 0.9] {
                let img = gen::uniform_random(37, cols, density, cols as u64);
                for conn in [Connectivity::Four, Connectivity::Eight] {
                    assert_build_matches_reference(
                        &img,
                        conn,
                        &format!("random cols={cols} density={density}"),
                    );
                }
            }
        }
    }

    #[test]
    fn in_strip_eight_merge_survives_the_seam_regression_fixtures() {
        // The PR 4 seam edge cases, replayed against the in-strip row merge
        // now that it shares the word-level diagonal kernel with the seams:
        // a lower run diagonally bridging two upper runs (the p = q - 1
        // backstep), both orientations, and a long chain of alternating
        // single-diagonal touches.
        for art in [
            "..#..\n##.##\n",
            "##.##\n..#..\n",
            "##.##.##.##\n..#..#..#..\n",
            "..#..#..#..\n##.##.##.##\n",
            // Adjacent lower runs sharing one diagonal upper run.
            "...#...\n##...##\n",
            "##...##\n...#...\n",
        ] {
            let img = Bitmap::from_art(art);
            assert_eq!(
                fast_labels_conn(&img, Connectivity::Eight),
                bfs_labels_conn(&img, Connectivity::Eight),
                "art:\n{art}"
            );
            assert_build_matches_reference(&img, Connectivity::Eight, art);
        }
    }

    #[test]
    fn tile_counters_cover_every_tile_exactly_once() {
        for name in gen::WORKLOADS {
            for (rows, cols) in [(40usize, 63usize), (40, 64), (40, 65), (7, 300)] {
                let img = gen::by_name_dims(name, rows, cols, 17).unwrap();
                for conn in [Connectivity::Four, Connectivity::Eight] {
                    let mut lab = FastLabeler::new();
                    let mut out = LabelGrid::new_background(1, 1);
                    lab.label_into(&img, conn, &mut out);
                    let ts = lab.last_tile_stats();
                    assert_eq!(
                        ts.total(),
                        (img.words_per_row() * img.rows()) as u64,
                        "{name} {rows}x{cols} conn={conn:?} {ts:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn interior_and_background_tiles_are_actually_detected() {
        // A solid frame: every tile except the first row of words is
        // interior (the first row pairs with the implicit empty row above).
        let full = gen::by_name("full", 64, 0).unwrap();
        let mut lab = FastLabeler::new();
        let mut out = LabelGrid::new_background(1, 1);
        lab.label_into(&full, Connectivity::Four, &mut out);
        let ts = lab.last_tile_stats();
        assert_eq!(ts.background, 0);
        assert_eq!(ts.boundary, full.words_per_row() as u64);
        assert_eq!(ts.interior, (full.words_per_row() * 63) as u64);
        // An empty frame: every tile is background.
        let empty = gen::by_name("empty", 64, 0).unwrap();
        lab.label_into(&empty, Connectivity::Four, &mut out);
        let ts = lab.last_tile_stats();
        assert_eq!(ts.background, ts.total());
        // A ragged tail word is never interior: 65 columns of solid rows
        // leave the one-bit tail word classified boundary, not interior.
        let ragged = gen::by_name_dims("full", 8, 65, 0).unwrap();
        lab.label_into(&ragged, Connectivity::Four, &mut out);
        assert_eq!(out, bfs_labels(&ragged));
        let ts = lab.last_tile_stats();
        assert_eq!(ts.interior, 7, "only the full words below row 0");
        assert_eq!(ts.boundary, 2 + 7, "row 0 words + every tail word");
    }

    #[test]
    fn labels_are_min_column_major_positions_not_just_partition() {
        // A U-shape closing on the right: the component's least column-major
        // position sits in the leftmost column.
        let img = Bitmap::from_art(
            "###\n\
             ..#\n\
             ###\n",
        );
        let l = fast_labels(&img);
        for (r, c) in img.iter_ones_colmajor() {
            assert_eq!(l.get(r, c), 0);
        }
    }
}
