//! Word-parallel run-based connected-component labeling.
//!
//! This is the workspace's *fast sequential engine*: the labeler every
//! differential suite and sweep compares against, and the host-side
//! counterpart the SLAP simulation is benchmarked against. It produces
//! labelings **bit-identical** to [`crate::oracle::bfs_labels_conn`] — each
//! component labeled with the minimum column-major position
//! (`col * rows + row`) over its pixels — at a fraction of the cost:
//!
//! * **no per-pixel probing** — maximal horizontal runs are extracted
//!   straight from the packed row words with `trailing_zeros` scans
//!   ([`crate::bitmap::for_each_run_in_words`]), so a background word costs
//!   one test and a `k`-pixel run costs `O(1 + k/64)`;
//! * **two-pass union–find over the run universe** — runs of adjacent rows
//!   are merged with a two-pointer sweep (the standard run-based CCL scheme
//!   of the two-pass literature, e.g. Gupta et al., arXiv:1606.05973, and
//!   He et al.'s run-based variants surveyed in arXiv:1708.08180), with
//!   union by rank, path halving, and per-root minimum-position maintenance;
//! * **bulk output** — labels are written a run at a time with slice fills,
//!   not per pixel.
//!
//! The run universe here is the *horizontal* transpose of the vertical-run
//! refinement the simulator uses (`slap_cc::runs`): both exploit that a
//! scan line meets each component in a handful of maximal runs.
//!
//! [`FastLabeler`] keeps every scratch array between calls, so labeling a
//! stream of images allocates only when an image exceeds all previous highs.

use crate::bitmap::{for_each_run_in_words, Bitmap};
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;

pub mod ooc;
pub mod parallel;
pub mod tiled;

pub use ooc::{label_out_of_core, OocRun, OocStats, OutOfCoreLabeler};
pub use parallel::{parallel_labels, parallel_labels_conn, ParallelLabeler};
pub use tiled::{tiled_labels, tiled_labels_conn, SeamLevel, TiledLabeler};

/// Labels `img` under 4-connectivity. Convenience wrapper allocating a fresh
/// grid and labeler; hot loops should hold a [`FastLabeler`] instead.
pub fn fast_labels(img: &Bitmap) -> LabelGrid {
    fast_labels_conn(img, Connectivity::Four)
}

/// Labels `img` under an arbitrary adjacency convention. Output is
/// bit-identical to [`crate::oracle::bfs_labels_conn`].
pub fn fast_labels_conn(img: &Bitmap, conn: Connectivity) -> LabelGrid {
    let mut out = LabelGrid::new_background(img.rows(), img.cols());
    FastLabeler::new().label_into(img, conn, &mut out);
    out
}

/// Counts connected components without materializing a label grid.
pub fn fast_component_count(img: &Bitmap, conn: Connectivity) -> usize {
    FastLabeler::new().count_components(img, conn)
}

/// Reusable word-parallel labeler (see the module docs for the algorithm).
///
/// All scratch storage — the run table, the union–find arrays — lives in the
/// struct and is recycled across calls.
#[derive(Debug, Default)]
pub struct FastLabeler {
    /// Bounds of run `k`, packed `start << 32 | end` (both inclusive
    /// columns) so extraction pushes one word per run.
    runs: Vec<u64>,
    /// Index of the first run of each row, plus one trailing sentinel
    /// (`row_runs[r]..row_runs[r + 1]` are row `r`'s runs).
    row_runs: Vec<u32>,
    /// Union–find node per run, packed `min_pos << 32 | parent` so a find or
    /// link touches one cache line per node instead of two.
    ///
    /// `min_pos` is the minimum column-major position over the set (valid at
    /// roots, propagated downward by the output sweep). Linking is by
    /// *minimum run index* (the smaller-indexed root survives), so every
    /// parent pointer aims at a smaller index and one ascending sweep
    /// flattens the whole forest.
    node: Vec<u64>,
    /// Scratch words for the 4-connectivity merge: `row[r] & row[r-1]`.
    and_buf: Vec<u64>,
    /// Masked copies of the current/previous row's words restricted to a
    /// column window — scratch for [`FastLabeler::build_runs_window`].
    win_cur: Vec<u64>,
    win_prev: Vec<u64>,
    /// Root count of the most recent call, folded into the output sweep (so
    /// [`FastLabeler::last_components`] is O(1), never a node-arena rescan).
    components: usize,
}

/// Mask selecting the `min_pos` half of a packed union–find node.
const MIN_HALF: u64 = 0xffff_ffff_0000_0000;

/// Find with path halving over the packed nodes (the parent lives in the
/// low half; halving writes preserve the `min_pos` half).
#[inline]
fn find_in(node: &mut [u64], mut x: u32) -> u32 {
    loop {
        let p = node[x as usize] as u32;
        if p == x {
            return x;
        }
        let g = node[p as usize] as u32;
        if g != p {
            node[x as usize] = (node[x as usize] & MIN_HALF) | g as u64;
        }
        x = g;
    }
}

/// Links two roots, the smaller index surviving (so parent pointers always
/// aim at smaller indices), and keeps the smaller minimum position at the
/// surviving root; returns it. Idempotent when `ra == rb`.
#[inline]
fn link_roots(node: &mut [u64], ra: u32, rb: u32) -> u32 {
    let (hi, lo) = if ra < rb { (ra, rb) } else { (rb, ra) };
    let m = (node[ra as usize] & MIN_HALF).min(node[rb as usize] & MIN_HALF);
    node[lo as usize] = (node[lo as usize] & MIN_HALF) | hi as u64;
    node[hi as usize] = m | hi as u64;
    hi
}

impl FastLabeler {
    /// Creates a labeler with empty (growable) scratch storage.
    pub fn new() -> Self {
        FastLabeler::default()
    }

    /// Pass 1: extract every row's runs and union vertically adjacent ones,
    /// in one fused sweep — each run is merged with the previous row the
    /// moment the word scan reports it, while its bounds are still in
    /// registers. Returns the total run count.
    fn build_runs(&mut self, img: &Bitmap, conn: Connectivity) -> usize {
        self.build_runs_rows(img, conn, 0, img.rows())
    }

    /// Row-range variant of the run-building pass, the unit of work one
    /// strip-parallel worker performs: rows `row_lo..row_hi` of `img` are
    /// scanned in isolation (no merge against row `row_lo - 1`; the seam is
    /// stitched later by [`parallel`]). Run bounds, `row_runs`, and
    /// union–find parents are *local* to the range (indices start at 0), but
    /// each run's `min_pos` uses the **global** column-major position, so a
    /// later seam union combines minima that are already in the final label
    /// space. Returns the range's run count.
    fn build_runs_rows(
        &mut self,
        img: &Bitmap,
        conn: Connectivity,
        row_lo: usize,
        row_hi: usize,
    ) -> usize {
        let rows_u32 = img.rows() as u32;
        self.runs.clear();
        self.row_runs.clear();
        self.node.clear();
        // Exact pre-sizing: one popcount pass over the packed words.
        let total_runs: usize = (row_lo..row_hi).map(|r| img.count_row_runs(r)).sum();
        self.runs.reserve(total_runs);
        self.node.reserve(total_runs);
        self.row_runs.reserve(row_hi - row_lo + 1);
        // Under 8-connectivity a run also touches the previous row's runs one
        // column diagonally past each end.
        let reach = match conn {
            Connectivity::Four => 0u64,
            Connectivity::Eight => 1u64,
        };
        let mut prev_lo = 0usize; // first run of the previous row
        for r in row_lo..row_hi {
            let prev_hi = self.runs.len();
            self.row_runs
                .push(u32::try_from(prev_hi).expect("run count exceeds u32"));
            // 1) Extraction: one packed push per run.
            let runs = &mut self.runs;
            img.for_each_row_run(r, |a, b| {
                runs.push(((a as u64) << 32) | b as u64);
            });
            let cur_hi = self.runs.len();
            // 2) Bulk singleton init: identity parents in the low half, each
            // run's least column-major position `start * rows + r` (its
            // leftmost pixel) in the high half.
            let r_u64 = r as u64;
            {
                let FastLabeler { runs, node, .. } = self;
                node.extend(runs[prev_hi..cur_hi].iter().enumerate().map(|(off, &sb)| {
                    let min = (sb >> 32) * rows_u32 as u64 + r_u64;
                    (min << 32) | (prev_hi + off) as u64
                }));
            }
            // 3) Merge with the previous row's runs [prev_lo, prev_hi).
            match conn {
                Connectivity::Four if r > row_lo => {
                    // Word-parallel adjacency: a maximal run of
                    // `row[r] & row[r-1]` lies inside exactly one run of each
                    // row (the AND is a subset of both), and every 4-adjacent
                    // run pair contains at least one such segment — so the
                    // AND words enumerate precisely the required unions,
                    // skipping non-overlapping runs 64 columns per test
                    // instead of comparing bounds pair by pair. Both cursors
                    // only move forward (segments arrive in column order),
                    // and a current-row run is still a singleton root when it
                    // becomes active (links always aim at older runs), so
                    // each segment costs one find on the previous-row side
                    // only.
                    let FastLabeler {
                        runs,
                        node,
                        and_buf,
                        ..
                    } = self;
                    and_buf.clear();
                    and_buf.extend(
                        img.row_words(r)
                            .iter()
                            .zip(img.row_words(r - 1))
                            .map(|(&a, &b)| a & b),
                    );
                    let mut c = prev_hi; // cursor over this row's runs
                    let mut q = prev_lo; // cursor over the previous row's runs
                    let mut root = u32::MAX; // cached root of run `c`'s set
                    for_each_run_in_words(and_buf, img.cols(), |s, _| {
                        let s = s as u64;
                        // Advance to the runs containing column `s`; both
                        // exist because `s` is a set bit of both rows.
                        if root == u32::MAX || (runs[c] & 0xffff_ffff) < s {
                            while (runs[c] & 0xffff_ffff) < s {
                                c += 1;
                            }
                            root = c as u32; // fresh run: its own root
                        }
                        while (runs[q] & 0xffff_ffff) < s {
                            q += 1;
                        }
                        let rq = find_in(node, q as u32);
                        root = link_roots(node, root, rq);
                    });
                }
                _ => {
                    // 8-connectivity (or the first row): two-pointer join of
                    // the column-sorted run lists, with diagonal reach. The
                    // AND trick does not carry over — horizontal dilation can
                    // fuse segments across distinct runs.
                    let FastLabeler { runs, node, .. } = self;
                    let (prev, cur) = runs[prev_lo..].split_at(prev_hi - prev_lo);
                    let mut p = 0usize; // index into prev
                    for (off, &sb) in cur.iter().enumerate() {
                        // Widened bounds; comparisons on the packed halves.
                        let aw = (sb >> 32).saturating_sub(reach);
                        let bw = (sb & 0xffff_ffff) + reach;
                        while p < prev.len() && (prev[p] & 0xffff_ffff) < aw {
                            p += 1;
                        }
                        let mut q = p;
                        // Track the current run's root across consecutive
                        // links so each overlapping neighbor costs one find,
                        // not two (link_roots is idempotent on equal roots).
                        let mut root = (prev_hi + off) as u32;
                        while q < prev.len() && (prev[q] >> 32) <= bw {
                            let rq = find_in(node, (prev_lo + q) as u32);
                            root = link_roots(node, root, rq);
                            q += 1;
                        }
                        // The last overlapping run may also touch the next
                        // run of this row; step back so it is reconsidered.
                        if q > p {
                            p = q - 1;
                        }
                    }
                }
            }
            prev_lo = prev_hi;
        }
        self.row_runs
            .push(u32::try_from(self.runs.len()).expect("run count exceeds u32"));
        self.runs.len()
    }

    /// Rectangular-window variant of [`FastLabeler::build_runs_rows`]: rows
    /// `row_lo..row_hi` restricted to columns `col_lo..col_hi` — the unit of
    /// work one *tile* worker performs ([`tiled`]). Each row's words are
    /// copied into a masked window buffer, so extraction and the vertical
    /// merge reuse the exact word-level machinery of the full-width path;
    /// run bounds and minima stay **global** (absolute columns, global
    /// column-major positions) while run indices and union–find parents are
    /// local to the window. Adjacency crossing the window's left/right edge
    /// is deliberately not resolved here — that is the tile stitcher's seam
    /// pass. Returns the window's run count.
    fn build_runs_window(
        &mut self,
        img: &Bitmap,
        conn: Connectivity,
        row_lo: usize,
        row_hi: usize,
        col_lo: usize,
        col_hi: usize,
    ) -> usize {
        debug_assert!(col_lo < col_hi && col_hi <= img.cols());
        if col_lo == 0 && col_hi == img.cols() {
            // Full-width window: the row-range path already does exactly this
            // without the masked copies.
            return self.build_runs_rows(img, conn, row_lo, row_hi);
        }
        let rows_u32 = img.rows() as u32;
        self.runs.clear();
        self.row_runs.clear();
        self.node.clear();
        self.row_runs.reserve(row_hi - row_lo + 1);
        let (wlo, whi) = (col_lo / 64, (col_hi - 1) / 64 + 1);
        // Window positions are reported relative to word `wlo`; `base` maps
        // them back to absolute columns.
        let bits = col_hi - wlo * 64;
        let base = (wlo * 64) as u64;
        let mask_lo = !0u64 << (col_lo % 64);
        let mask_hi = if col_hi.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (col_hi % 64)) - 1
        };
        let reach = match conn {
            Connectivity::Four => 0u64,
            Connectivity::Eight => 1u64,
        };
        self.win_prev.clear();
        let mut prev_lo = 0usize; // first run of the previous row
        for r in row_lo..row_hi {
            let prev_hi = self.runs.len();
            self.row_runs
                .push(u32::try_from(prev_hi).expect("run count exceeds u32"));
            // Masked copy of this row's window words, then extraction with
            // absolute column bounds — one packed push per run.
            {
                let FastLabeler { runs, win_cur, .. } = self;
                win_cur.clear();
                win_cur.extend_from_slice(&img.row_words(r)[wlo..whi]);
                win_cur[0] &= mask_lo;
                let last = win_cur.len() - 1;
                win_cur[last] &= mask_hi;
                for_each_run_in_words(win_cur, bits, |a, b| {
                    runs.push(((base + u64::from(a)) << 32) | (base + u64::from(b)));
                });
            }
            let cur_hi = self.runs.len();
            // Singleton init: identity parents, global minimum positions.
            let r_u64 = r as u64;
            {
                let FastLabeler { runs, node, .. } = self;
                node.extend(runs[prev_hi..cur_hi].iter().enumerate().map(|(off, &sb)| {
                    let min = (sb >> 32) * rows_u32 as u64 + r_u64;
                    (min << 32) | (prev_hi + off) as u64
                }));
            }
            // Merge with the previous row's window runs [prev_lo, prev_hi) —
            // the same sweeps as build_runs_rows, over the masked buffers.
            match conn {
                Connectivity::Four if r > row_lo => {
                    let FastLabeler {
                        runs,
                        node,
                        and_buf,
                        win_cur,
                        win_prev,
                        ..
                    } = self;
                    and_buf.clear();
                    and_buf.extend(win_cur.iter().zip(win_prev.iter()).map(|(&a, &b)| a & b));
                    let mut c = prev_hi;
                    let mut q = prev_lo;
                    let mut root = u32::MAX;
                    for_each_run_in_words(and_buf, bits, |s, _| {
                        let s = base + u64::from(s);
                        if root == u32::MAX || (runs[c] & 0xffff_ffff) < s {
                            while (runs[c] & 0xffff_ffff) < s {
                                c += 1;
                            }
                            root = c as u32;
                        }
                        while (runs[q] & 0xffff_ffff) < s {
                            q += 1;
                        }
                        let rq = find_in(node, q as u32);
                        root = link_roots(node, root, rq);
                    });
                }
                _ => {
                    // Both rows' runs are already clipped to the window, so
                    // the widened bounds can never pair across the edge.
                    let FastLabeler { runs, node, .. } = self;
                    let (prev, cur) = runs[prev_lo..].split_at(prev_hi - prev_lo);
                    let mut p = 0usize;
                    for (off, &sb) in cur.iter().enumerate() {
                        let aw = (sb >> 32).saturating_sub(reach);
                        let bw = (sb & 0xffff_ffff) + reach;
                        while p < prev.len() && (prev[p] & 0xffff_ffff) < aw {
                            p += 1;
                        }
                        let mut q = p;
                        let mut root = (prev_hi + off) as u32;
                        while q < prev.len() && (prev[q] >> 32) <= bw {
                            let rq = find_in(node, (prev_lo + q) as u32);
                            root = link_roots(node, root, rq);
                            q += 1;
                        }
                        if q > p {
                            p = q - 1;
                        }
                    }
                }
            }
            std::mem::swap(&mut self.win_cur, &mut self.win_prev);
            prev_lo = prev_hi;
        }
        self.row_runs
            .push(u32::try_from(self.runs.len()).expect("run count exceeds u32"));
        self.runs.len()
    }

    /// Labels `img` into `out` (re-dimensioned; every cell is written exactly
    /// once — runs with their component label, gaps with background). With
    /// reused storage of sufficient capacity the call performs no heap
    /// allocation.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) {
        let rows = img.rows();
        self.build_runs(img, conn);
        out.reset_dims(rows, img.cols());
        // Pass 2, fused with the flattening sweep. Runs are visited in
        // ascending index order (row_runs is ascending) and every parent
        // points to a smaller index, so when run `k` is visited its parent
        // `p` is already flattened: `node[p]` holds the root in its parent
        // half and the component minimum in its `min_pos` half — whether `p`
        // is the root itself or not — and copying it down both flattens `k`
        // and delivers its label.
        let mut components = 0usize;
        for r in 0..rows {
            let (lo, hi) = (self.row_runs[r] as usize, self.row_runs[r + 1] as usize);
            let row = out.row_mut(r);
            // One vectorized background fill per row, then label fills only.
            row.fill(LabelGrid::BACKGROUND);
            for k in lo..hi {
                // Branchless flatten: for a root, `p == k` and the copy is a
                // no-op self-assignment.
                let p = self.node[k] as u32;
                components += (p as usize == k) as usize;
                let np = self.node[p as usize];
                self.node[k] = np;
                let label = (np >> 32) as u32;
                let sb = self.runs[k];
                let (a, b) = ((sb >> 32) as usize, (sb & 0xffff_ffff) as usize);
                // Most runs are a pixel or two: two unconditional stores
                // cover them, the fill only handles longer spans.
                row[a] = label;
                row[b] = label;
                if b - a > 1 {
                    row[a + 1..b].fill(label);
                }
            }
        }
        self.components = components;
    }

    /// Counts components (number of union–find roots) without writing any
    /// labels.
    pub fn count_components(&mut self, img: &Bitmap, conn: Connectivity) -> usize {
        self.build_runs(img, conn);
        self.components = self
            .node
            .iter()
            .enumerate()
            .filter(|&(k, &n)| n as u32 == k as u32)
            .count();
        self.components
    }

    /// Number of runs extracted by the most recent labeling call.
    pub fn last_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of components found by the most recent labeling call. O(1):
    /// the count is folded into the labeling sweep itself.
    pub fn last_components(&self) -> usize {
        self.components
    }

    /// Total bytes of scratch capacity currently reserved — the session's
    /// high-water mark. Steady-state reuse keeps this constant; tests assert
    /// warm calls perform zero arena reallocations by watching it.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.runs.capacity() * size_of::<u64>()
            + self.row_runs.capacity() * size_of::<u32>()
            + self.node.capacity() * size_of::<u64>()
            + self.and_buf.capacity() * size_of::<u64>()
            + self.win_cur.capacity() * size_of::<u64>()
            + self.win_prev.capacity() * size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle::{bfs_labels, bfs_labels_conn};

    #[test]
    fn matches_oracle_on_tiny_shapes() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
            "#..#\n....\n#..#\n",
        ] {
            let img = Bitmap::from_art(art);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    fast_labels_conn(&img, conn),
                    bfs_labels_conn(&img, conn),
                    "conn={conn:?} art:\n{art}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 40, 17).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    fast_labels_conn(&img, conn),
                    bfs_labels_conn(&img, conn),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_word_boundary_widths() {
        for cols in [63usize, 64, 65, 127, 128, 130] {
            let img = gen::uniform_random(37, cols, 0.5, cols as u64);
            assert_eq!(fast_labels(&img), bfs_labels(&img), "cols={cols}");
        }
    }

    #[test]
    fn matches_oracle_on_degenerate_shapes() {
        for art in ["#", "#.##.#", "#\n#\n.\n#\n"] {
            let img = Bitmap::from_art(art);
            assert_eq!(fast_labels(&img), bfs_labels(&img), "art {art:?}");
        }
        let single_row = gen::uniform_random(1, 200, 0.5, 9);
        assert_eq!(fast_labels(&single_row), bfs_labels(&single_row));
        let single_col = gen::uniform_random(200, 1, 0.5, 9);
        assert_eq!(fast_labels(&single_col), bfs_labels(&single_col));
    }

    #[test]
    fn reused_labeler_leaves_no_stale_state() {
        let mut labeler = FastLabeler::new();
        let mut grid = LabelGrid::new_background(1, 1);
        // Large then small: scratch arrays shrink logically, not physically.
        let big = gen::uniform_random(80, 80, 0.6, 1);
        labeler.label_into(&big, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&big));
        let small = Bitmap::from_art("#.#\n###\n");
        labeler.label_into(&small, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&small));
        labeler.label_into(&big, Connectivity::Eight, &mut grid);
        assert_eq!(grid, bfs_labels_conn(&big, Connectivity::Eight));
    }

    #[test]
    fn component_count_matches_labels() {
        for name in ["random50", "checker", "maze", "antidiag", "empty", "full"] {
            let img = gen::by_name(name, 32, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                assert_eq!(
                    fast_component_count(&img, conn),
                    bfs_labels_conn(&img, conn).component_count(),
                    "workload {name} conn={conn:?}"
                );
            }
        }
    }

    #[test]
    fn eight_connectivity_bridges_only_diagonals_in_reach() {
        // Two runs offset by exactly one column must merge under 8-conn but
        // not 4-conn; offset two must merge under neither.
        let touch = Bitmap::from_art("##..\n..##\n");
        assert_eq!(fast_component_count(&touch, Connectivity::Four), 2);
        assert_eq!(fast_component_count(&touch, Connectivity::Eight), 1);
        let gap = Bitmap::from_art("##...\n...##\n");
        assert_eq!(fast_component_count(&gap, Connectivity::Four), 2);
        assert_eq!(fast_component_count(&gap, Connectivity::Eight), 2);
    }

    #[test]
    fn labels_are_min_column_major_positions_not_just_partition() {
        // A U-shape closing on the right: the component's least column-major
        // position sits in the leftmost column.
        let img = Bitmap::from_art(
            "###\n\
             ..#\n\
             ###\n",
        );
        let l = fast_labels(&img);
        for (r, c) in img.iter_ones_colmajor() {
            assert_eq!(l.get(r, c), 0);
        }
    }
}
