//! Pixel adjacency conventions.
//!
//! The paper works with 4-connectivity ("two pixels are connected if there is
//! a path of adjacent (horizontally or vertically) 1-valued pixels from one
//! to the other"). 8-connectivity — the other standard convention in image
//! processing, where diagonal neighbors also touch — is supported throughout
//! the workspace as an extension: the SLAP algorithm accommodates it with a
//! local "diagonal bridge" rule and a widened adjacency witness (see
//! `slap-cc`'s pass documentation), at unchanged asymptotic cost.

use serde::{Deserialize, Serialize};

/// Which pixels count as adjacent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Connectivity {
    /// Horizontal and vertical neighbors only (the paper's convention).
    #[default]
    Four,
    /// Horizontal, vertical, and diagonal neighbors.
    Eight,
}

impl Connectivity {
    /// Short stable name (accepted by [`Connectivity::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Connectivity::Four => "4",
            Connectivity::Eight => "8",
        }
    }

    /// Parses `"4"` or `"8"`.
    pub fn parse(s: &str) -> Option<Connectivity> {
        match s {
            "4" => Some(Connectivity::Four),
            "8" => Some(Connectivity::Eight),
            _ => None,
        }
    }

    /// The neighbor offsets `(dr, dc)` of this convention.
    pub fn offsets(self) -> &'static [(isize, isize)] {
        match self {
            Connectivity::Four => &[(-1, 0), (1, 0), (0, -1), (0, 1)],
            Connectivity::Eight => &[
                (-1, 0),
                (1, 0),
                (0, -1),
                (0, 1),
                (-1, -1),
                (-1, 1),
                (1, -1),
                (1, 1),
            ],
        }
    }

    /// Iterates the in-bounds neighbors of `(row, col)` in a `rows × cols`
    /// grid.
    pub fn neighbors(
        self,
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
    ) -> impl Iterator<Item = (usize, usize)> {
        self.offsets().iter().filter_map(move |&(dr, dc)| {
            let nr = row.checked_add_signed(dr)?;
            let nc = col.checked_add_signed(dc)?;
            (nr < rows && nc < cols).then_some((nr, nc))
        })
    }

    /// `true` when two distinct pixels are adjacent under this convention.
    pub fn adjacent(self, a: (usize, usize), b: (usize, usize)) -> bool {
        let dr = a.0.abs_diff(b.0);
        let dc = a.1.abs_diff(b.1);
        match self {
            Connectivity::Four => dr + dc == 1,
            Connectivity::Eight => dr.max(dc) == 1,
        }
    }
}

impl std::fmt::Display for Connectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-connectivity", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_has_four_offsets_eight_has_eight() {
        assert_eq!(Connectivity::Four.offsets().len(), 4);
        assert_eq!(Connectivity::Eight.offsets().len(), 8);
    }

    #[test]
    fn neighbors_respect_bounds() {
        let n4: Vec<_> = Connectivity::Four.neighbors(0, 0, 3, 3).collect();
        assert_eq!(n4.len(), 2);
        assert!(n4.contains(&(1, 0)) && n4.contains(&(0, 1)));
        let n8: Vec<_> = Connectivity::Eight.neighbors(0, 0, 3, 3).collect();
        assert_eq!(n8.len(), 3);
        assert!(n8.contains(&(1, 1)));
        let mid8: Vec<_> = Connectivity::Eight.neighbors(1, 1, 3, 3).collect();
        assert_eq!(mid8.len(), 8);
    }

    #[test]
    fn adjacency_matches_offsets() {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            for (r, c) in conn.neighbors(5, 5, 11, 11) {
                assert!(conn.adjacent((5, 5), (r, c)), "{conn} ({r},{c})");
            }
        }
        assert!(!Connectivity::Four.adjacent((5, 5), (6, 6)));
        assert!(Connectivity::Eight.adjacent((5, 5), (6, 6)));
        assert!(!Connectivity::Eight.adjacent((5, 5), (7, 6)));
        assert!(
            !Connectivity::Eight.adjacent((5, 5), (5, 5)),
            "self is not a neighbor"
        );
    }

    #[test]
    fn names_roundtrip() {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            assert_eq!(Connectivity::parse(conn.name()), Some(conn));
        }
        assert_eq!(Connectivity::parse("6"), None);
    }
}
