//! Deterministic workload generators.
//!
//! The paper argues about three regimes:
//!
//! * **benign / typical** images, where the pipelined union–find pass should
//!   run in near-linear time (random densities, blobs, stripes, mazes);
//! * **adversarial** images that make left-component labeling hard —
//!   Figure 3(a) (many components in the left prefix that merge far to the
//!   right, [`fig3a_nested_brackets`]) and Figure 3(b) (a comb pattern whose
//!   labels zigzag top-to-bottom, [`double_comb`]), plus a tournament-bracket
//!   family ([`tournament`]) that drives weighted union–find to its
//!   logarithmic depth bound;
//! * the **Theorem 5 family** ([`even_rows`]) used by the Ω(n lg n) lower
//!   bound for the 1-bit-link SLAP: only even rows contain 1s and each such
//!   row is a run ending at the right edge, so the rightmost processor must
//!   learn one of `n` possible start columns per row.
//!
//! Every generator is deterministic: random ones take an explicit seed.

use crate::bitmap::Bitmap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random image: each pixel is foreground independently with
/// probability `density`.
pub fn uniform_random(rows: usize, cols: usize, density: f64, seed: u64) -> Bitmap {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bm = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density) {
                bm.set(r, c, true);
            }
        }
    }
    bm
}

/// Figure 3(a)-style image: nested bracket shapes.
///
/// Pairs of horizontal bars (rows `2k` and `rows-1-2k`) run between columns
/// `2k` and `cols-1-2k`, with a vertical segment joining each pair at one
/// end. With `close_left = true` (the `[` orientation, the registry default)
/// each pair is already one component in the leftmost column of its span, so
/// the union is *relevant* to every following column and the left-connected
/// pass must pipeline a cascade of relevant-union pairs across the whole
/// width — the "complicated organization of information about connections
/// between components that occur in columns to the left" of the paper's §2.
/// With `close_left = false` (`]`) the same cascade hits the mirrored
/// right-connected pass instead.
pub fn nested_brackets(rows: usize, cols: usize, close_left: bool) -> Bitmap {
    let mut bm = Bitmap::new(rows, cols);
    let depth = (rows.div_ceil(2)).min(cols.div_ceil(2)) / 2;
    for k in 0..depth {
        let top = 2 * k;
        let bot = rows - 1 - 2 * k;
        if top >= bot {
            break;
        }
        let left = 2 * k;
        let right = cols - 1 - 2 * k;
        if left >= right {
            break;
        }
        for c in left..=right {
            bm.set(top, c, true);
            bm.set(bot, c, true);
        }
        let join = if close_left { left } else { right };
        for r in top..=bot {
            bm.set(r, join, true);
        }
    }
    bm
}

/// [`nested_brackets`] in the `[` orientation (the Figure 3(a) registry
/// entry).
pub fn fig3a_nested_brackets(rows: usize, cols: usize) -> Bitmap {
    nested_brackets(rows, cols, true)
}

/// Figure 3(b)-style image: two interleaved combs.
///
/// Comb A has its spine on the top row with teeth descending almost to the
/// bottom; comb B has its spine on the bottom row with teeth ascending almost
/// to the top, offset by `pitch` columns. Exactly two components (for images
/// wide enough to hold one tooth of each), but a label entering from the left
/// must repeatedly travel the full column height — the pattern the paper says
/// "would cause excessive delay for a naive approach of passing labels to the
/// right in a top to bottom fashion".
pub fn double_comb(rows: usize, cols: usize, pitch: usize) -> Bitmap {
    assert!(pitch >= 1, "pitch must be at least 1");
    assert!(rows >= 3, "double_comb needs at least 3 rows");
    let mut bm = Bitmap::new(rows, cols);
    for c in 0..cols {
        bm.set(0, c, true);
        bm.set(rows - 1, c, true);
    }
    for c in (0..cols).step_by(2 * pitch) {
        for r in 0..rows - 2 {
            bm.set(r, c, true);
        }
    }
    for c in (pitch..cols).step_by(2 * pitch) {
        for r in 2..rows {
            bm.set(r, c, true);
        }
    }
    bm
}

/// Theorem 5 family: only even rows contain pixels; even row `2i` holds a run
/// of 1s from column `starts[i]` through the last column. `starts[i]` may be
/// `cols` to leave the row empty.
///
/// The labeling of the rightmost column reveals every start column, which is
/// the counting argument behind the Ω(n lg n) bound for 1-bit links.
pub fn even_rows(rows: usize, cols: usize, starts: &[usize]) -> Bitmap {
    assert_eq!(
        starts.len(),
        rows.div_ceil(2),
        "need one start per even row"
    );
    let mut bm = Bitmap::new(rows, cols);
    for (i, &s) in starts.iter().enumerate() {
        let r = 2 * i;
        for c in s..cols {
            bm.set(r, c, true);
        }
    }
    bm
}

/// Random instance of the Theorem 5 family ([`even_rows`] with uniform random
/// start columns).
pub fn even_rows_random(rows: usize, cols: usize, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let starts: Vec<usize> = (0..rows.div_ceil(2))
        .map(|_| rng.gen_range(0..cols))
        .collect();
    even_rows(rows, cols, &starts)
}

/// Tournament bracket: horizontal lines on even rows merge pairwise in a
/// perfect binary schedule as columns advance, so weighted union repeatedly
/// unions equal-sized sets — the worst case that drives Tarjan-style
/// union–find trees to Θ(lg n) depth (paper §3's concern).
///
/// Lines live on rows `0, 2, 4, …`; merge level `k` (1-based) joins block
/// leaders with a vertical connector at column `k * gap`. `gap >= 2` keeps
/// connectors from touching each other.
pub fn tournament(rows: usize, cols: usize, gap: usize) -> Bitmap {
    assert!(gap >= 2, "gap must be at least 2");
    let mut bm = Bitmap::new(rows, cols);
    let lines = rows.div_ceil(2);
    for i in 0..lines {
        for c in 0..cols {
            bm.set(2 * i, c, true);
        }
    }
    let mut level = 1usize;
    while (1usize << level) <= lines {
        let c = level * gap;
        if c >= cols {
            break;
        }
        let span = 1usize << level;
        let half = span >> 1;
        let mut leader = 0usize;
        while leader + half < lines {
            let top_row = 2 * leader;
            let bot_row = 2 * (leader + half);
            for r in top_row..=bot_row {
                bm.set(r, c, true);
            }
            leader += span;
        }
        level += 1;
    }
    bm
}

/// A single rectangular spiral with `gap` rows/columns between successive
/// arms. One component whose internal path length is Θ(n²/gap) — the
/// worst case for naive label propagation (its geodesic is nearly the whole
/// image).
pub fn spiral(rows: usize, cols: usize, gap: usize) -> Bitmap {
    assert!(gap >= 2, "gap must be at least 2");
    let mut bm = Bitmap::new(rows, cols);
    let (mut top, mut bot, mut left, mut right) =
        (0isize, rows as isize - 1, 0isize, cols as isize - 1);
    let mut first = true;
    while top <= bot && left <= right {
        for c in left..=right {
            bm.set(top as usize, c as usize, true);
        }
        if !first {
            // connect inward from the previous ring's left side
            for r in (top - gap as isize).max(0)..=top {
                bm.set(r as usize, left as usize, true);
            }
        }
        first = false;
        for r in top..=bot {
            bm.set(r as usize, right as usize, true);
        }
        for c in left..=right {
            bm.set(bot as usize, c as usize, true);
        }
        for r in (top + gap as isize).min(bot)..=bot {
            bm.set(r as usize, left as usize, true);
        }
        top += gap as isize;
        bot -= gap as isize;
        left += gap as isize;
        right -= gap as isize;
        // break the next ring open so the spiral stays one component
        if top <= bot && left <= right {
            for c in left..(left + gap as isize).min(right) {
                bm.set(top as usize, c as usize, false);
            }
        }
    }
    bm
}

/// Horizontal stripes: rows `r` with `r % period < thickness` are foreground.
pub fn stripes_horizontal(rows: usize, cols: usize, period: usize, thickness: usize) -> Bitmap {
    assert!(period > 0 && thickness > 0 && thickness < period);
    let mut bm = Bitmap::new(rows, cols);
    for r in 0..rows {
        if r % period < thickness {
            for c in 0..cols {
                bm.set(r, c, true);
            }
        }
    }
    bm
}

/// Vertical stripes: columns `c` with `c % period < thickness` are foreground.
pub fn stripes_vertical(rows: usize, cols: usize, period: usize, thickness: usize) -> Bitmap {
    stripes_horizontal(cols, rows, period, thickness).transpose()
}

/// Checkerboard of isolated pixels: the maximum possible number of
/// components (`⌈rows/2⌉ * ⌈cols/2⌉` on the even lattice).
pub fn checkerboard(rows: usize, cols: usize) -> Bitmap {
    let mut bm = Bitmap::new(rows, cols);
    for r in (0..rows).step_by(2) {
        for c in (0..cols).step_by(2) {
            bm.set(r, c, true);
        }
    }
    bm
}

/// Random filled discs ("particles"), the kind of blob field the SLAP's
/// image-analysis motivation targets.
pub fn blobs(rows: usize, cols: usize, count: usize, max_radius: usize, seed: u64) -> Bitmap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bm = Bitmap::new(rows, cols);
    for _ in 0..count {
        let cr = rng.gen_range(0..rows) as isize;
        let cc = rng.gen_range(0..cols) as isize;
        let rad = rng.gen_range(1..=max_radius.max(1)) as isize;
        for dr in -rad..=rad {
            for dc in -rad..=rad {
                if dr * dr + dc * dc <= rad * rad {
                    let (r, c) = (cr + dr, cc + dc);
                    if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                        bm.set(r as usize, c as usize, true);
                    }
                }
            }
        }
    }
    bm
}

/// A perfect maze: one tree-shaped component carved by randomized
/// depth-first search on the `⌈rows/2⌉ × ⌈cols/2⌉` cell lattice. High turn
/// density with exactly one component and no cycles.
pub fn maze(rows: usize, cols: usize, seed: u64) -> Bitmap {
    let cr = rows.div_ceil(2);
    let cc = cols.div_ceil(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bm = Bitmap::new(rows, cols);
    let mut visited = vec![false; cr * cc];
    let mut stack = vec![0usize];
    visited[0] = true;
    bm.set(0, 0, true);
    while let Some(&cell) = stack.last() {
        let (r, c) = (cell / cc, cell % cc);
        let mut nbrs: Vec<(usize, usize)> = Vec::with_capacity(4);
        if r > 0 && !visited[(r - 1) * cc + c] {
            nbrs.push((r - 1, c));
        }
        if r + 1 < cr && !visited[(r + 1) * cc + c] {
            nbrs.push((r + 1, c));
        }
        if c > 0 && !visited[r * cc + c - 1] {
            nbrs.push((r, c - 1));
        }
        if c + 1 < cc && !visited[r * cc + c + 1] {
            nbrs.push((r, c + 1));
        }
        if nbrs.is_empty() {
            stack.pop();
            continue;
        }
        let (nr, nc) = nbrs[rng.gen_range(0..nbrs.len())];
        visited[nr * cc + nc] = true;
        // carve the wall between (r,c) and (nr,nc) in pixel space
        let (pr, pc) = (2 * r, 2 * c);
        let (qr, qc) = (2 * nr, 2 * nc);
        bm.set(qr, qc, true);
        bm.set((pr + qr) / 2, (pc + qc) / 2, true);
        stack.push(nr * cc + nc);
    }
    bm
}

/// Single-pixel anti-diagonal lines repeated every `spacing` rows/columns:
/// every foreground pixel touches its neighbors only diagonally, so under
/// 4-connectivity the image is all singletons while under 8-connectivity
/// each anti-diagonal is one long component — the sharpest 4-vs-8 contrast.
pub fn antidiag(rows: usize, cols: usize, spacing: usize) -> Bitmap {
    assert!(
        spacing >= 2,
        "spacing must be at least 2 to keep diagonals apart"
    );
    let mut bm = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if (r + c) % spacing == 0 {
                bm.set(r, c, true);
            }
        }
    }
    bm
}

/// Diagonal staircases: 4-connected two-pixel steps descending to the right,
/// repeated every `spacing` rows. Components cross many columns while keeping
/// per-column runs short (each column sees 2-pixel fragments of many
/// different components).
pub fn staircase(rows: usize, cols: usize, spacing: usize) -> Bitmap {
    assert!(
        spacing >= 3,
        "spacing must be at least 3 to keep stairs apart"
    );
    let mut bm = Bitmap::new(rows, cols);
    for start in (0..rows).step_by(spacing) {
        for c in 0..cols {
            let r = start + c / 2;
            if r >= rows {
                break;
            }
            bm.set(r, c, true);
            if c + 1 < cols {
                bm.set(r, c + 1, true);
            }
        }
    }
    bm
}

/// Serpentine (boustrophedon): full horizontal rows every `spacing` rows,
/// joined alternately at the right and left edges, forming one snake-shaped
/// component. Any algorithm whose information travels at one *column* per
/// round — like the naive SLAP min-propagation baseline, where vertical
/// moves inside a PE are free but horizontal moves cost a round — needs
/// Θ(n²/spacing) rounds here, because the snake's geodesic crosses the full
/// width once per row segment.
pub fn serpentine(rows: usize, cols: usize, spacing: usize) -> Bitmap {
    assert!(spacing >= 2, "spacing must be at least 2");
    let mut bm = Bitmap::new(rows, cols);
    let mut r = 0usize;
    let mut seg = 0usize;
    while r < rows {
        for c in 0..cols {
            bm.set(r, c, true);
        }
        // connect to the next segment on alternating sides
        if r + spacing < rows {
            let c = if seg.is_multiple_of(2) { cols - 1 } else { 0 };
            for rr in r..=(r + spacing) {
                bm.set(rr, c, true);
            }
        }
        r += spacing;
        seg += 1;
    }
    bm
}

/// Maps a distance `d` along a Hilbert curve of side `n` (a power of two) to
/// grid coordinates, by the classic bit-twiddling quadrant walk.
fn hilbert_d2xy(n: usize, d: usize) -> (usize, usize) {
    let (mut x, mut y) = (0usize, 0usize);
    let mut t = d;
    let mut s = 1usize;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// A Hilbert space-filling curve drawn as one connected 1-pixel-wide path:
/// curve vertices sit on even coordinates and consecutive vertices are
/// joined by their midpoint pixel, so the drawing of an order-`k` curve
/// occupies a `(2^(k+1) - 1)²` square (the largest that fits is used). One
/// component whose geodesic is Θ(n²) with a direction reversal every few
/// pixels at *every* scale — the adversarial worst case for iterative
/// label propagation, harsher than [`spiral`] (Θ(n) reversals) or
/// [`serpentine`] (reversals only at the edges).
pub fn hilbert(rows: usize, cols: usize) -> Bitmap {
    let mut bm = Bitmap::new(rows, cols);
    let side = rows.min(cols);
    // Largest order k >= 1 whose doubled drawing (2^(k+1) - 1 pixels on a
    // side) fits; degenerate frames get a single seed pixel.
    let mut n = 1usize;
    while 4 * n - 1 <= side {
        n *= 2;
    }
    if n == 1 {
        bm.set(0, 0, true);
        return bm;
    }
    let (mut px, mut py) = hilbert_d2xy(n, 0);
    bm.set(2 * py, 2 * px, true);
    for d in 1..n * n {
        let (x, y) = hilbert_d2xy(n, d);
        // Consecutive curve vertices differ by one in exactly one axis, so
        // the doubled midpoint is the integer pixel joining them.
        bm.set(py + y, px + x, true);
        bm.set(2 * y, 2 * x, true);
        (px, py) = (x, y);
    }
    bm
}

/// Fan: every other row of the first column is a 1, and the second column is
/// all 1s, merging them instantly. Maximizes the number of label messages a
/// single set forwards in the label pass.
pub fn fan(rows: usize, cols: usize) -> Bitmap {
    assert!(cols >= 2);
    let mut bm = Bitmap::new(rows, cols);
    for r in (0..rows).step_by(2) {
        bm.set(r, 0, true);
    }
    for r in 0..rows {
        bm.set(r, 1, true);
    }
    // extend a spine to the right so labels keep flowing
    for c in 2..cols {
        bm.set(rows / 2, c, true);
    }
    bm
}

/// Fully foreground image.
pub fn full(rows: usize, cols: usize) -> Bitmap {
    let mut bm = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            bm.set(r, c, true);
        }
    }
    bm
}

/// Named workload registry used by the experiments binary, benches and
/// examples. `n` is the image side; random families consume `seed`.
pub fn by_name(name: &str, n: usize, seed: u64) -> Option<Bitmap> {
    by_name_dims(name, n, n, seed)
}

/// Rectangular variant of [`by_name`]: the same workload registry at an
/// arbitrary `rows × cols` shape, so differential matrices can straddle
/// word-boundary widths without also scaling the row count.
pub fn by_name_dims(name: &str, rows: usize, cols: usize, seed: u64) -> Option<Bitmap> {
    let n = rows.max(cols);
    let bm = match name {
        "empty" => Bitmap::new(rows, cols),
        "full" => full(rows, cols),
        "random05" => uniform_random(rows, cols, 0.05, seed),
        "random25" => uniform_random(rows, cols, 0.25, seed),
        "random50" => uniform_random(rows, cols, 0.50, seed),
        "random65" => uniform_random(rows, cols, 0.65, seed),
        "random90" => uniform_random(rows, cols, 0.90, seed),
        "fig3a" => fig3a_nested_brackets(rows, cols),
        "comb" => double_comb(rows, cols, 2),
        "comb4" => double_comb(rows, cols, 4),
        "evenrows" => even_rows_random(rows, cols, seed),
        "tournament" => tournament(rows, cols, 2),
        "spiral" => spiral(rows, cols, 3),
        "serpentine" => serpentine(rows, cols, 3),
        "hilbert" => hilbert(rows, cols),
        "hstripes" => stripes_horizontal(rows, cols, 4, 2),
        "vstripes" => stripes_vertical(rows, cols, 4, 2),
        "checker" => checkerboard(rows, cols),
        "blobs" => blobs(rows, cols, n / 4 + 1, (n / 16).max(2), seed),
        "maze" => maze(rows, cols, seed),
        "staircase" => staircase(rows, cols, 4),
        "antidiag" => antidiag(rows, cols, 3),
        "fan" => fan(rows, cols),
        _ => return None,
    };
    Some(bm)
}

/// All workload names accepted by [`by_name`], in a stable order.
pub const WORKLOADS: &[&str] = &[
    "empty",
    "full",
    "random05",
    "random25",
    "random50",
    "random65",
    "random90",
    "fig3a",
    "comb",
    "comb4",
    "evenrows",
    "tournament",
    "spiral",
    "serpentine",
    "hilbert",
    "hstripes",
    "vstripes",
    "checker",
    "blobs",
    "maze",
    "staircase",
    "antidiag",
    "fan",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::Connectivity;
    use crate::oracle::{bfs_labels, bfs_labels_conn, component_count};

    #[test]
    fn antidiag_is_singletons_under_four_and_lines_under_eight() {
        let bm = antidiag(24, 24, 3);
        assert_eq!(component_count(&bm), bm.count_ones());
        let eight = bfs_labels_conn(&bm, Connectivity::Eight);
        // Each anti-diagonal r+c ≡ 0 (mod 3) is one 8-component; count them.
        let expected = (0..(24 + 24 - 1)).filter(|s| s % 3 == 0).count();
        assert_eq!(eight.component_count(), expected);
    }

    #[test]
    fn uniform_random_is_deterministic_and_respects_density() {
        let a = uniform_random(64, 64, 0.5, 42);
        let b = uniform_random(64, 64, 0.5, 42);
        assert_eq!(a, b);
        let c = uniform_random(64, 64, 0.5, 43);
        assert_ne!(a, c);
        let d = a.density();
        assert!((0.4..0.6).contains(&d), "density {d} far from 0.5");
        assert_eq!(uniform_random(32, 32, 0.0, 1).count_ones(), 0);
        assert_eq!(uniform_random(32, 32, 1.0, 1).count_ones(), 32 * 32);
    }

    #[test]
    fn brackets_merge_only_at_the_closed_side() {
        let bm = nested_brackets(16, 16, false); // `]` closes right
        let whole = component_count(&bm);
        assert!(whole >= 2, "expected nested brackets, got {whole}");
        // left half: each bracket contributes two separate bars
        let mut left = Bitmap::new(16, 8);
        for r in 0..16 {
            for c in 0..8 {
                left.set(r, c, bm.get(r, c));
            }
        }
        assert!(component_count(&left) > whole);
        // `[` orientation is the mirror image
        assert_eq!(
            nested_brackets(16, 16, true),
            nested_brackets(16, 16, false).flip_horizontal()
        );
    }

    #[test]
    fn fig3a_right_half_has_separate_bars() {
        let bm = fig3a_nested_brackets(16, 16); // `[` closes left
        let whole = component_count(&bm);
        let mut right = Bitmap::new(16, 8);
        for r in 0..16 {
            for c in 0..8 {
                right.set(r, c, bm.get(r, c + 8));
            }
        }
        assert!(component_count(&right) > whole);
    }

    #[test]
    fn double_comb_has_two_components() {
        let bm = double_comb(16, 32, 2);
        assert_eq!(component_count(&bm), 2);
    }

    #[test]
    fn double_comb_teeth_do_not_touch_opposite_spine() {
        let bm = double_comb(8, 16, 2);
        let l = bfs_labels(&bm);
        assert_ne!(l.get(0, 0), l.get(bm.rows() - 1, 0));
    }

    #[test]
    fn even_rows_runs_end_at_right_edge() {
        let bm = even_rows(6, 8, &[3, 0, 8]);
        assert!(bm.get(0, 3) && bm.get(0, 7) && !bm.get(0, 2));
        assert!(bm.get(2, 0) && bm.get(2, 7));
        assert_eq!((0..8).filter(|&c| bm.get(4, c)).count(), 0);
        for c in 0..8 {
            assert!(!bm.get(1, c) && !bm.get(3, c) && !bm.get(5, c));
        }
    }

    #[test]
    fn even_rows_components_are_rows() {
        let bm = even_rows_random(32, 32, 7);
        let nonempty = (0..16)
            .filter(|&i| (0..32).any(|c| bm.get(2 * i, c)))
            .count();
        assert_eq!(component_count(&bm), nonempty);
    }

    #[test]
    fn tournament_ends_as_single_component_when_wide_enough() {
        // 16 lines need 4 merge levels at gap 2 -> max column 8 < 64.
        let bm = tournament(32, 64, 2);
        assert_eq!(component_count(&bm), 1);
    }

    #[test]
    fn tournament_left_prefix_has_many_components() {
        let bm = tournament(32, 64, 2);
        let mut prefix = Bitmap::new(32, 2);
        for r in 0..32 {
            for c in 0..2 {
                prefix.set(r, c, bm.get(r, c));
            }
        }
        assert_eq!(component_count(&prefix), 16);
    }

    #[test]
    fn spiral_is_one_component() {
        for n in [8, 16, 31, 32] {
            let bm = spiral(n, n, 3);
            assert_eq!(component_count(&bm), 1, "spiral {n} not connected");
        }
    }

    #[test]
    fn checkerboard_maximizes_components() {
        let bm = checkerboard(8, 8);
        assert_eq!(component_count(&bm), 16);
    }

    #[test]
    fn maze_is_one_component_spanning_all_cells() {
        let bm = maze(33, 33, 3);
        assert_eq!(component_count(&bm), 1);
        // all cell positions carved
        for r in (0..33).step_by(2) {
            for c in (0..33).step_by(2) {
                assert!(bm.get(r, c), "cell ({r},{c}) not carved");
            }
        }
    }

    #[test]
    fn staircase_components_do_not_touch() {
        let bm = staircase(32, 32, 4);
        let l = bfs_labels(&bm);
        assert!(l.component_count() >= 2);
    }

    #[test]
    fn fan_is_one_component() {
        let bm = fan(16, 16);
        assert_eq!(component_count(&bm), 1);
    }

    #[test]
    fn serpentine_is_one_component() {
        for n in [8, 16, 31] {
            let bm = serpentine(n, n, 3);
            assert_eq!(component_count(&bm), 1, "serpentine {n}");
        }
    }

    #[test]
    fn hilbert_is_one_component_filling_the_largest_fitting_square() {
        for n in [7usize, 8, 15, 16, 33, 64] {
            let bm = hilbert(n, n);
            assert_eq!(component_count(&bm), 1, "hilbert {n} not connected");
            // Order k uses a (2^(k+1) - 1)-sided square: 2 * 4^k - 1 pixels
            // (4^k vertices plus 4^k - 1 joining midpoints).
            let mut side = 1usize;
            while 4 * side - 1 <= n {
                side *= 2;
            }
            assert_eq!(bm.count_ones(), (2 * side * side).max(2) - 1, "n={n}");
        }
        // Degenerate frames still produce a (single-pixel) component.
        assert_eq!(hilbert(1, 100).count_ones(), 1);
        assert_eq!(hilbert(2, 2).count_ones(), 1);
    }

    #[test]
    fn registry_covers_all_names() {
        for name in WORKLOADS {
            let bm = by_name(name, 16, 1).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(bm.rows(), 16);
            assert_eq!(bm.cols(), 16);
        }
        assert!(by_name("nope", 16, 1).is_none());
    }
}
