//! Sequential ground-truth labeler.
//!
//! A plain flood fill over the image in column-major scan order. Because the
//! scan visits pixels in increasing column-major position, the first pixel of
//! each component encountered is exactly the component's minimum column-major
//! position, which the paper uses as the component label. Every other labeler
//! in the workspace is tested against this one.

use crate::bitmap::Bitmap;
use crate::connectivity::Connectivity;
use crate::labels::LabelGrid;

/// Reusable flood-fill state: the traversal queue survives between calls, so
/// a caller labeling many images (differential suites, sweeps) performs no
/// per-call allocation beyond what the output grid itself may need.
#[derive(Debug, Default)]
pub struct BfsOracle {
    queue: Vec<(u32, u32)>,
}

impl BfsOracle {
    /// Creates an oracle with an empty (but growable) traversal queue.
    pub fn new() -> Self {
        BfsOracle::default()
    }

    /// Labels `img` into `out` (re-dimensioned and background-filled in
    /// bulk), returning the number of components found. With a reused `out`
    /// grid of sufficient capacity the call is allocation-free.
    pub fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> usize {
        let (rows, cols) = (img.rows(), img.cols());
        out.reset_background(rows, cols);
        let queue = &mut self.queue;
        let mut components = 0usize;
        for c in 0..cols {
            for r in 0..rows {
                if !img.get(r, c) || out.is_foreground(r, c) {
                    continue;
                }
                components += 1;
                let label = img.position(r, c);
                out.set(r, c, label);
                queue.clear();
                queue.push((r as u32, c as u32));
                while let Some((pr, pc)) = queue.pop() {
                    for (nr, nc) in conn.neighbors(pr as usize, pc as usize, rows, cols) {
                        if img.get(nr, nc) && !out.is_foreground(nr, nc) {
                            out.set(nr, nc, label);
                            queue.push((nr as u32, nc as u32));
                        }
                    }
                }
            }
        }
        components
    }

    /// Total bytes of scratch capacity currently reserved (the traversal
    /// queue) — the session's high-water mark.
    pub fn scratch_bytes(&self) -> usize {
        self.queue.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

/// Labels `img` by breadth-first flood fill (4-connectivity), assigning each
/// component the minimum column-major position of its pixels — the exact
/// labeling Algorithm CC must produce.
pub fn bfs_labels(img: &Bitmap) -> LabelGrid {
    bfs_labels_conn(img, Connectivity::Four)
}

/// [`bfs_labels`] under an arbitrary adjacency convention. Allocates one
/// fresh grid; use [`BfsOracle::label_into`] to reuse storage across calls.
pub fn bfs_labels_conn(img: &Bitmap, conn: Connectivity) -> LabelGrid {
    let mut out = LabelGrid::new_background(img.rows(), img.cols());
    BfsOracle::new().label_into(img, conn, &mut out);
    out
}

/// Counts 4-connected components without materialising labels.
pub fn component_count(img: &Bitmap) -> usize {
    bfs_labels(img).component_count()
}

/// Counts components under an arbitrary adjacency convention.
pub fn component_count_conn(img: &Bitmap, conn: Connectivity) -> usize {
    bfs_labels_conn(img, conn).component_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reused_oracle_matches_fresh_calls() {
        let mut oracle = BfsOracle::new();
        let mut grid = LabelGrid::new_background(1, 1);
        for (name, n) in [("random50", 24), ("comb", 16), ("full", 8)] {
            let img = crate::gen::by_name(name, n, 3).unwrap();
            oracle.label_into(&img, Connectivity::Four, &mut grid);
            assert_eq!(grid, bfs_labels(&img), "workload {name}");
        }
        // Shrinking and re-growing the grid across differently-sized images
        // must leave no stale labels behind.
        let tiny = Bitmap::from_art("#.\n.#\n");
        oracle.label_into(&tiny, Connectivity::Four, &mut grid);
        assert_eq!(grid, bfs_labels(&tiny));
    }

    #[test]
    fn empty_image_has_no_components() {
        let img = Bitmap::new(4, 4);
        let l = bfs_labels(&img);
        assert_eq!(l.component_count(), 0);
    }

    #[test]
    fn full_image_is_one_component_labeled_zero() {
        let img = Bitmap::from_art("###\n###\n");
        let l = bfs_labels(&img);
        assert_eq!(l.component_count(), 1);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(l.get(r, c), 0);
            }
        }
    }

    #[test]
    fn diagonal_pixels_are_not_connected() {
        let img = Bitmap::from_art("#.\n.#\n");
        let l = bfs_labels(&img);
        assert_eq!(l.component_count(), 2);
        assert_eq!(l.get(0, 0), 0);
        assert_eq!(l.get(1, 1), 3); // position 1*2+1
    }

    #[test]
    fn labels_are_min_column_major_positions() {
        // A U-shape opening left: arms meet only in the last column.
        let img = Bitmap::from_art(
            "###\n\
             ..#\n\
             ###\n",
        );
        let l = bfs_labels(&img);
        assert_eq!(l.component_count(), 1);
        // Min column-major position: column 0 has rows 0 and 2 -> position 0.
        for (r, c) in img.iter_ones_colmajor() {
            assert_eq!(l.get(r, c), 0);
        }
    }

    #[test]
    fn separate_rows_get_separate_labels() {
        let img = Bitmap::from_art(
            "###\n\
             ...\n\
             ###\n",
        );
        let l = bfs_labels(&img);
        assert_eq!(l.component_count(), 2);
        assert_eq!(l.get(0, 0), 0);
        assert_eq!(l.get(2, 0), 2);
        assert_eq!(l.get(0, 2), 0);
        assert_eq!(l.get(2, 2), 2);
    }

    #[test]
    fn count_matches_labels() {
        let img = Bitmap::from_art("#.#.#\n.....\n#####\n");
        assert_eq!(component_count(&img), 4);
    }

    #[test]
    fn eight_connectivity_joins_diagonals() {
        let img = Bitmap::from_art("#.\n.#\n");
        assert_eq!(component_count_conn(&img, Connectivity::Four), 2);
        assert_eq!(component_count_conn(&img, Connectivity::Eight), 1);
        let l = bfs_labels_conn(&img, Connectivity::Eight);
        assert_eq!(l.get(0, 0), 0);
        assert_eq!(l.get(1, 1), 0, "diagonal neighbor must share the label");
    }

    #[test]
    fn eight_connectivity_staircase_is_one_component() {
        // A full anti-diagonal: n components under 4-conn, one under 8-conn.
        let n = 9;
        let mut img = Bitmap::new(n, n);
        for i in 0..n {
            img.set(i, n - 1 - i, true);
        }
        assert_eq!(component_count_conn(&img, Connectivity::Four), n);
        assert_eq!(component_count_conn(&img, Connectivity::Eight), 1);
        // The component label is the min column-major position: the pixel in
        // the leftmost column is (n-1, 0).
        let l = bfs_labels_conn(&img, Connectivity::Eight);
        assert_eq!(l.get(0, n - 1), (n - 1) as u32);
    }

    #[test]
    fn eight_labels_refine_to_four_partition() {
        // Every 4-connected component is contained in one 8-connected
        // component.
        let img = Bitmap::from_art(
            "#.#.#\n\
             .#.#.\n\
             #.#.#\n\
             .....\n\
             ##.##\n",
        );
        let l4 = bfs_labels_conn(&img, Connectivity::Four);
        let l8 = bfs_labels_conn(&img, Connectivity::Eight);
        let mut map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (r, c) in img.iter_ones_colmajor() {
            let prev = map.insert(l4.get(r, c), l8.get(r, c));
            if let Some(p) = prev {
                assert_eq!(p, l8.get(r, c), "4-component split across 8-components");
            }
        }
    }
}
