//! The one length-prefixed framing implementation shared by every wire
//! surface in the workspace: framed multi-image PBM ingest
//! ([`crate::pbm::write_framed`] / [`crate::pbm::FramedPbmReader`]), the
//! `slapd` request protocol, and the protocol-v2 stream-record frames.
//!
//! A frame is `<decimal byte length>\n<exactly that many body bytes>`.
//! Leading PBM whitespace before the digits is tolerated (so a trailing
//! newline after a previous body parses cleanly), the prefix is accumulated
//! with checked arithmetic against a caller-supplied cap, and the body is
//! read in bounded chunks — a lying prefix costs at most one chunk of memory
//! beyond the bytes that actually arrive.
//!
//! Three independent hand-rolled copies of this logic used to live in
//! `pbm.rs`, `serve::protocol`, and the stream-record codec; they now all
//! call through here, so the byte-soup no-panic property tests in
//! `serve::wire` cover every framing consumer at once.

use std::io::{self, Read, Write};

/// Default upper bound on a declared frame length (2³¹ bytes). Prefixes
/// above the cap are rejected as [`FrameError::Overflow`] before any body
/// byte is read.
pub const MAX_FRAME_BYTES: usize = 1 << 31;

/// Typed failure of the framing layer, independent of what the body holds.
#[derive(Debug)]
pub enum FrameError {
    /// A prefix byte that is neither an ASCII digit nor PBM whitespace.
    BadPrefix(u8),
    /// A declared length above the parser's cap: the prefix is lying,
    /// reject before reading the body.
    Overflow {
        /// The declared (absurd) byte length, saturated at the point the
        /// cap was crossed.
        declared: usize,
    },
    /// Input ended before the declared body (or, with `missing ==
    /// declared`, before the prefix terminator).
    Truncated {
        /// Bytes the prefix declared.
        declared: usize,
        /// Bytes that never arrived.
        missing: usize,
    },
    /// Transport failure underneath the parser.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadPrefix(b) => {
                write!(f, "bad frame length byte {:?}", *b as char)
            }
            FrameError::Overflow { declared } => {
                write!(f, "frame length prefix out of range ({declared})")
            }
            FrameError::Truncated { declared, missing } => {
                write!(f, "frame truncated: {missing} of {declared} bytes missing")
            }
            FrameError::Io(e) => write!(f, "I/O error under the frame parser: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// PBM whitespace (the netpbm definition) — the byte classes a prefix may
/// start with and must end with.
pub fn is_frame_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// Incremental decimal length-prefix parser: feed bytes one at a time, get
/// the parsed length back the moment the terminator arrives. Usable both
/// from blocking readers ([`Frame::read_into`]) and from nonblocking
/// connection state machines that receive bytes as the socket delivers them.
#[derive(Debug)]
pub struct PrefixParser {
    len: Option<usize>,
    max: usize,
}

impl PrefixParser {
    /// A fresh parser rejecting declared lengths above `max`.
    pub fn new(max: usize) -> Self {
        PrefixParser { len: None, max }
    }

    /// Forgets any partially-accumulated digits, ready for the next prefix.
    pub fn reset(&mut self) {
        self.len = None;
    }

    /// Digits accumulated so far, if any — for truncation reporting when
    /// input ends mid-prefix.
    pub fn declared(&self) -> Option<usize> {
        self.len
    }

    /// Consumes one byte. `Ok(None)` means feed more; `Ok(Some(len))` means
    /// the prefix (terminator included) is complete. Whitespace before the
    /// first digit is skipped; whitespace after at least one digit
    /// terminates; anything else is [`FrameError::BadPrefix`].
    pub fn step(&mut self, b: u8) -> Result<Option<usize>, FrameError> {
        if b.is_ascii_digit() {
            let d = (b - b'0') as usize;
            let v = self
                .len
                .unwrap_or(0)
                .checked_mul(10)
                .and_then(|v| v.checked_add(d))
                .filter(|&v| v <= self.max)
                .ok_or(FrameError::Overflow {
                    declared: self.len.unwrap_or(0).saturating_mul(10).saturating_add(d),
                })?;
            self.len = Some(v);
            Ok(None)
        } else if is_frame_space(b) {
            match self.len.take() {
                Some(v) => Ok(Some(v)),
                None => Ok(None),
            }
        } else {
            Err(FrameError::BadPrefix(b))
        }
    }
}

/// The framing codec: static writers and a blocking reader over the
/// `<decimal length>\n<body>` record format.
pub struct Frame;

impl Frame {
    /// Writes the prefix alone: `len` in ASCII decimal plus the `\n`
    /// terminator. Callers streaming a body they don't hold in one buffer
    /// (e.g. [`crate::pbm::write_framed`]) follow with exactly `len` bytes.
    pub fn write_prefix<W: Write>(mut w: W, len: usize) -> io::Result<()> {
        writeln!(w, "{len}")
    }

    /// Writes one complete frame: prefix then body.
    pub fn write<W: Write>(mut w: W, body: &[u8]) -> io::Result<()> {
        Frame::write_prefix(&mut w, body.len())?;
        w.write_all(body)
    }

    /// Reads one frame body into `buf` (cleared first), enforcing `max` on
    /// the declared length. Returns the body length, or `Ok(None)` at a
    /// clean end of input before any digit. The buffer grows only as bytes
    /// actually arrive, so a lying prefix costs at most one 64 KiB chunk
    /// beyond the real data.
    pub fn read_into<R: Read>(
        mut r: R,
        buf: &mut Vec<u8>,
        max: usize,
    ) -> Result<Option<usize>, FrameError> {
        let mut parser = PrefixParser::new(max);
        let mut byte = [0u8; 1];
        let len = loop {
            match r.read(&mut byte) {
                Ok(0) => {
                    return match parser.declared() {
                        None => Ok(None), // clean end between frames
                        Some(declared) => Err(FrameError::Truncated {
                            declared,
                            missing: declared,
                        }),
                    };
                }
                Ok(_) => {
                    if let Some(len) = parser.step(byte[0])? {
                        break len;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        };
        buf.clear();
        let mut chunk = [0u8; 64 * 1024];
        let mut remaining = len;
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(FrameError::Truncated {
                        declared: len,
                        missing: remaining,
                    });
                }
                Ok(got) => {
                    buf.extend_from_slice(&chunk[..got]);
                    remaining -= got;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(Some(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_one(bytes: &[u8]) -> Result<Option<Vec<u8>>, FrameError> {
        let mut buf = Vec::new();
        Frame::read_into(bytes, &mut buf, MAX_FRAME_BYTES).map(|got| got.map(|_| buf))
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut wire = Vec::new();
        Frame::write(&mut wire, b"hello").unwrap();
        Frame::write(&mut wire, b"").unwrap();
        Frame::write(&mut wire, &[0u8; 300]).unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(matches!(
            Frame::read_into(&mut r, &mut buf, 1 << 20),
            Ok(Some(5))
        ));
        assert_eq!(buf, b"hello");
        assert!(matches!(
            Frame::read_into(&mut r, &mut buf, 1 << 20),
            Ok(Some(0))
        ));
        assert!(buf.is_empty());
        assert!(matches!(
            Frame::read_into(&mut r, &mut buf, 1 << 20),
            Ok(Some(300))
        ));
        assert_eq!(buf, vec![0u8; 300]);
        assert!(matches!(
            Frame::read_into(&mut r, &mut buf, 1 << 20),
            Ok(None)
        ));
    }

    #[test]
    fn leading_whitespace_before_the_digits_is_tolerated() {
        assert_eq!(read_one(b"\n\r 2\nok").unwrap().unwrap(), b"ok");
    }

    #[test]
    fn clean_eof_before_any_digit_is_end_of_stream() {
        assert!(read_one(b"").unwrap().is_none());
        assert!(read_one(b"\n \n").unwrap().is_none());
    }

    #[test]
    fn eof_inside_the_prefix_reports_full_truncation() {
        match read_one(b"12") {
            Err(FrameError::Truncated { declared, missing }) => {
                assert_eq!((declared, missing), (12, 12));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eof_inside_the_body_reports_the_missing_bytes() {
        match read_one(b"10\nabc") {
            Err(FrameError::Truncated { declared, missing }) => {
                assert_eq!((declared, missing), (10, 7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn a_non_digit_prefix_byte_is_typed() {
        match read_one(b"xy\n") {
            Err(FrameError::BadPrefix(b'x')) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn a_prefix_above_the_cap_is_rejected_before_the_body() {
        let mut wire = b"99999999999999999999\n".to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        match read_one(&wire) {
            Err(FrameError::Overflow { declared }) => assert!(declared > MAX_FRAME_BYTES),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn the_incremental_parser_matches_the_blocking_reader() {
        let mut p = PrefixParser::new(1 << 20);
        assert!(p.step(b' ').unwrap().is_none());
        assert!(p.step(b'4').unwrap().is_none());
        assert!(p.step(b'2').unwrap().is_none());
        assert_eq!(p.declared(), Some(42));
        assert_eq!(p.step(b'\n').unwrap(), Some(42));
        // Parser is reusable after yielding a length.
        assert!(p.step(b'7').unwrap().is_none());
        assert_eq!(p.step(b'\n').unwrap(), Some(7));
        p.reset();
        assert_eq!(p.declared(), None);
    }
}
