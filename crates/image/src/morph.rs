//! Binary morphology: the low-level stage ahead of component labeling.
//!
//! The paper's introduction situates the SLAP in a pipeline: *"For some
//! low-level image processing tasks, such as median filtering with a small
//! window size or convolution of an image with a small kernel, only a
//! constant amount of memory per processor is required"* — labeling is the
//! *intermediate*-level stage that follows such filters. This module
//! provides the standard binary versions of those local operators (erosion,
//! dilation, opening, closing, and the 3×3 median/majority filter), each a
//! constant-memory window scan that a SLAP PE evaluates in `O(rows)` steps
//! per column with only neighbor-column reads — the constant-memory regime
//! the quoted sentence describes.
//!
//! Foreground grows under dilation and shrinks under erosion; opening
//! (erode, then dilate) removes speckle smaller than the structuring
//! element, closing (dilate, then erode) fills pinholes. The
//! `defect_inspection` example uses an opening to denoise before labeling.

use crate::bitmap::Bitmap;
use crate::connectivity::Connectivity;

/// Erosion with the default border convention (outside counts as
/// *background*, so foreground touching the image edge is peeled — the
/// scipy-style default that makes [`open`] a speckle filter everywhere).
pub fn erode(img: &Bitmap, conn: Connectivity) -> Bitmap {
    erode_with(img, conn, false)
}

/// Erosion: a pixel survives iff it is foreground and every neighbor under
/// `conn` is foreground, with out-of-image neighbors counting as
/// `outside_foreground`. Padding with foreground (`true`) treats the image
/// edge as a continuation rather than an object boundary; [`close`] uses it
/// so that closing never removes original pixels.
pub fn erode_with(img: &Bitmap, conn: Connectivity, outside_foreground: bool) -> Bitmap {
    let (rows, cols) = (img.rows(), img.cols());
    let mut out = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if !img.get(r, c) {
                continue;
            }
            let offsets = conn.offsets();
            let full = offsets.iter().all(|&(dr, dc)| {
                match (r.checked_add_signed(dr), c.checked_add_signed(dc)) {
                    (Some(nr), Some(nc)) if nr < rows && nc < cols => img.get(nr, nc),
                    _ => outside_foreground,
                }
            });
            if full {
                out.set(r, c, true);
            }
        }
    }
    out
}

/// Dilation: a pixel becomes foreground iff it or any neighbor under `conn`
/// is foreground.
pub fn dilate(img: &Bitmap, conn: Connectivity) -> Bitmap {
    let (rows, cols) = (img.rows(), img.cols());
    let mut out = img.clone();
    for r in 0..rows {
        for c in 0..cols {
            if !img.get(r, c) {
                continue;
            }
            for (nr, nc) in conn.neighbors(r, c, rows, cols) {
                out.set(nr, nc, true);
            }
        }
    }
    out
}

/// Opening: erosion followed by dilation — removes foreground speckle
/// smaller than the structuring element while approximately preserving
/// larger shapes.
pub fn open(img: &Bitmap, conn: Connectivity) -> Bitmap {
    dilate(&erode(img, conn), conn)
}

/// Closing: dilation followed by erosion — fills background pinholes and
/// hairline cracks smaller than the structuring element. The erosion pads
/// with foreground, which makes closing *extensive*: every original pixel
/// survives (tested).
pub fn close(img: &Bitmap, conn: Connectivity) -> Bitmap {
    erode_with(&dilate(img, conn), conn, true)
}

/// 3×3 median (= majority) filter, the paper's named example of a
/// constant-memory low-level task: a pixel becomes foreground iff at least
/// 5 of the 9 pixels in its 3×3 window (clipped at the border) are
/// foreground — for binary images the median and the majority coincide.
pub fn median3x3(img: &Bitmap) -> Bitmap {
    let (rows, cols) = (img.rows(), img.cols());
    let mut out = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let mut ones = 0u32;
            let mut total = 0u32;
            for dr in -1isize..=1 {
                for dc in -1isize..=1 {
                    match (r.checked_add_signed(dr), c.checked_add_signed(dc)) {
                        (Some(nr), Some(nc)) if nr < rows && nc < cols => {
                            total += 1;
                            if img.get(nr, nc) {
                                ones += 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
            if 2 * ones > total {
                out.set(r, c, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::oracle::component_count;

    #[test]
    fn erosion_peels_one_layer() {
        let img = Bitmap::from_art(
            "#####\n\
             #####\n\
             #####\n\
             #####\n\
             #####\n",
        );
        let e = erode(&img, Connectivity::Four);
        // border pixels touch the outside -> removed; a 3x3 core remains
        assert_eq!(e.count_ones(), 9);
        assert!(e.get(2, 2) && e.get(1, 1) && e.get(3, 3));
        assert!(!e.get(0, 0) && !e.get(0, 2));
    }

    #[test]
    fn dilation_grows_by_the_structuring_element() {
        let img = Bitmap::from_art(".....\n.....\n..#..\n.....\n.....\n");
        let d4 = dilate(&img, Connectivity::Four);
        assert_eq!(d4.count_ones(), 5); // plus shape
        let d8 = dilate(&img, Connectivity::Eight);
        assert_eq!(d8.count_ones(), 9); // 3x3 block
    }

    #[test]
    fn erosion_and_dilation_are_dual_under_complement() {
        // erode(img) == !dilate(!img) on interior-padded images; with the
        // outside-is-background convention the identity holds exactly when
        // the border is background.
        let mut img = gen::uniform_random(16, 16, 0.5, 9);
        for i in 0..16 {
            img.set(0, i, false);
            img.set(15, i, false);
            img.set(i, 0, false);
            img.set(i, 15, false);
        }
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let a = erode(&img, conn);
            let b = dilate(&img.invert(), conn).invert();
            // compare away from the border (the outside convention differs)
            for r in 1..15 {
                for c in 1..15 {
                    assert_eq!(a.get(r, c), b.get(r, c), "({r},{c}) {conn}");
                }
            }
        }
    }

    #[test]
    fn opening_removes_speckle_but_keeps_blocks() {
        let img = Bitmap::from_art(
            "#.......\n\
             ...####.\n\
             ...####.\n\
             ...####.\n\
             .#......\n",
        );
        let o = open(&img, Connectivity::Four);
        assert!(!o.get(0, 0), "isolated speckle must vanish");
        assert!(!o.get(4, 1), "isolated speckle must vanish");
        assert!(o.get(2, 4) || o.get(2, 5), "block core must survive");
    }

    #[test]
    fn closing_fills_pinholes() {
        let img = Bitmap::from_art(
            "#####\n\
             ##.##\n\
             #####\n",
        );
        let c = close(&img, Connectivity::Four);
        assert!(c.get(1, 2), "pinhole must be filled");
        assert_eq!(
            component_count(&c.invert()),
            component_count(&img.invert()) - 1
        );
    }

    #[test]
    fn opening_never_adds_and_closing_never_removes() {
        let img = gen::uniform_random(24, 24, 0.5, 4);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let o = open(&img, conn);
            for (r, c) in o.iter_ones_colmajor() {
                assert!(img.get(r, c), "opening invented a pixel at ({r},{c})");
            }
            let cl = close(&img, conn);
            for (r, c) in img.iter_ones_colmajor() {
                assert!(cl.get(r, c), "closing dropped a pixel at ({r},{c})");
            }
        }
    }

    #[test]
    fn degenerate_dimensions_survive_every_operator() {
        // 1×1, single-row, and single-column images exercise the regime
        // where the 3×3 neighborhoods fall almost entirely outside the
        // frame; every operator must stay total and keep the dimensions.
        for (rows, cols) in [(1usize, 1usize), (1, 9), (9, 1), (1, 130), (130, 1)] {
            let img = gen::uniform_random(rows, cols, 0.6, (rows * 131 + cols) as u64);
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for (name, out) in [
                    ("erode", erode(&img, conn)),
                    ("dilate", dilate(&img, conn)),
                    ("open", open(&img, conn)),
                    ("close", close(&img, conn)),
                ] {
                    assert_eq!(
                        (out.rows(), out.cols()),
                        (rows, cols),
                        "{name} {rows}x{cols} {conn}"
                    );
                }
            }
            let m = median3x3(&img);
            assert_eq!((m.rows(), m.cols()), (rows, cols), "median {rows}x{cols}");
        }
    }

    #[test]
    fn degenerate_line_images_erode_and_dilate_correctly() {
        // On a 1×N image 4-conn erosion sees the outside above and below,
        // so with the outside-is-background convention everything erodes;
        // dilation is the 1-D run widening in both conventions.
        let line = Bitmap::from_art("..###..#.\n");
        assert_eq!(erode(&line, Connectivity::Four).count_ones(), 0);
        let want = Bitmap::from_art(".########\n");
        assert_eq!(dilate(&line, Connectivity::Four), want);
        // The transposed case must behave identically by symmetry.
        let col = line.transpose();
        assert_eq!(erode(&col, Connectivity::Four).count_ones(), 0);
        assert_eq!(dilate(&col, Connectivity::Four), want.transpose());
    }

    #[test]
    fn single_pixel_image_is_a_fixed_point_of_closing() {
        for fg in [true, false] {
            let mut img = Bitmap::new(1, 1);
            img.set(0, 0, fg);
            assert_eq!(close(&img, Connectivity::Four), img);
            assert_eq!(close(&img, Connectivity::Eight), img);
            assert_eq!(open(&img, Connectivity::Eight).count_ones(), 0);
        }
    }

    #[test]
    fn median_removes_salt_and_pepper() {
        // a solid block with one hole and one speck of salt
        let mut img = Bitmap::from_art(
            "......\n\
             .####.\n\
             .####.\n\
             .####.\n\
             ......\n",
        );
        img.set(2, 2, false); // pepper inside the block
        img.set(0, 0, true); // salt in the background
        let m = median3x3(&img);
        assert!(m.get(2, 2), "pepper must be filled");
        assert!(!m.get(0, 0), "salt must be removed");
    }

    #[test]
    fn median_is_idempotent_on_clean_blocks() {
        let img = Bitmap::from_art(
            "......\n\
             .####.\n\
             .####.\n\
             .####.\n\
             .####.\n\
             ......\n",
        );
        let once = median3x3(&img);
        let twice = median3x3(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn morphology_reduces_component_count_of_noise() {
        let img = gen::uniform_random(48, 48, 0.3, 11);
        let opened = open(&img, Connectivity::Four);
        assert!(
            component_count(&opened) < component_count(&img) / 2,
            "opening should kill most speckle components"
        );
    }
}
