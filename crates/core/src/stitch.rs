//! Step 3 of Algorithm CC: the per-PE stitch of the left- and
//! right-connected labelings.
//!
//! Each PE holds, for every foreground row `j` of its column, a left label
//! `leftlabel[j]` (minimum column-major position of the pixel's component
//! within columns `0..=c`) and a right label `rightlabel[j]` (a distinct
//! label space — offset by the image size — identifying the pixel's
//! component within columns `c..`). The paper: *"perform component labeling
//! on the graph with nodes `{leftlabel[j]}` ∪ `{rightlabel[j]}` and edges
//! `{(leftlabel[j], rightlabel[j])}`"*, with each component taking *"the least
//! label seen on its pixels"*.
//!
//! Why this yields a globally consistent labeling: for a global component
//! `K` meeting column `c`, the rows of `K` in the column are grouped by the
//! left partition and by the right partition, and any two rows of `K` are
//! linked through alternating left/right segments of a connecting path, so
//! all of `K`'s labels land in one stitch component. The minimum node is a
//! left label (right labels are offset above every left label), and the
//! minimum left label at column `c` equals `min position of K within columns
//! 0..=c`, which — since `c` is at or right of `K`'s leftmost column — is the
//! global minimum position of `K`. Every column therefore computes the same
//! number for `K`, and it is exactly the oracle's label.

use crate::NIL;
use slap_unionfind::{RankHalvingUf, UnionFind};
use std::collections::HashMap;

/// Stitches one column. `left[j]`/`right[j]` are the two labels of row `j`
/// ([`NIL`] on background rows; the caller has already offset the right
/// label space). Returns the final per-row labels and the units of local
/// work (hash/map touches count 1 unit, union–find ops their metered cost).
pub fn stitch_column(left: &[u32], right: &[u32]) -> (Vec<u32>, u64) {
    assert_eq!(left.len(), right.len());
    let rows = left.len();
    let mut units = 0u64;
    // dense-id the label values
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut values: Vec<u32> = Vec::new();
    let intern = |v: u32, dense: &mut HashMap<u32, u32>, values: &mut Vec<u32>| -> u32 {
        *dense.entry(v).or_insert_with(|| {
            values.push(v);
            values.len() as u32 - 1
        })
    };
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(rows);
    for j in 0..rows {
        units += 1;
        match (left[j], right[j]) {
            (NIL, NIL) => {}
            (l, r) if l != NIL && r != NIL => {
                let dl = intern(l, &mut dense, &mut values);
                let dr = intern(r, &mut dense, &mut values);
                units += 2;
                edges.push((dl, dr));
            }
            _ => panic!("row {j}: left/right foreground disagree"),
        }
    }
    let mut uf = RankHalvingUf::with_elements(values.len());
    for &(a, b) in &edges {
        uf.union(a as usize, b as usize);
    }
    // least label per stitch component
    let mut min_label = vec![NIL; values.len()];
    for (id, &value) in values.iter().enumerate() {
        let r = uf.find(id);
        units += 1;
        if value < min_label[r] {
            min_label[r] = value;
        }
    }
    units += uf.cost();
    // per-row readout
    let mut out = vec![NIL; rows];
    for j in 0..rows {
        units += 1;
        if left[j] != NIL {
            let dl = dense[&left[j]] as usize;
            let r = uf.find(dl);
            out[j] = min_label[r];
            units += 1;
        }
    }
    units += uf.cost();
    (out, units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_column_is_all_background() {
        let (out, _) = stitch_column(&[NIL; 4], &[NIL; 4]);
        assert_eq!(out, vec![NIL; 4]);
    }

    #[test]
    fn single_edge_takes_min() {
        // one row: left label 5, right label 100
        let (out, _) = stitch_column(&[5], &[100]);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn right_labels_bridge_left_sets() {
        // rows 0 and 2 have different left labels (3, 7) but one right label
        // (100): the U-shape opening left. Both rows must end at min = 3.
        let left = [3, NIL, 7];
        let right = [100, NIL, 100];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![3, NIL, 3]);
    }

    #[test]
    fn left_labels_bridge_right_sets() {
        // mirror case: one left label, two right labels.
        let left = [4, NIL, 4];
        let right = [100, NIL, 200];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![4, NIL, 4]);
    }

    #[test]
    fn disjoint_components_stay_disjoint() {
        let left = [1, NIL, 9];
        let right = [100, NIL, 200];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![1, NIL, 9]);
    }

    #[test]
    fn chain_of_bridges_collapses_to_global_min() {
        // left sets {0},{2},{4} with labels 10,2,30; right sets bridge
        // (0,2) and (2,4): all collapse to 2.
        let left = [10, NIL, 2, NIL, 30];
        let right = [100, NIL, 100, NIL, 200];
        // rows 2 and 4 need bridging too: give row 2 both bridges by a
        // second edge via its right label… use right: 0-2 share 100; 2-4
        // share? row2 right=100, row4 right=200: not bridged yet. Add a row
        // that shares left with row 4 and right with row 2:
        let left2 = [10, NIL, 2, 30, 30];
        let right2 = [100, NIL, 100, 100, 200];
        let (out, _) = stitch_column(&left2, &right2);
        assert_eq!(out, vec![2, NIL, 2, 2, 2]);
        let _ = (left, right);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mask_mismatch_is_detected() {
        stitch_column(&[1, NIL], &[NIL, NIL]);
    }
}
