//! Step 3 of Algorithm CC: the per-PE stitch of the left- and
//! right-connected labelings — plus [`stitch_bands`], the same union/min
//! argument generalized from column seams to horizontal band seams (the
//! reconciliation step of the host-side strip-parallel engine,
//! `slap_image::fast::parallel`).
//!
//! Each PE holds, for every foreground row `j` of its column, a left label
//! `leftlabel[j]` (minimum column-major position of the pixel's component
//! within columns `0..=c`) and a right label `rightlabel[j]` (a distinct
//! label space — offset by the image size — identifying the pixel's
//! component within columns `c..`). The paper: *"perform component labeling
//! on the graph with nodes `{leftlabel[j]}` ∪ `{rightlabel[j]}` and edges
//! `{(leftlabel[j], rightlabel[j])}`"*, with each component taking *"the least
//! label seen on its pixels"*.
//!
//! Why this yields a globally consistent labeling: for a global component
//! `K` meeting column `c`, the rows of `K` in the column are grouped by the
//! left partition and by the right partition, and any two rows of `K` are
//! linked through alternating left/right segments of a connecting path, so
//! all of `K`'s labels land in one stitch component. The minimum node is a
//! left label (right labels are offset above every left label), and the
//! minimum left label at column `c` equals `min position of K within columns
//! 0..=c`, which — since `c` is at or right of `K`'s leftmost column — is the
//! global minimum position of `K`. Every column therefore computes the same
//! number for `K`, and it is exactly the oracle's label.

use crate::NIL;
use slap_image::{Connectivity, LabelGrid};
use slap_unionfind::{RankHalvingUf, UnionFind};
use std::collections::HashMap;

/// Stitches one column. `left[j]`/`right[j]` are the two labels of row `j`
/// ([`NIL`] on background rows; the caller has already offset the right
/// label space). Returns the final per-row labels and the units of local
/// work (hash/map touches count 1 unit, union–find ops their metered cost).
pub fn stitch_column(left: &[u32], right: &[u32]) -> (Vec<u32>, u64) {
    assert_eq!(left.len(), right.len());
    let rows = left.len();
    let mut units = 0u64;
    // dense-id the label values
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut values: Vec<u32> = Vec::new();
    let intern = |v: u32, dense: &mut HashMap<u32, u32>, values: &mut Vec<u32>| -> u32 {
        *dense.entry(v).or_insert_with(|| {
            values.push(v);
            values.len() as u32 - 1
        })
    };
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(rows);
    for j in 0..rows {
        units += 1;
        match (left[j], right[j]) {
            (NIL, NIL) => {}
            (l, r) if l != NIL && r != NIL => {
                let dl = intern(l, &mut dense, &mut values);
                let dr = intern(r, &mut dense, &mut values);
                units += 2;
                edges.push((dl, dr));
            }
            _ => panic!("row {j}: left/right foreground disagree"),
        }
    }
    let mut uf = RankHalvingUf::with_elements(values.len());
    for &(a, b) in &edges {
        uf.union(a as usize, b as usize);
    }
    // least label per stitch component
    let mut min_label = vec![NIL; values.len()];
    for (id, &value) in values.iter().enumerate() {
        let r = uf.find(id);
        units += 1;
        if value < min_label[r] {
            min_label[r] = value;
        }
    }
    units += uf.cost();
    // per-row readout
    let mut out = vec![NIL; rows];
    for j in 0..rows {
        units += 1;
        if left[j] != NIL {
            let dl = dense[&left[j]] as usize;
            let r = uf.find(dl);
            out[j] = min_label[r];
            units += 1;
        }
    }
    units += uf.cost();
    (out, units)
}

/// The paper's stitch argument generalized from column seams to a horizontal
/// band seam: merges two *independently labeled* vertical halves of an image
/// into the global canonical labeling.
///
/// `top` and `bottom` are labelings of the two bands in the paper's
/// convention — each component labeled with its minimum **band-local**
/// column-major position (`col * band_rows + row_in_band`), exactly what
/// [`slap_image::fast_labels_conn`] produces on the band's sub-image. The
/// stitch is the same construction as [`stitch_column`], rotated 90°:
/// component labeling on the graph whose nodes are the band-local labels and
/// whose edges join the label pairs adjacent across the seam under `conn`,
/// with each merged component taking the least label seen.
///
/// Two facts make the output globally canonical (mirroring the module-level
/// argument for columns): band-local column-major order agrees with global
/// column-major order *within a band*, so converting a band component's
/// local minimum to global coordinates yields that component's true global
/// minimum over its band; and a merged component's global minimum pixel lies
/// in one of its constituent band components, so the minimum of the
/// converted candidates is exact.
///
/// This is both the specification the strip-parallel engine's seam pass must
/// meet (the differential suites pit them against each other) and a usable
/// two-band reference reducer. Unlike [`stitch_column`] it is host-side
/// machinery, so it meters no work units.
pub fn stitch_bands(top: &LabelGrid, bottom: &LabelGrid, conn: Connectivity) -> LabelGrid {
    assert_eq!(
        top.cols(),
        bottom.cols(),
        "bands must share the column count"
    );
    let cols = top.cols();
    let (tr, br) = (top.rows(), bottom.rows());
    let rows = tr + br;
    // Band-local label -> global column-major position.
    let global_top = |l: u32| (l / tr as u32) * rows as u32 + (l % tr as u32);
    let global_bot = |l: u32| (l / br as u32) * rows as u32 + tr as u32 + (l % br as u32);
    // Intern the labels that appear on the seam; `true` keys the bottom band.
    let mut dense: HashMap<(bool, u32), u32> = HashMap::new();
    let mut values: Vec<u32> = Vec::new(); // dense id -> global position
    let mut intern = |side: bool, l: u32, values: &mut Vec<u32>| -> u32 {
        *dense.entry((side, l)).or_insert_with(|| {
            values.push(if side { global_bot(l) } else { global_top(l) });
            values.len() as u32 - 1
        })
    };
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let reach = match conn {
        Connectivity::Four => 0isize,
        Connectivity::Eight => 1isize,
    };
    for c in 0..cols as isize {
        let t = top.get(tr - 1, c as usize);
        if t == NIL {
            continue;
        }
        for bc in c - reach..=c + reach {
            if bc < 0 || bc >= cols as isize {
                continue;
            }
            let b = bottom.get(0, bc as usize);
            if b != NIL {
                let dt = intern(false, t, &mut values);
                let db = intern(true, b, &mut values);
                edges.push((dt, db));
            }
        }
    }
    let mut uf = RankHalvingUf::with_elements(values.len());
    for &(a, b) in &edges {
        uf.union(a as usize, b as usize);
    }
    // Least global position per stitched component.
    let mut min_label = vec![NIL; values.len()];
    for (id, &value) in values.iter().enumerate() {
        let r = uf.find(id);
        if value < min_label[r] {
            min_label[r] = value;
        }
    }
    // Readout: seam-connected labels resolve through the union-find; every
    // other component keeps its (converted) band-local minimum.
    let mut out = LabelGrid::new_background(rows, cols);
    let emit = |out: &mut LabelGrid,
                band: &LabelGrid,
                side: bool,
                row_off: usize,
                uf: &mut RankHalvingUf| {
        for r in 0..band.rows() {
            for c in 0..cols {
                let l = band.get(r, c);
                if l == NIL {
                    continue;
                }
                let resolved = match dense.get(&(side, l)) {
                    Some(&id) => min_label[uf.find(id as usize)],
                    None if side => global_bot(l),
                    None => global_top(l),
                };
                out.set(r + row_off, c, resolved);
            }
        }
    };
    emit(&mut out, top, false, 0, &mut uf);
    emit(&mut out, bottom, true, tr, &mut uf);
    out
}

/// Per-level cost record of a hierarchical [`stitch_grid`] merge: the seam
/// boundaries the level processed, the adjacent label pairs it examined, and
/// how many actually joined two distinct classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StitchLevel {
    /// Position in the schedule: vertical levels first, then horizontal.
    pub level: usize,
    /// `true` for vertical (tile-column) seams, `false` for horizontal
    /// (full-width band) seams.
    pub vertical: bool,
    /// Seam segments processed (boundary × band for vertical levels, whole
    /// boundaries for horizontal ones).
    pub seams: usize,
    /// Cross-seam adjacent label pairs examined.
    pub edges: usize,
    /// Pairs that joined two previously distinct stitch classes.
    pub unions: usize,
}

/// The band stitch generalized to a full 2-D grid: merges an `R × C` grid of
/// *independently labeled* tiles into the global canonical labeling,
/// processing seams in hierarchical pairwise-doubling order.
///
/// `tiles[i][j]` is the labeling of the tile in band `i`, tile-column `j`,
/// in the paper's convention over the tile's own coordinates (minimum
/// tile-local column-major position, exactly what
/// [`slap_image::fast_labels_conn`] produces on the cropped sub-image).
/// Bands must agree on heights across a row of tiles and widths down a
/// column.
///
/// The merge schedule is the one the run-level tiled engine
/// (`slap_image::fast::tiled`) uses, making this the independent
/// specification its differential suite checks against: level `ℓ` of the
/// vertical phase joins the tile-column boundaries at odd multiples of
/// `2^ℓ` (each within every band, with ±1-row diagonal reach at
/// 8-connectivity), then the horizontal phase joins band boundaries the
/// same way over the **full image width** — which is what catches diagonal
/// adjacencies straddling a four-corner point. Union order cannot change
/// the final partition; the hierarchy exists so each level's cost is
/// attributable ([`StitchLevel`]).
///
/// Correctness of the minima mirrors [`stitch_bands`]: tile-local
/// column-major order agrees with global column-major order within a tile,
/// so converting a tile component's local minimum yields its true global
/// minimum over that tile; a merged component's global minimum pixel lies in
/// one of its constituent tile components, every one of which touches a seam
/// and is therefore a node of the stitch graph.
pub fn stitch_grid(tiles: &[Vec<LabelGrid>], conn: Connectivity) -> (LabelGrid, Vec<StitchLevel>) {
    let ty = tiles.len();
    assert!(ty > 0, "grid must have at least one band");
    let tx = tiles[0].len();
    assert!(
        tiles.iter().all(|row| row.len() == tx) && tx > 0,
        "grid must be rectangular and non-empty"
    );
    let heights: Vec<usize> = (0..ty).map(|i| tiles[i][0].rows()).collect();
    let widths: Vec<usize> = (0..tx).map(|j| tiles[0][j].cols()).collect();
    for (i, row) in tiles.iter().enumerate() {
        for (j, t) in row.iter().enumerate() {
            assert_eq!(t.rows(), heights[i], "band {i} disagrees on height");
            assert_eq!(t.cols(), widths[j], "tile column {j} disagrees on width");
        }
    }
    let mut row_off = vec![0usize; ty + 1];
    for i in 0..ty {
        row_off[i + 1] = row_off[i] + heights[i];
    }
    let mut col_off = vec![0usize; tx + 1];
    for j in 0..tx {
        col_off[j + 1] = col_off[j] + widths[j];
    }
    let (rows, cols) = (row_off[ty], col_off[tx]);
    let mut out = LabelGrid::new_background(rows, cols); // asserts u32 label space

    // Tile-local label -> global column-major position.
    let global = |i: usize, j: usize, l: u32| -> u32 {
        let trows = heights[i] as u32;
        (col_off[j] as u32 + l / trows) * rows as u32 + row_off[i] as u32 + l % trows
    };
    // Intern the labels that appear on any seam, keyed by flat tile index.
    let mut dense: HashMap<(u32, u32), u32> = HashMap::new();
    let mut values: Vec<u32> = Vec::new(); // dense id -> global position
    let mut intern = |i: usize, j: usize, l: u32, values: &mut Vec<u32>| -> u32 {
        *dense.entry(((i * tx + j) as u32, l)).or_insert_with(|| {
            values.push(global(i, j, l));
            values.len() as u32 - 1
        })
    };

    // Collect each level's edge list first (interning nodes), then union
    // level by level so effective joins are attributable.
    let reach = match conn {
        Connectivity::Four => 0isize,
        Connectivity::Eight => 1isize,
    };
    struct LevelEdges {
        vertical: bool,
        seams: usize,
        edges: Vec<(u32, u32)>,
    }
    let mut levels: Vec<LevelEdges> = Vec::new();
    let doubling = |n: usize| {
        let mut bounds: Vec<Vec<usize>> = Vec::new();
        let mut half = 1usize;
        while half < n {
            bounds.push((half..n).step_by(half * 2).collect());
            half *= 2;
        }
        bounds
    };
    for boundaries in doubling(tx) {
        let mut level = LevelEdges {
            vertical: true,
            seams: 0,
            edges: Vec::new(),
        };
        for &j in &boundaries {
            for i in 0..ty {
                level.seams += 1;
                let (left, right) = (&tiles[i][j - 1], &tiles[i][j]);
                let h = heights[i] as isize;
                for r in 0..h {
                    let l = left.get(r as usize, widths[j - 1] - 1);
                    if l == NIL {
                        continue;
                    }
                    for rr in r - reach..=r + reach {
                        if rr < 0 || rr >= h {
                            continue;
                        }
                        let b = right.get(rr as usize, 0);
                        if b != NIL {
                            let dl = intern(i, j - 1, l, &mut values);
                            let dr = intern(i, j, b, &mut values);
                            level.edges.push((dl, dr));
                        }
                    }
                }
            }
        }
        levels.push(level);
    }
    for boundaries in doubling(ty) {
        let mut level = LevelEdges {
            vertical: false,
            seams: 0,
            edges: Vec::new(),
        };
        for &i in &boundaries {
            level.seams += 1;
            // Full-width seam between bands i-1 and i: columns map to tiles
            // on each side independently, so cross-corner diagonals are
            // ordinary (c, c') pairs here.
            let tile_of = |c: usize| col_off.partition_point(|&o| o <= c) - 1;
            for c in 0..cols as isize {
                let jt = tile_of(c as usize);
                let t = tiles[i - 1][jt].get(heights[i - 1] - 1, c as usize - col_off[jt]);
                if t == NIL {
                    continue;
                }
                for bc in c - reach..=c + reach {
                    if bc < 0 || bc >= cols as isize {
                        continue;
                    }
                    let jb = tile_of(bc as usize);
                    let b = tiles[i][jb].get(0, bc as usize - col_off[jb]);
                    if b != NIL {
                        let dt = intern(i - 1, jt, t, &mut values);
                        let db = intern(i, jb, b, &mut values);
                        level.edges.push((dt, db));
                    }
                }
            }
        }
        levels.push(level);
    }

    let mut uf = RankHalvingUf::with_elements(values.len());
    let mut costs = Vec::with_capacity(levels.len());
    for (lvl, level) in levels.iter().enumerate() {
        let mut unions = 0usize;
        for &(a, b) in &level.edges {
            if uf.find(a as usize) != uf.find(b as usize) {
                unions += 1;
            }
            uf.union(a as usize, b as usize);
        }
        costs.push(StitchLevel {
            level: lvl,
            vertical: level.vertical,
            seams: level.seams,
            edges: level.edges.len(),
            unions,
        });
    }

    // Least global position per stitched class, then emit.
    let mut min_label = vec![NIL; values.len()];
    for (id, &value) in values.iter().enumerate() {
        let r = uf.find(id);
        if value < min_label[r] {
            min_label[r] = value;
        }
    }
    for i in 0..ty {
        for j in 0..tx {
            let tile = &tiles[i][j];
            for r in 0..heights[i] {
                for c in 0..widths[j] {
                    let l = tile.get(r, c);
                    if l == NIL {
                        continue;
                    }
                    let resolved = match dense.get(&(((i * tx + j) as u32), l)) {
                        Some(&id) => min_label[uf.find(id as usize)],
                        None => global(i, j, l),
                    };
                    out.set(row_off[i] + r, col_off[j] + c, resolved);
                }
            }
        }
    }
    (out, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels_conn, gen, Bitmap};

    /// Crops rows `lo..hi` of `img` into a standalone band bitmap.
    fn band(img: &Bitmap, lo: usize, hi: usize) -> Bitmap {
        let mut out = Bitmap::new(hi - lo, img.cols());
        for r in lo..hi {
            for c in 0..img.cols() {
                if img.get(r, c) {
                    out.set(r - lo, c, true);
                }
            }
        }
        out
    }

    /// Labeling each half independently then stitching must reproduce the
    /// whole-image labeling exactly.
    fn check_split(img: &Bitmap, split: usize, conn: Connectivity) {
        let top = fast_labels_conn(&band(img, 0, split), conn);
        let bottom = fast_labels_conn(&band(img, split, img.rows()), conn);
        let stitched = stitch_bands(&top, &bottom, conn);
        assert_eq!(
            stitched,
            fast_labels_conn(img, conn),
            "split={split} conn={conn:?}"
        );
    }

    #[test]
    fn band_stitch_matches_whole_image_labeling() {
        for name in ["random50", "blobs", "checker", "spiral", "comb"] {
            let img = gen::by_name(name, 24, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for split in [1, 7, 12, 23] {
                    check_split(&img, split, conn);
                }
            }
        }
    }

    #[test]
    fn band_stitch_bridges_only_under_eight_connectivity() {
        // Two diagonal pixels facing each other across the seam.
        let img = Bitmap::from_art("#.\n.#\n");
        check_split(&img, 1, Connectivity::Four);
        check_split(&img, 1, Connectivity::Eight);
        let four = stitch_bands(
            &fast_labels_conn(&band(&img, 0, 1), Connectivity::Four),
            &fast_labels_conn(&band(&img, 1, 2), Connectivity::Four),
            Connectivity::Four,
        );
        assert_eq!(four.component_count(), 2);
        let eight = stitch_bands(
            &fast_labels_conn(&band(&img, 0, 1), Connectivity::Eight),
            &fast_labels_conn(&band(&img, 1, 2), Connectivity::Eight),
            Connectivity::Eight,
        );
        assert_eq!(eight.component_count(), 1);
    }

    #[test]
    fn band_stitch_collapses_a_u_shape_to_the_global_min() {
        // A U opening upward: the two arms are separate components in the
        // top band and merge through the bottom band's base.
        let img = Bitmap::from_art("#.#\n#.#\n###\n");
        check_split(&img, 2, Connectivity::Four);
    }

    #[test]
    fn empty_column_is_all_background() {
        let (out, _) = stitch_column(&[NIL; 4], &[NIL; 4]);
        assert_eq!(out, vec![NIL; 4]);
    }

    #[test]
    fn single_edge_takes_min() {
        // one row: left label 5, right label 100
        let (out, _) = stitch_column(&[5], &[100]);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn right_labels_bridge_left_sets() {
        // rows 0 and 2 have different left labels (3, 7) but one right label
        // (100): the U-shape opening left. Both rows must end at min = 3.
        let left = [3, NIL, 7];
        let right = [100, NIL, 100];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![3, NIL, 3]);
    }

    #[test]
    fn left_labels_bridge_right_sets() {
        // mirror case: one left label, two right labels.
        let left = [4, NIL, 4];
        let right = [100, NIL, 200];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![4, NIL, 4]);
    }

    #[test]
    fn disjoint_components_stay_disjoint() {
        let left = [1, NIL, 9];
        let right = [100, NIL, 200];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![1, NIL, 9]);
    }

    #[test]
    fn chain_of_bridges_collapses_to_global_min() {
        // left sets {0},{2},{4} with labels 10,2,30; right sets bridge
        // (0,2) and (2,4): all collapse to 2.
        let left = [10, NIL, 2, NIL, 30];
        let right = [100, NIL, 100, NIL, 200];
        // rows 2 and 4 need bridging too: give row 2 both bridges by a
        // second edge via its right label… use right: 0-2 share 100; 2-4
        // share? row2 right=100, row4 right=200: not bridged yet. Add a row
        // that shares left with row 4 and right with row 2:
        let left2 = [10, NIL, 2, 30, 30];
        let right2 = [100, NIL, 100, 100, 200];
        let (out, _) = stitch_column(&left2, &right2);
        assert_eq!(out, vec![2, NIL, 2, 2, 2]);
        let _ = (left, right);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mask_mismatch_is_detected() {
        stitch_column(&[1, NIL], &[NIL, NIL]);
    }

    /// Crops the rectangle `rows lo..hi × cols clo..chi` into a standalone
    /// tile bitmap.
    fn tile(img: &Bitmap, lo: usize, hi: usize, clo: usize, chi: usize) -> Bitmap {
        let mut out = Bitmap::new(hi - lo, chi - clo);
        for r in lo..hi {
            for c in clo..chi {
                if img.get(r, c) {
                    out.set(r - lo, c - clo, true);
                }
            }
        }
        out
    }

    /// Cuts `img` into a `ty × tx` grid of independently labeled tiles
    /// (balanced cuts, remainder to the leading tiles).
    fn label_grid_tiles(
        img: &Bitmap,
        ty: usize,
        tx: usize,
        conn: Connectivity,
    ) -> Vec<Vec<LabelGrid>> {
        let cut = |n: usize, k: usize| -> Vec<usize> {
            let mut offs = vec![0usize];
            for i in 0..k {
                offs.push(offs[i] + n / k + usize::from(i < n % k));
            }
            offs
        };
        let rcut = cut(img.rows(), ty);
        let ccut = cut(img.cols(), tx);
        (0..ty)
            .map(|i| {
                (0..tx)
                    .map(|j| {
                        fast_labels_conn(
                            &tile(img, rcut[i], rcut[i + 1], ccut[j], ccut[j + 1]),
                            conn,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn grid_stitch_matches_whole_image_labeling() {
        for name in ["random50", "blobs", "checker", "spiral", "comb"] {
            let img = gen::by_name(name, 25, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for (ty, tx) in [(2, 2), (1, 3), (3, 1), (3, 3), (4, 2)] {
                    let tiles = label_grid_tiles(&img, ty, tx, conn);
                    let (stitched, _) = stitch_grid(&tiles, conn);
                    assert_eq!(
                        stitched,
                        fast_labels_conn(&img, conn),
                        "{name} {ty}x{tx} {conn:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_stitch_agrees_with_the_run_level_tiled_engine() {
        // Two independent implementations of the same decomposition: the
        // pixel-level stitcher here and the run-arena engine in
        // slap_image::fast::tiled must land on identical output.
        use slap_image::tiled_labels_conn;
        for name in ["maze", "blobs", "random50"] {
            let img = gen::by_name(name, 33, 11).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for (ty, tx) in [(2, 2), (4, 4), (1, 4), (4, 1)] {
                    let tiles = label_grid_tiles(&img, ty, tx, conn);
                    let (stitched, _) = stitch_grid(&tiles, conn);
                    let engine = tiled_labels_conn(&img, conn, ty, tx, 2);
                    assert_eq!(stitched, engine, "{name} {ty}x{tx} {conn:?}");
                }
            }
        }
    }

    #[test]
    fn grid_stitch_joins_four_corner_diagonals() {
        // A 2×2 cut through the center of a diagonal pair: the two pixels
        // sit in opposite corner tiles and only the full-width horizontal
        // seam with ±1-column reach can join them.
        for art in ["#.\n.#\n", ".#\n#.\n"] {
            let img = Bitmap::from_art(art);
            let tiles = label_grid_tiles(&img, 2, 2, Connectivity::Eight);
            let (eight, _) = stitch_grid(&tiles, Connectivity::Eight);
            assert_eq!(eight.component_count(), 1, "{art:?}");
            let tiles = label_grid_tiles(&img, 2, 2, Connectivity::Four);
            let (four, _) = stitch_grid(&tiles, Connectivity::Four);
            assert_eq!(four.component_count(), 2, "{art:?}");
        }
    }

    #[test]
    fn grid_stitch_levels_follow_the_pairwise_doubling_schedule() {
        let img = gen::by_name("maze", 48, 3).unwrap();
        let tiles = label_grid_tiles(&img, 4, 4, Connectivity::Four);
        let (stitched, levels) = stitch_grid(&tiles, Connectivity::Four);
        assert_eq!(stitched, fast_labels_conn(&img, Connectivity::Four));
        let shape: Vec<(usize, bool, usize)> = levels
            .iter()
            .map(|l| (l.level, l.vertical, l.seams))
            .collect();
        // 4 tile columns: level 0 joins boundaries {1, 3} across 4 bands,
        // level 1 joins {2}; then the same halving over the 4 bands.
        assert_eq!(
            shape,
            vec![(0, true, 8), (1, true, 4), (2, false, 2), (3, false, 1)]
        );
        // Every stitch that matters is attributed to exactly one level: the
        // per-tile component count collapses to the final count through the
        // recorded effective unions.
        let per_tile: usize = tiles.iter().flatten().map(LabelGrid::component_count).sum();
        let unions: usize = levels.iter().map(|l| l.unions).sum();
        assert_eq!(per_tile - unions, stitched.component_count());
    }

    #[test]
    fn grid_stitch_handles_uneven_tile_dimensions() {
        // 25 rows over 4 bands and 25 cols over 3 tile columns exercise the
        // remainder-bearing offsets in both axes.
        let img = gen::by_name("blobs", 25, 9).unwrap();
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let tiles = label_grid_tiles(&img, 4, 3, conn);
            let (stitched, _) = stitch_grid(&tiles, conn);
            assert_eq!(stitched, fast_labels_conn(&img, conn), "{conn:?}");
        }
    }

    #[test]
    fn single_tile_grid_is_the_identity() {
        let img = gen::by_name("spiral", 16, 2).unwrap();
        let tiles = label_grid_tiles(&img, 1, 1, Connectivity::Four);
        let (stitched, levels) = stitch_grid(&tiles, Connectivity::Four);
        assert_eq!(stitched, fast_labels_conn(&img, Connectivity::Four));
        assert!(levels.is_empty());
    }
}
