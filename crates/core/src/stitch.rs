//! Step 3 of Algorithm CC: the per-PE stitch of the left- and
//! right-connected labelings — plus [`stitch_bands`], the same union/min
//! argument generalized from column seams to horizontal band seams (the
//! reconciliation step of the host-side strip-parallel engine,
//! `slap_image::fast::parallel`).
//!
//! Each PE holds, for every foreground row `j` of its column, a left label
//! `leftlabel[j]` (minimum column-major position of the pixel's component
//! within columns `0..=c`) and a right label `rightlabel[j]` (a distinct
//! label space — offset by the image size — identifying the pixel's
//! component within columns `c..`). The paper: *"perform component labeling
//! on the graph with nodes `{leftlabel[j]}` ∪ `{rightlabel[j]}` and edges
//! `{(leftlabel[j], rightlabel[j])}`"*, with each component taking *"the least
//! label seen on its pixels"*.
//!
//! Why this yields a globally consistent labeling: for a global component
//! `K` meeting column `c`, the rows of `K` in the column are grouped by the
//! left partition and by the right partition, and any two rows of `K` are
//! linked through alternating left/right segments of a connecting path, so
//! all of `K`'s labels land in one stitch component. The minimum node is a
//! left label (right labels are offset above every left label), and the
//! minimum left label at column `c` equals `min position of K within columns
//! 0..=c`, which — since `c` is at or right of `K`'s leftmost column — is the
//! global minimum position of `K`. Every column therefore computes the same
//! number for `K`, and it is exactly the oracle's label.

use crate::NIL;
use slap_image::{Connectivity, LabelGrid};
use slap_unionfind::{RankHalvingUf, UnionFind};
use std::collections::HashMap;

/// Stitches one column. `left[j]`/`right[j]` are the two labels of row `j`
/// ([`NIL`] on background rows; the caller has already offset the right
/// label space). Returns the final per-row labels and the units of local
/// work (hash/map touches count 1 unit, union–find ops their metered cost).
pub fn stitch_column(left: &[u32], right: &[u32]) -> (Vec<u32>, u64) {
    assert_eq!(left.len(), right.len());
    let rows = left.len();
    let mut units = 0u64;
    // dense-id the label values
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut values: Vec<u32> = Vec::new();
    let intern = |v: u32, dense: &mut HashMap<u32, u32>, values: &mut Vec<u32>| -> u32 {
        *dense.entry(v).or_insert_with(|| {
            values.push(v);
            values.len() as u32 - 1
        })
    };
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(rows);
    for j in 0..rows {
        units += 1;
        match (left[j], right[j]) {
            (NIL, NIL) => {}
            (l, r) if l != NIL && r != NIL => {
                let dl = intern(l, &mut dense, &mut values);
                let dr = intern(r, &mut dense, &mut values);
                units += 2;
                edges.push((dl, dr));
            }
            _ => panic!("row {j}: left/right foreground disagree"),
        }
    }
    let mut uf = RankHalvingUf::with_elements(values.len());
    for &(a, b) in &edges {
        uf.union(a as usize, b as usize);
    }
    // least label per stitch component
    let mut min_label = vec![NIL; values.len()];
    for (id, &value) in values.iter().enumerate() {
        let r = uf.find(id);
        units += 1;
        if value < min_label[r] {
            min_label[r] = value;
        }
    }
    units += uf.cost();
    // per-row readout
    let mut out = vec![NIL; rows];
    for j in 0..rows {
        units += 1;
        if left[j] != NIL {
            let dl = dense[&left[j]] as usize;
            let r = uf.find(dl);
            out[j] = min_label[r];
            units += 1;
        }
    }
    units += uf.cost();
    (out, units)
}

/// The paper's stitch argument generalized from column seams to a horizontal
/// band seam: merges two *independently labeled* vertical halves of an image
/// into the global canonical labeling.
///
/// `top` and `bottom` are labelings of the two bands in the paper's
/// convention — each component labeled with its minimum **band-local**
/// column-major position (`col * band_rows + row_in_band`), exactly what
/// [`slap_image::fast_labels_conn`] produces on the band's sub-image. The
/// stitch is the same construction as [`stitch_column`], rotated 90°:
/// component labeling on the graph whose nodes are the band-local labels and
/// whose edges join the label pairs adjacent across the seam under `conn`,
/// with each merged component taking the least label seen.
///
/// Two facts make the output globally canonical (mirroring the module-level
/// argument for columns): band-local column-major order agrees with global
/// column-major order *within a band*, so converting a band component's
/// local minimum to global coordinates yields that component's true global
/// minimum over its band; and a merged component's global minimum pixel lies
/// in one of its constituent band components, so the minimum of the
/// converted candidates is exact.
///
/// This is both the specification the strip-parallel engine's seam pass must
/// meet (the differential suites pit them against each other) and a usable
/// two-band reference reducer. Unlike [`stitch_column`] it is host-side
/// machinery, so it meters no work units.
pub fn stitch_bands(top: &LabelGrid, bottom: &LabelGrid, conn: Connectivity) -> LabelGrid {
    assert_eq!(
        top.cols(),
        bottom.cols(),
        "bands must share the column count"
    );
    let cols = top.cols();
    let (tr, br) = (top.rows(), bottom.rows());
    let rows = tr + br;
    // Band-local label -> global column-major position.
    let global_top = |l: u32| (l / tr as u32) * rows as u32 + (l % tr as u32);
    let global_bot = |l: u32| (l / br as u32) * rows as u32 + tr as u32 + (l % br as u32);
    // Intern the labels that appear on the seam; `true` keys the bottom band.
    let mut dense: HashMap<(bool, u32), u32> = HashMap::new();
    let mut values: Vec<u32> = Vec::new(); // dense id -> global position
    let mut intern = |side: bool, l: u32, values: &mut Vec<u32>| -> u32 {
        *dense.entry((side, l)).or_insert_with(|| {
            values.push(if side { global_bot(l) } else { global_top(l) });
            values.len() as u32 - 1
        })
    };
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let reach = match conn {
        Connectivity::Four => 0isize,
        Connectivity::Eight => 1isize,
    };
    for c in 0..cols as isize {
        let t = top.get(tr - 1, c as usize);
        if t == NIL {
            continue;
        }
        for bc in c - reach..=c + reach {
            if bc < 0 || bc >= cols as isize {
                continue;
            }
            let b = bottom.get(0, bc as usize);
            if b != NIL {
                let dt = intern(false, t, &mut values);
                let db = intern(true, b, &mut values);
                edges.push((dt, db));
            }
        }
    }
    let mut uf = RankHalvingUf::with_elements(values.len());
    for &(a, b) in &edges {
        uf.union(a as usize, b as usize);
    }
    // Least global position per stitched component.
    let mut min_label = vec![NIL; values.len()];
    for (id, &value) in values.iter().enumerate() {
        let r = uf.find(id);
        if value < min_label[r] {
            min_label[r] = value;
        }
    }
    // Readout: seam-connected labels resolve through the union-find; every
    // other component keeps its (converted) band-local minimum.
    let mut out = LabelGrid::new_background(rows, cols);
    let emit = |out: &mut LabelGrid,
                band: &LabelGrid,
                side: bool,
                row_off: usize,
                uf: &mut RankHalvingUf| {
        for r in 0..band.rows() {
            for c in 0..cols {
                let l = band.get(r, c);
                if l == NIL {
                    continue;
                }
                let resolved = match dense.get(&(side, l)) {
                    Some(&id) => min_label[uf.find(id as usize)],
                    None if side => global_bot(l),
                    None => global_top(l),
                };
                out.set(r + row_off, c, resolved);
            }
        }
    };
    emit(&mut out, top, false, 0, &mut uf);
    emit(&mut out, bottom, true, tr, &mut uf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels_conn, gen, Bitmap};

    /// Crops rows `lo..hi` of `img` into a standalone band bitmap.
    fn band(img: &Bitmap, lo: usize, hi: usize) -> Bitmap {
        let mut out = Bitmap::new(hi - lo, img.cols());
        for r in lo..hi {
            for c in 0..img.cols() {
                if img.get(r, c) {
                    out.set(r - lo, c, true);
                }
            }
        }
        out
    }

    /// Labeling each half independently then stitching must reproduce the
    /// whole-image labeling exactly.
    fn check_split(img: &Bitmap, split: usize, conn: Connectivity) {
        let top = fast_labels_conn(&band(img, 0, split), conn);
        let bottom = fast_labels_conn(&band(img, split, img.rows()), conn);
        let stitched = stitch_bands(&top, &bottom, conn);
        assert_eq!(
            stitched,
            fast_labels_conn(img, conn),
            "split={split} conn={conn:?}"
        );
    }

    #[test]
    fn band_stitch_matches_whole_image_labeling() {
        for name in ["random50", "blobs", "checker", "spiral", "comb"] {
            let img = gen::by_name(name, 24, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                for split in [1, 7, 12, 23] {
                    check_split(&img, split, conn);
                }
            }
        }
    }

    #[test]
    fn band_stitch_bridges_only_under_eight_connectivity() {
        // Two diagonal pixels facing each other across the seam.
        let img = Bitmap::from_art("#.\n.#\n");
        check_split(&img, 1, Connectivity::Four);
        check_split(&img, 1, Connectivity::Eight);
        let four = stitch_bands(
            &fast_labels_conn(&band(&img, 0, 1), Connectivity::Four),
            &fast_labels_conn(&band(&img, 1, 2), Connectivity::Four),
            Connectivity::Four,
        );
        assert_eq!(four.component_count(), 2);
        let eight = stitch_bands(
            &fast_labels_conn(&band(&img, 0, 1), Connectivity::Eight),
            &fast_labels_conn(&band(&img, 1, 2), Connectivity::Eight),
            Connectivity::Eight,
        );
        assert_eq!(eight.component_count(), 1);
    }

    #[test]
    fn band_stitch_collapses_a_u_shape_to_the_global_min() {
        // A U opening upward: the two arms are separate components in the
        // top band and merge through the bottom band's base.
        let img = Bitmap::from_art("#.#\n#.#\n###\n");
        check_split(&img, 2, Connectivity::Four);
    }

    #[test]
    fn empty_column_is_all_background() {
        let (out, _) = stitch_column(&[NIL; 4], &[NIL; 4]);
        assert_eq!(out, vec![NIL; 4]);
    }

    #[test]
    fn single_edge_takes_min() {
        // one row: left label 5, right label 100
        let (out, _) = stitch_column(&[5], &[100]);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn right_labels_bridge_left_sets() {
        // rows 0 and 2 have different left labels (3, 7) but one right label
        // (100): the U-shape opening left. Both rows must end at min = 3.
        let left = [3, NIL, 7];
        let right = [100, NIL, 100];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![3, NIL, 3]);
    }

    #[test]
    fn left_labels_bridge_right_sets() {
        // mirror case: one left label, two right labels.
        let left = [4, NIL, 4];
        let right = [100, NIL, 200];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![4, NIL, 4]);
    }

    #[test]
    fn disjoint_components_stay_disjoint() {
        let left = [1, NIL, 9];
        let right = [100, NIL, 200];
        let (out, _) = stitch_column(&left, &right);
        assert_eq!(out, vec![1, NIL, 9]);
    }

    #[test]
    fn chain_of_bridges_collapses_to_global_min() {
        // left sets {0},{2},{4} with labels 10,2,30; right sets bridge
        // (0,2) and (2,4): all collapse to 2.
        let left = [10, NIL, 2, NIL, 30];
        let right = [100, NIL, 100, NIL, 200];
        // rows 2 and 4 need bridging too: give row 2 both bridges by a
        // second edge via its right label… use right: 0-2 share 100; 2-4
        // share? row2 right=100, row4 right=200: not bridged yet. Add a row
        // that shares left with row 4 and right with row 2:
        let left2 = [10, NIL, 2, 30, 30];
        let right2 = [100, NIL, 100, 100, 200];
        let (out, _) = stitch_column(&left2, &right2);
        assert_eq!(out, vec![2, NIL, 2, 2, 2]);
        let _ = (left, right);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mask_mismatch_is_detected() {
        stitch_column(&[1, NIL], &[NIL, NIL]);
    }
}
