//! The pipelined passes of `Left-Components` (paper Figs. 4–6).
//!
//! Each pass is written as a stage function for the virtual-time pipeline
//! executor in `slap-machine`; the same code serves the left-connected pass
//! and (run over the mirrored image) the right-connected pass.
//!
//! Cost charging: union–find operations meter themselves (see
//! `slap-unionfind`); the stage transfers those units onto the PE clock and
//! adds one unit per loop iteration / bookkeeping action, matching the
//! SIMD machine's one-instruction-per-step accounting.

use crate::cc::{CcOptions, ForwardPolicy};
use crate::NIL;
use slap_image::{Columns, Connectivity};
use slap_machine::PeCtx;
use slap_unionfind::UnionFind;

/// A relevant-union message: two rows of the *next* column whose sets must be
/// unioned (paper Fig. 5, `Apply` line 5 payload).
pub type RowPair = (u32, u32);

/// A label message: `(label, row)` — set the label of the set containing
/// `row` (paper Fig. 6 lines 5/14 payload).
pub type LabelMsg = (u32, u32);

/// The first row of column `ncol` holding a 1-pixel adjacent to pixel
/// `(pe, j)` under `conn`, where `ncol` is a horizontal neighbor of `pe`.
/// Under 4-connectivity the only candidate is row `j` itself; under
/// 8-connectivity rows `j−1` and `j+1` also qualify.
pub(crate) fn adjacent_row_in(
    cols: &Columns,
    ncol: usize,
    j: usize,
    conn: Connectivity,
) -> Option<u32> {
    match conn {
        Connectivity::Four => cols.get(ncol, j).then_some(j as u32),
        Connectivity::Eight => {
            let lo = j.saturating_sub(1);
            let hi = (j + 1).min(cols.rows() - 1);
            (lo..=hi).find(|&r| cols.get(ncol, r)).map(|r| r as u32)
        }
    }
}

/// The 8-connectivity *diagonal bridge* test at cursor `j` of the phase-1
/// scan: rows `j−2` and `j` of column `pe` are foreground with a background
/// gap between them, yet connected within the subimage `0..=pe` through the
/// single pixel `(pe−1, j−1)` (both diagonal links). Under 4-connectivity no
/// such local connection exists, which is why the paper's phase 1 is vertical
/// runs only.
pub fn bridge_at(cols: &Columns, pe: usize, j: usize) -> bool {
    pe > 0
        && j >= 2
        && cols.get(pe, j)
        && cols.get(pe, j - 2)
        && !cols.get(pe, j - 1)
        && cols.get(pe - 1, j - 1)
}

/// The state a column (PE) carries out of [`unionfind_pass`]: the union–find
/// structure over its rows plus the per-set `adjnext`/`adjprev` witnesses,
/// indexed by representative id.
pub struct ColumnState<U: UnionFind> {
    /// Disjoint sets over the column's rows (one left-component per set).
    pub uf: U,
    /// For each set (by representative id): a row *of the next column*
    /// holding a 1-pixel adjacent to one of the set's pixels, or [`NIL`].
    /// (Under 4-connectivity this matches the paper's formulation — the
    /// adjacent pixel shares the row index of the set's own pixel.)
    pub adjnext: Vec<u32>,
    /// Likewise for the previous column.
    pub adjprev: Vec<u32>,
}

impl<U: UnionFind> ColumnState<U> {
    /// `Make-Set(j)` for every row plus initial witness computation
    /// (paper Fig. 5 line 1). Purely local; the caller charges
    /// one unit per row.
    pub fn new(cols: &Columns, pe: usize, conn: Connectivity) -> Self {
        let rows = cols.rows();
        let uf = U::with_elements(rows);
        let bound = uf.id_bound();
        let mut adjnext = vec![NIL; bound];
        let mut adjprev = vec![NIL; bound];
        for j in 0..rows {
            if !cols.get(pe, j) {
                continue;
            }
            if pe + 1 < cols.cols() {
                if let Some(r) = adjacent_row_in(cols, pe + 1, j, conn) {
                    adjnext[j] = r;
                }
            }
            if pe > 0 {
                if let Some(r) = adjacent_row_in(cols, pe - 1, j, conn) {
                    adjprev[j] = r;
                }
            }
        }
        ColumnState {
            uf,
            adjnext,
            adjprev,
        }
    }

    /// The paper's `Apply(rowpair)` (Fig. 5), executor-independent: find both
    /// sets; if distinct, union them, merge the `adjnext`/`adjprev`
    /// witnesses, and — when both sets touch the next column — produce the
    /// relevant-union witness pair to forward.
    ///
    /// Returns `(units, forward)`: the union–find units consumed and the
    /// message for the next column, if any. Both executors (the virtual-time
    /// pipeline and the cycle-level lock-step machine) drive their clocks
    /// from the same numbers, so their behaviours cannot drift apart.
    pub fn apply_core(&mut self, top: u32, bot: u32) -> (u64, Option<RowPair>) {
        let c0 = self.uf.cost();
        let rt = self.uf.find(top as usize);
        let rb = self.uf.find(bot as usize);
        if rt != rb {
            let (an_t, an_b) = (self.adjnext[rt], self.adjnext[rb]);
            let (ap_t, ap_b) = (self.adjprev[rt], self.adjprev[rb]);
            let relevant = an_t != NIL && an_b != NIL;
            let r = self.uf.union_roots(rt, rb);
            self.adjnext[r] = if an_t != NIL { an_t } else { an_b };
            self.adjprev[r] = if ap_t != NIL { ap_t } else { ap_b };
            let uf_units = self.uf.cost() - c0;
            (uf_units, if relevant { Some((an_t, an_b)) } else { None })
        } else {
            (self.uf.cost() - c0, None)
        }
    }

    /// Pipeline-executor wrapper around [`apply_core`](ColumnState::apply_core):
    /// charges the units (+1 overhead) and sends the forwarded pair.
    /// `suppress_send` is used by the eager variant when the witness pair was
    /// already forwarded.
    fn apply(&mut self, ctx: &mut PeCtx<RowPair>, top: u32, bot: u32, suppress_send: bool) {
        let (units, forward) = self.apply_core(top, bot);
        ctx.charge(units + 1);
        if let Some(pair) = forward {
            if !suppress_send {
                ctx.send(pair);
            }
        }
    }

    /// The eager-forwarding test of §3 (executor-independent): when both
    /// incoming rows visibly touch the next column, a witness pair for the
    /// union about to happen can be forwarded immediately — the union merges
    /// the sets containing `top` and `bot`, so any next-column rows adjacent
    /// to those two pixels must end up grouped downstream (and the forward is
    /// a harmless no-op there if the two rows already share a set). Returns
    /// the pair to forward, or `None` when eagerness doesn't apply.
    pub fn eager_witness(
        cols: &Columns,
        pe: usize,
        top: u32,
        bot: u32,
        conn: Connectivity,
    ) -> Option<RowPair> {
        if pe + 1 >= cols.cols() {
            return None;
        }
        let witness = |r: u32| {
            cols.get(pe, r as usize)
                .then(|| adjacent_row_in(cols, pe + 1, r as usize, conn))
                .flatten()
        };
        Some((witness(top)?, witness(bot)?))
    }
}

/// One step of Label-Pass's local loop (Fig. 6 lines 1–7), executor
/// independent: if row `j` is foreground and its set has no left ancestor
/// and no label yet, assign `base_position + j` and produce the message to
/// forward. Returns `(units, forward)`.
pub fn label_local_step<U: UnionFind>(
    cols: &Columns,
    pe: usize,
    state: &mut ColumnState<U>,
    labels: &mut [u32],
    base_position: u32,
    j: usize,
) -> (u64, Option<LabelMsg>) {
    if !cols.get(pe, j) {
        return (1, None);
    }
    let c0 = state.uf.cost();
    let s = state.uf.find(j);
    let mut units = state.uf.cost() - c0 + 1;
    if state.adjprev[s] == NIL && labels[s] == NIL {
        labels[s] = base_position + j as u32;
        units += 1;
        if state.adjnext[s] != NIL {
            return (units, Some((labels[s], state.adjnext[s])));
        }
    }
    (units, None)
}

/// Absorbing one incoming label message (Fig. 6 lines 11–15), executor
/// independent, with the least-label semantics. Returns `(units, forward)`.
pub fn label_absorb<U: UnionFind>(
    state: &mut ColumnState<U>,
    labels: &mut [u32],
    policy: ForwardPolicy,
    label: u32,
    row: u32,
) -> (u64, Option<LabelMsg>) {
    let c0 = state.uf.cost();
    let s = state.uf.find(row as usize);
    let units = state.uf.cost() - c0 + 1;
    let improved = label < labels[s]; // NIL is u32::MAX: always improves
    if improved {
        labels[s] = label;
    }
    let forward = match policy {
        ForwardPolicy::OnImprovement => improved,
        ForwardPolicy::Always => true,
    };
    if forward && state.adjnext[s] != NIL {
        (units, Some((labels[s], state.adjnext[s])))
    } else {
        (units, None)
    }
}

/// `Union-Find-Pass` for one PE (paper Fig. 5): phase 1 unions the column's
/// vertical runs (plus, under 8-connectivity, the [`bridge_at`] pairs —
/// rows joined through a single pixel of the previous column); phase 2
/// applies the relevant unions streaming in from the left, forwarding the
/// ones relevant to the right.
///
/// Returns the column's final grouping. Run it under
/// `slap_machine::run_pipeline_with` in array order.
pub fn unionfind_pass<U: UnionFind>(
    cols: &Columns,
    opts: &CcOptions,
    pe: usize,
    ctx: &mut PeCtx<RowPair>,
) -> ColumnState<U> {
    let rows = cols.rows();
    let conn = opts.connectivity;
    // line 1: Make-Set per row (+ witness init): one unit per row
    let mut state = ColumnState::<U>::new(cols, pe, conn);
    ctx.charge(rows as u64);
    // lines 3–7: union vertical runs (and diagonal bridges under 8-conn)
    for j in 1..rows {
        ctx.charge(1);
        if cols.get(pe, j - 1) && cols.get(pe, j) {
            state.apply(ctx, (j - 1) as u32, j as u32, false);
        }
        if conn == Connectivity::Eight && bridge_at(cols, pe, j) {
            state.apply(ctx, (j - 2) as u32, j as u32, false);
        }
    }
    // lines 8–14: drain the incoming relevant unions
    loop {
        let msg = if opts.idle_compression {
            let uf = &mut state.uf;
            ctx.recv_with(&mut |budget| uf.idle_compress(budget))
        } else {
            ctx.recv()
        };
        let Some((top, bot)) = msg else { break };
        let mut suppress = false;
        if opts.eager_forward {
            // §3's speculative idea, simplified soundly: if the two incoming
            // rows are themselves adjacent to 1-pixels of the next column,
            // a valid witness pair for the union about to happen can be
            // forwarded before doing any union–find work. Safe even when the
            // sets turn out equal: both rows then belong to a single set,
            // and the downstream union is a no-op on two rows of one
            // left-component.
            ctx.charge(1);
            if let Some(pair) = ColumnState::<U>::eager_witness(cols, pe, top, bot, conn) {
                ctx.send(pair);
                suppress = true;
            }
        }
        state.apply(ctx, top, bot, suppress);
    }
    state
}

/// [`unionfind_pass`] with phase-2 dequeue tracing, for the §3 structural
/// claim: *"Denote the sequence of row pairs on which the finds and unions
/// occur in processor i based on the dequeues of information from the
/// previous column as (t1,b1), (t2,b2), … This sequence has the property
/// that we never have t_k or b_k strictly between t_{k−1} and b_{k−1}"* —
/// i.e. viewed as intervals, consecutive pairs are disjoint (up to shared
/// endpoints) or nest. Experiment E12 measures this property empirically.
///
/// Records, per PE, the row pairs dequeued in phase 2, in order. Always runs
/// the plain (non-eager, non-idle-compressing) pass so the recorded sequence
/// is the one the paper's argument describes; only `opts.connectivity` is
/// honored.
pub fn unionfind_pass_traced<U: UnionFind>(
    cols: &Columns,
    opts: &CcOptions,
    pe: usize,
    trace: &mut Vec<RowPair>,
    ctx: &mut PeCtx<RowPair>,
) -> ColumnState<U> {
    let rows = cols.rows();
    let conn = opts.connectivity;
    let mut state = ColumnState::<U>::new(cols, pe, conn);
    ctx.charge(rows as u64);
    for j in 1..rows {
        ctx.charge(1);
        if cols.get(pe, j - 1) && cols.get(pe, j) {
            state.apply(ctx, (j - 1) as u32, j as u32, false);
        }
        if conn == Connectivity::Eight && bridge_at(cols, pe, j) {
            state.apply(ctx, (j - 2) as u32, j as u32, false);
        }
    }
    while let Some((top, bot)) = ctx.recv() {
        trace.push((top, bot));
        state.apply(ctx, top, bot, false);
    }
    state
}

/// Checks the §3 interval property over one PE's phase-2 trace: returns the
/// number of adjacent pairs where an endpoint of pair `k` falls strictly
/// inside pair `k−1`'s interval without pair `k` containing pair `k−1`.
pub fn interval_property_violations(trace: &[RowPair]) -> usize {
    let norm = |(a, b): RowPair| if a <= b { (a, b) } else { (b, a) };
    let mut violations = 0usize;
    for w in trace.windows(2) {
        let (pt, pb) = norm(w[0]);
        let (t, b) = norm(w[1]);
        let strictly_inside = |x: u32| x > pt && x < pb;
        let contains_prev = t <= pt && b >= pb;
        if (strictly_inside(t) || strictly_inside(b)) && !contains_prev {
            violations += 1;
        }
    }
    violations
}

/// Step 2 of `Left-Components`: one find per row, metered. Purely local (all
/// PEs run it concurrently); returns the units this PE spent, so the caller
/// can take the max as the phase makespan.
pub fn find_pass<U: UnionFind>(cols: &Columns, pe: usize, state: &mut ColumnState<U>) -> u64 {
    let rows = cols.rows();
    let c0 = state.uf.cost();
    for j in 0..rows {
        if cols.get(pe, j) {
            state.uf.find(j);
        }
    }
    state.uf.cost() - c0 + rows as u64
}

/// `Label-Pass` for one PE (paper Fig. 6), with the *least label* semantics
/// of the paper's consistency rule: a set keeps the minimum of the labels it
/// has seen, and forwards according to `opts.forward_policy`
/// ([`ForwardPolicy::OnImprovement`] forwards each strictly smaller label;
/// [`ForwardPolicy::Always`] re-forwards every arrival like the literal
/// pseudocode).
///
/// `base_position` is the column-major position of this PE's row 0 (i.e.
/// `pe * rows` for the left pass; the mirrored value for the right pass).
/// Per-set labels land in `labels` (indexed by representative); the per-row
/// readout is a separate local phase, [`readout_pass`] — folding it into
/// this stage would delay each PE's EOS by Θ(rows) and serialize the
/// pipeline into Θ(n²) total time (step 4 of the paper's Fig. 4 is local
/// and concurrent, not part of the pipelined pass).
pub fn label_pass<U: UnionFind>(
    cols: &Columns,
    opts: &CcOptions,
    pe: usize,
    state: &mut ColumnState<U>,
    labels: &mut [u32],
    base_position: u32,
    ctx: &mut PeCtx<LabelMsg>,
) {
    let rows = cols.rows();
    debug_assert_eq!(labels.len(), state.uf.id_bound());
    // lines 1–7: label the sets that have no left ancestor
    for j in 0..rows {
        let (units, forward) = label_local_step(cols, pe, state, labels, base_position, j);
        ctx.charge(units);
        if let Some(msg) = forward {
            ctx.send(msg);
        }
    }
    // lines 8–16: adopt and forward incoming labels
    while let Some((label, row)) = ctx.recv() {
        let (units, forward) = label_absorb(state, labels, opts.forward_policy, label, row);
        ctx.charge(units);
        if let Some(msg) = forward {
            ctx.send(msg);
        }
    }
}

/// Step 4 of `Left-Components`: per-pixel label readout. Purely local and
/// concurrent across PEs (like [`find_pass`]); returns the per-row labels
/// ([`NIL`] on background) and the units this PE spent.
pub fn readout_pass<U: UnionFind>(
    cols: &Columns,
    pe: usize,
    state: &mut ColumnState<U>,
    labels: &[u32],
) -> (Vec<u32>, u64) {
    let rows = cols.rows();
    let mut units = 0u64;
    let mut out = vec![NIL; rows];
    for (j, slot) in out.iter_mut().enumerate() {
        units += 1;
        if cols.get(pe, j) {
            let c0 = state.uf.cost();
            let s = state.uf.find(j);
            units += state.uf.cost() - c0;
            *slot = labels[s];
            debug_assert_ne!(*slot, NIL, "foreground pixel left unlabeled");
        }
    }
    (out, units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::Bitmap;
    use slap_machine::run_pipeline;
    use slap_unionfind::TarjanUf;

    fn run_uf_pass(img: &Bitmap) -> Vec<ColumnState<TarjanUf>> {
        run_uf_pass_conn(img, Connectivity::Four)
    }

    fn run_uf_pass_conn(img: &Bitmap, conn: Connectivity) -> Vec<ColumnState<TarjanUf>> {
        let cols = img.columns();
        let opts = CcOptions {
            connectivity: conn,
            ..CcOptions::default()
        };
        let (states, _) = run_pipeline(cols.cols(), |pe, ctx| {
            unionfind_pass::<TarjanUf>(&cols, &opts, pe, ctx)
        });
        states
    }

    #[test]
    fn vertical_runs_are_grouped_locally() {
        let img = Bitmap::from_art(
            "#.\n\
             #.\n\
             ..\n\
             #.\n",
        );
        let mut states = run_uf_pass(&img);
        let s = &mut states[0];
        assert!(s.uf.same_set(0, 1));
        assert!(!s.uf.same_set(1, 3));
    }

    #[test]
    fn relevant_union_crosses_columns() {
        // Two rows connected only through column 0: column 1's sets must be
        // unioned by the forwarded pair.
        let img = Bitmap::from_art(
            "##\n\
             #.\n\
             ##\n",
        );
        let mut states = run_uf_pass(&img);
        let right = &mut states[1];
        assert!(right.uf.same_set(0, 2), "relevant union was not applied");
    }

    #[test]
    fn unions_propagate_through_long_bridge() {
        // A 'U' that closes in the final column.
        let img = Bitmap::from_art(
            "####\n\
             ...#\n\
             ####\n",
        );
        let mut states = run_uf_pass(&img);
        let last = states.last_mut().unwrap();
        assert!(last.uf.same_set(0, 2));
        // earlier columns must NOT have merged rows 0 and 2
        assert!(!states[0].uf.same_set(0, 2));
        assert!(!states[2].uf.same_set(0, 2));
    }

    #[test]
    fn adjnext_tracks_a_valid_witness() {
        let img = Bitmap::from_art(
            "##\n\
             #.\n",
        );
        let mut states = run_uf_pass(&img);
        let s0 = &mut states[0];
        let root = s0.uf.find(0);
        let w = s0.adjnext[root];
        assert_eq!(w, 0, "only row 0 touches column 1");
        let r1 = s0.uf.find(1);
        assert_eq!(r1, root);
    }

    #[test]
    fn background_rows_stay_singletons() {
        let img = Bitmap::from_art(
            ".#\n\
             .#\n",
        );
        let mut states = run_uf_pass(&img);
        assert!(!states[0].uf.same_set(0, 1));
        assert!(states[1].uf.same_set(0, 1));
    }

    #[test]
    fn bridge_at_detects_the_diagonal_bridge() {
        // Column 1 rows 0 and 2 are joined through the single pixel (0, 1).
        let img = Bitmap::from_art(
            ".#\n\
             #.\n\
             .#\n",
        );
        let cols = img.columns();
        assert!(bridge_at(&cols, 1, 2));
        assert!(!bridge_at(&cols, 1, 1));
        assert!(!bridge_at(&cols, 0, 2), "column 0 has no west neighbor");
        // Middle row of the same column set: no bridge needed.
        let solid = Bitmap::from_art(
            ".#\n\
             ##\n\
             .#\n",
        );
        assert!(!bridge_at(&solid.columns(), 1, 2));
    }

    #[test]
    fn eight_conn_bridge_groups_rows_locally() {
        let img = Bitmap::from_art(
            ".#\n\
             #.\n\
             .#\n",
        );
        let mut states = run_uf_pass_conn(&img, Connectivity::Eight);
        assert!(states[1].uf.same_set(0, 2), "bridge union missing");
        // Under 4-connectivity they must remain separate.
        let mut states4 = run_uf_pass(&img);
        assert!(!states4[1].uf.same_set(0, 2));
    }

    #[test]
    fn eight_conn_witnesses_point_into_neighbor_columns() {
        // Pixel (1, 0) is diagonally adjacent to (0, 1) and (2, 1).
        let img = Bitmap::from_art(
            ".#\n\
             #.\n\
             .#\n",
        );
        let cols = img.columns();
        assert_eq!(adjacent_row_in(&cols, 1, 1, Connectivity::Four), None);
        assert_eq!(adjacent_row_in(&cols, 1, 1, Connectivity::Eight), Some(0));
        assert_eq!(adjacent_row_in(&cols, 0, 0, Connectivity::Eight), Some(1));
        let states = run_uf_pass_conn(&img, Connectivity::Eight);
        // Column 0's single set must carry a next-column witness.
        assert_ne!(states[0].adjnext[1], NIL);
    }

    #[test]
    fn eager_witness_returns_next_column_rows() {
        let img = Bitmap::from_art(
            "##\n\
             #.\n\
             ##\n",
        );
        let cols = img.columns();
        assert_eq!(
            ColumnState::<TarjanUf>::eager_witness(&cols, 0, 0, 2, Connectivity::Four),
            Some((0, 2))
        );
        // Row 1 of column 0 has no 4-adjacent pixel in column 1, but is
        // 8-adjacent to rows 0 and 2 there.
        assert_eq!(
            ColumnState::<TarjanUf>::eager_witness(&cols, 0, 0, 1, Connectivity::Four),
            None
        );
        assert_eq!(
            ColumnState::<TarjanUf>::eager_witness(&cols, 0, 0, 1, Connectivity::Eight),
            Some((0, 0))
        );
        // The last column never forwards.
        assert_eq!(
            ColumnState::<TarjanUf>::eager_witness(&cols, 1, 0, 2, Connectivity::Four),
            None
        );
    }
}
