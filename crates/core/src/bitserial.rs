//! Theorem 5: the restricted SLAP with 1-bit links.
//!
//! The paper shows that when adjacent PEs can exchange only **one bit** per
//! time step, component labeling needs `Ω(n lg n)` time: on the even-rows
//! image family the rightmost column's labeling encodes the start column of
//! every even row, i.e. `Ω(n lg n)` bits, while the rightmost PE receives at
//! most one bit per step.
//!
//! Two reproductions live here:
//!
//! * [`label_components_bitserial`] — the *upper* bound side: Algorithm CC
//!   itself runs on the bit-link machine by serializing each message
//!   (`2·⌈lg n⌉`-bit row pairs, label/row pairs) over the link, giving an
//!   `O(n lg n)`-step algorithm whose measured makespan the E8 experiment
//!   compares against `n lg n`;
//! * [`entropy_report`] — the *lower* bound side: exhaustively enumerate the
//!   even-rows family for small `n`, count the distinct rightmost-column
//!   labelings, and convert the count into the information-theoretic step
//!   bound `lg(#labelings)` the theorem's counting argument yields.

use crate::cc::{label_components_kind, CcOptions, CcRun};
use serde::{Deserialize, Serialize};
use slap_image::{fast_labels, gen, Bitmap};
use slap_machine::costs;
use slap_unionfind::UfKind;
use std::collections::HashSet;

/// Bit width of one Algorithm CC message on an `rows × cols` image: two
/// values each bounded by the doubled label space `2·rows·cols` (row indices
/// are smaller, but the SIMD machine serializes a fixed word format).
pub fn message_bits(rows: usize, cols: usize) -> u32 {
    2 * costs::bits_for((2 * rows * cols) as u64)
}

/// Runs Algorithm CC on the restricted 1-bit-link SLAP: identical labeling,
/// with every link message charged its serialized bit width.
pub fn label_components_bitserial(img: &Bitmap, kind: UfKind, opts: &CcOptions) -> CcRun {
    let bits = message_bits(img.rows(), img.cols());
    let opts = CcOptions {
        word_steps: costs::bit_serial_steps(bits),
        ..*opts
    };
    label_components_kind(img, kind, &opts)
}

/// The counting-argument data for one image side `n` (see module docs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EntropyReport {
    /// Image side.
    pub n: usize,
    /// Instances of the even-rows family enumerated (`n^(n/2)` when
    /// exhaustive).
    pub instances: u64,
    /// Distinct labelings observed on the rightmost column.
    pub distinct_labelings: u64,
    /// `lg(distinct_labelings)` — bits the rightmost PE must receive, hence
    /// a lower bound on steps for the 1-bit machine.
    pub required_bits: f64,
    /// `n·lg n`, the theorem's asymptotic form, for comparison.
    pub n_log_n: f64,
}

/// Exhaustively enumerates the even-rows family for side `n` (all
/// `n^(n/2)` start-column vectors) and counts the distinct rightmost-column
/// labelings. Exact but exponential: keep `n ≤ 10` (`10^5` instances).
///
/// # Panics
/// Panics if the instance count exceeds `limit` (a guard against accidental
/// explosion).
pub fn entropy_report(n: usize, limit: u64) -> EntropyReport {
    assert!(
        n >= 2 && n.is_multiple_of(2),
        "n must be even and at least 2"
    );
    let rows = n / 2;
    let instances = (n as u64).pow(rows as u32);
    assert!(
        instances <= limit,
        "even-rows family for n={n} has {instances} instances > limit {limit}"
    );
    let mut starts = vec![0usize; rows];
    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut count = 0u64;
    loop {
        count += 1;
        let img = gen::even_rows(n, n, &starts);
        let labels = fast_labels(&img);
        let last_col: Vec<u32> = (0..n).map(|r| labels.get(r, n - 1)).collect();
        seen.insert(last_col);
        // odometer increment over starts in 0..n
        let mut i = 0;
        loop {
            if i == rows {
                let distinct = seen.len() as u64;
                return EntropyReport {
                    n,
                    instances: count,
                    distinct_labelings: distinct,
                    required_bits: (distinct as f64).log2(),
                    n_log_n: n as f64 * (n as f64).log2(),
                };
            }
            starts[i] += 1;
            if starts[i] < n {
                break;
            }
            starts[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::gen::even_rows_random;

    #[test]
    fn message_bits_scale_with_label_space() {
        assert_eq!(message_bits(16, 16), 2 * 10); // 2*16*16 = 512 -> 10 bits
        assert!(message_bits(256, 256) > message_bits(16, 16));
    }

    #[test]
    fn bitserial_labeling_is_exact() {
        let img = even_rows_random(24, 24, 3);
        let truth = fast_labels(&img);
        let run = label_components_bitserial(&img, UfKind::Tarjan, &CcOptions::default());
        assert_eq!(run.labels, truth);
    }

    #[test]
    fn bitserial_costs_strictly_more_than_word_links() {
        let img = even_rows_random(32, 32, 4);
        let word = label_components_kind(&img, UfKind::Tarjan, &CcOptions::default());
        let bit = label_components_bitserial(&img, UfKind::Tarjan, &CcOptions::default());
        assert!(bit.metrics.total_steps > word.metrics.total_steps);
        assert_eq!(bit.labels, word.labels);
    }

    #[test]
    fn entropy_counts_all_start_vectors() {
        // n=4: 2 even rows, 4 starts each -> 16 instances. Every start vector
        // gives a distinct rightmost-column labeling (the counting argument's
        // core claim): labels are start_col * n + row.
        let r = entropy_report(4, 1_000);
        assert_eq!(r.instances, 16);
        assert_eq!(r.distinct_labelings, 16);
        assert!(r.required_bits > 3.9 && r.required_bits < 4.1);
    }

    #[test]
    fn entropy_grows_like_half_n_log_n() {
        let r6 = entropy_report(6, 1_000_000);
        assert_eq!(r6.instances, 6u64.pow(3));
        assert_eq!(r6.distinct_labelings, 216);
        // required bits = 3*lg 6 ≈ 7.75 = (n/2) lg n
        assert!((r6.required_bits - 3.0 * 6f64.log2()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "instances")]
    fn entropy_guard_trips() {
        entropy_report(10, 10);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn entropy_rejects_odd_n() {
        entropy_report(5, 1_000);
    }
}
