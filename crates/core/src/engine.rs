//! The unified host-engine layer: one trait, persistent sessions, and a
//! registry-driven dispatch surface.
//!
//! The workspace grew six host labeling engines — the BFS gold oracle, the
//! word-parallel [`fast`](crate::fast) engine, its strip-parallel and 2-D
//! tiled variants, the bounded-memory streaming engine, and the iterative
//! label-equivalence propagation engine — and, as the two-pass parallel
//! CCL literature observes (Gupta et al., arXiv:1606.05973), they all share
//! one skeleton: *group foreground into equivalence classes, then resolve
//! every pixel's class to the component minimum*. This module names that
//! skeleton in the type system:
//!
//! * [`LabelEngine`] — the common interface: `label_into(&mut self, img,
//!   conn, out) -> EngineStats`. Implementations are **sessions**: each owns
//!   its scratch arenas (run tables, union–find nodes, frontier buffers,
//!   per-strip pools) and reuses them across calls, so a warm session in
//!   steady state performs **zero heap allocation** per frame — the
//!   difference the `slap-bench reuse` sweep records.
//! * [`BfsSession`], [`FastSession`], [`ParallelSession`], [`TiledSession`],
//!   [`StreamSession`], [`PropagateSession`] — the engines behind the trait.
//!   All produce
//!   **bit-identical**
//!   output (component minima are decomposition-invariant), which the
//!   `engine_matrix` differential harness asserts across every registered
//!   engine × workload family × connectivity.
//! * [`EngineKind`] + [`registry`] — the dispatch layer: every engine
//!   enumerated with its capabilities (supported connectivities, thread
//!   scaling, memory class), so consumers — the `slap` CLI's `--engine`
//!   flag, the bench sweeps, the differential suites — pick engines from
//!   *data* instead of hand-rolled match arms, the adaptive-selection shape
//!   argued for by Sutton et al. (arXiv:1612.01178).

use slap_image::fast::{FastLabeler, ParallelLabeler, PropagateLabeler, TiledLabeler};
use slap_image::stream::StreamGridLabeler;
use slap_image::{BfsOracle, Bitmap, Connectivity, LabelGrid, TileStats};

/// What one [`LabelEngine::label_into`] call observed. Cheap to produce
/// (derived from state the engines already maintain) and uniform across
/// engines, so sweeps and reports can print one table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of connected components labeled.
    pub components: usize,
    /// Size of the run universe the engine worked over (`0` for the
    /// pixel-probing BFS oracle, which has no run decomposition).
    pub runs: usize,
    /// Worker threads used for this call (`1` for sequential engines).
    pub threads: usize,
    /// Peak active-run frontier observed (streaming engine only; `0` for
    /// whole-frame engines).
    pub peak_frontier_runs: usize,
    /// Peak carried band-boundary state observed (out-of-core band
    /// scheduling only; `0` for single-pass engines).
    pub peak_carried_runs: usize,
    /// Coarse word × 2-row tile classification counts from the block-based
    /// first pass (run-based engines only; all-zero for the pixel-probing
    /// oracle and the streaming engine, which scan no tiles). For the
    /// engines that do, `tiles.total() == words_per_row × rows`.
    pub tiles: TileStats,
    /// Relaxation rounds an iterative engine needed to reach its fixpoint,
    /// including the final no-change round that proves convergence
    /// (propagation engine only; `0` for the direct two-pass engines).
    pub iterations: usize,
    /// Pointer-jumping label-reduction passes an iterative engine performed
    /// across all rounds (propagation engine only; `0` otherwise).
    pub reduction_passes: usize,
}

/// A persistent labeling session: the unified interface over every host
/// engine.
///
/// A session is stateful scratch, not configuration — create one, then feed
/// it any number of images of any dimensions and either connectivity. The
/// contract every implementation upholds:
///
/// * **bit-identity** — the output grid equals
///   [`slap_image::bfs_labels_conn`] exactly (component minima, not merely
///   the same partition);
/// * **reuse** — scratch arenas persist across calls; once every arena has
///   reached its high-water mark ([`LabelEngine::scratch_bytes`] stable), a
///   call performs no heap allocation;
/// * **isolation** — no state leaks between calls: a warm session's output
///   is bit-identical to a fresh one's for every input.
pub trait LabelEngine {
    /// Which registered engine this session is.
    fn kind(&self) -> EngineKind;

    /// Labels `img` into `out` (re-dimensioned as needed; every cell
    /// written) and reports what the call observed.
    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats;

    /// Total bytes of scratch capacity currently reserved — the session's
    /// arena high-water mark. Tests assert warm calls perform zero
    /// reallocations by checking this is stable across repeated inputs.
    fn scratch_bytes(&self) -> usize;

    /// Worker threads this session labels with (`1` unless multithreaded).
    fn threads(&self) -> usize {
        1
    }
}

/// Session over the sequential BFS flood-fill gold oracle
/// ([`BfsOracle`]): per-pixel probing, the reference every other engine is
/// differentially tested against.
#[derive(Debug, Default)]
pub struct BfsSession {
    oracle: BfsOracle,
}

impl BfsSession {
    /// Creates a session with empty (growable) scratch.
    pub fn new() -> Self {
        BfsSession::default()
    }
}

impl LabelEngine for BfsSession {
    fn kind(&self) -> EngineKind {
        EngineKind::Bfs
    }

    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats {
        let components = self.oracle.label_into(img, conn, out);
        EngineStats {
            components,
            runs: 0,
            threads: 1,
            peak_frontier_runs: 0,
            peak_carried_runs: 0,
            tiles: TileStats::default(),
            iterations: 0,
            reduction_passes: 0,
        }
    }

    fn scratch_bytes(&self) -> usize {
        self.oracle.scratch_bytes()
    }
}

/// Session over the word-parallel run-based fast engine
/// ([`FastLabeler`]): the sequential hot path and default choice.
#[derive(Debug, Default)]
pub struct FastSession {
    labeler: FastLabeler,
}

impl FastSession {
    /// Creates a session with empty (growable) scratch.
    pub fn new() -> Self {
        FastSession::default()
    }
}

impl LabelEngine for FastSession {
    fn kind(&self) -> EngineKind {
        EngineKind::Fast
    }

    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats {
        self.labeler.label_into(img, conn, out);
        EngineStats {
            components: self.labeler.last_components(),
            runs: self.labeler.last_runs(),
            threads: 1,
            peak_frontier_runs: 0,
            peak_carried_runs: 0,
            tiles: self.labeler.last_tile_stats(),
            iterations: 0,
            reduction_passes: 0,
        }
    }

    fn scratch_bytes(&self) -> usize {
        self.labeler.scratch_bytes()
    }
}

/// Session over the strip-parallel engine ([`ParallelLabeler`]): `threads`
/// scoped workers label disjoint row bands, seams are stitched over the run
/// universe, and the flatten runs per-strip in parallel.
#[derive(Debug)]
pub struct ParallelSession {
    labeler: ParallelLabeler,
}

impl ParallelSession {
    /// Creates a session that labels on `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ParallelSession {
            labeler: ParallelLabeler::new(threads),
        }
    }
}

impl LabelEngine for ParallelSession {
    fn kind(&self) -> EngineKind {
        EngineKind::Parallel
    }

    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats {
        self.labeler.label_into(img, conn, out);
        EngineStats {
            components: self.labeler.last_components(),
            runs: self.labeler.last_runs(),
            threads: self.labeler.threads(),
            peak_frontier_runs: 0,
            peak_carried_runs: 0,
            tiles: self.labeler.last_tile_stats(),
            iterations: 0,
            reduction_passes: 0,
        }
    }

    fn scratch_bytes(&self) -> usize {
        self.labeler.scratch_bytes()
    }

    fn threads(&self) -> usize {
        self.labeler.threads()
    }
}

/// Session over the 2-D tiled engine ([`TiledLabeler`]): workers own
/// rectangular tiles of a `tiles_y × tiles_x` grid, and the seams merge
/// hierarchically in pairwise-doubling order — vertical column boundaries
/// first, then full-width band seams.
#[derive(Debug)]
pub struct TiledSession {
    labeler: TiledLabeler,
}

impl TiledSession {
    /// Creates a session labeling on a `tiles_y × tiles_x` grid with
    /// `threads` workers (all clamped to ≥ 1).
    pub fn new(tiles_y: usize, tiles_x: usize, threads: usize) -> Self {
        TiledSession {
            labeler: TiledLabeler::new(tiles_y, tiles_x, threads),
        }
    }
}

impl LabelEngine for TiledSession {
    fn kind(&self) -> EngineKind {
        let (tiles_y, tiles_x) = self.labeler.tiles();
        EngineKind::Tiled { tiles_x, tiles_y }
    }

    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats {
        self.labeler.label_into(img, conn, out);
        EngineStats {
            components: self.labeler.last_components(),
            runs: self.labeler.last_runs(),
            threads: self.labeler.threads(),
            peak_frontier_runs: 0,
            peak_carried_runs: 0,
            tiles: self.labeler.last_tile_stats(),
            iterations: 0,
            reduction_passes: 0,
        }
    }

    fn scratch_bytes(&self) -> usize {
        self.labeler.scratch_bytes()
    }

    fn threads(&self) -> usize {
        self.labeler.threads()
    }
}

/// Session over the streaming engine ([`StreamGridLabeler`]): rows replayed
/// one at a time through the bounded-frontier labeler, with a run log that
/// turns the retirement records into a whole grid. The grid output costs
/// `O(rows × cols)` like every other engine here; the union–find itself
/// stays in the `O(cols + live)` frontier regime.
#[derive(Debug, Default)]
pub struct StreamSession {
    labeler: StreamGridLabeler,
}

impl StreamSession {
    /// Creates a session with empty (growable) scratch.
    pub fn new() -> Self {
        StreamSession::default()
    }
}

impl LabelEngine for StreamSession {
    fn kind(&self) -> EngineKind {
        EngineKind::Stream
    }

    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats {
        self.labeler.label_into(img, conn, out);
        EngineStats {
            components: self.labeler.last_components(),
            runs: self.labeler.last_runs(),
            threads: 1,
            peak_frontier_runs: self.labeler.last_stats().peak_frontier_runs,
            peak_carried_runs: 0,
            tiles: TileStats::default(),
            iterations: 0,
            reduction_passes: 0,
        }
    }

    fn scratch_bytes(&self) -> usize {
        self.labeler.scratch_bytes()
    }
}

/// Session over the iterative label-equivalence propagation engine
/// ([`PropagateLabeler`]): GPU-style alternating relaxation sweeps with
/// pointer-jumping reduction between rounds — the flat, data-parallel
/// contrast to the direct two-pass engines, reporting its convergence
/// behavior through [`EngineStats::iterations`] and
/// [`EngineStats::reduction_passes`].
#[derive(Debug, Default)]
pub struct PropagateSession {
    labeler: PropagateLabeler,
}

impl PropagateSession {
    /// Creates a session with empty (growable) scratch.
    pub fn new() -> Self {
        PropagateSession::default()
    }
}

impl LabelEngine for PropagateSession {
    fn kind(&self) -> EngineKind {
        EngineKind::Propagate
    }

    fn label_into(&mut self, img: &Bitmap, conn: Connectivity, out: &mut LabelGrid) -> EngineStats {
        self.labeler.label_into(img, conn, out);
        EngineStats {
            components: self.labeler.last_components(),
            runs: self.labeler.last_runs(),
            threads: 1,
            peak_frontier_runs: 0,
            peak_carried_runs: 0,
            tiles: TileStats::default(),
            iterations: self.labeler.last_iterations(),
            reduction_passes: self.labeler.last_reduction_passes(),
        }
    }

    fn scratch_bytes(&self) -> usize {
        self.labeler.scratch_bytes()
    }
}

/// The registered host engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Sequential BFS flood fill (the gold oracle).
    Bfs,
    /// Word-parallel run-based two-pass (the sequential hot path).
    Fast,
    /// Strip-parallel two-pass with seam stitching (scales with cores).
    Parallel,
    /// 2-D tiled two-pass with hierarchical seam merging. The shape is part
    /// of the kind; [`EngineKind::parse`] yields the canonical 2×2 grid.
    Tiled {
        /// Tile columns.
        tiles_x: usize,
        /// Tile rows.
        tiles_y: usize,
    },
    /// Streaming run-based labeler (one row per beat, bounded frontier).
    Stream,
    /// Iterative label-equivalence propagation (GPU-style relaxation rounds
    /// with pointer-jumping reduction).
    Propagate,
}

/// How an engine's working memory scales (the grid output is always
/// `O(rows × cols)` on top).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryClass {
    /// `O(rows × cols)` auxiliary state (per-pixel probing).
    PixelGrid,
    /// `O(runs)` arenas over the run universe.
    RunArena,
    /// `O(cols + live components)` union–find; `O(runs)` only for the
    /// grid-output log.
    BoundedFrontier,
}

impl EngineKind {
    /// Every registered kind, in registry order — **derived from the
    /// registry rows** at compile time, so adding an engine is a one-site
    /// change (write its [`EngineInfo`] row; `ALL`, [`EngineKind::parse`],
    /// the CLI's engine list, and every registry-driven harness follow).
    /// Parameterized kinds appear with their canonical shape (`tiled` as
    /// the 2×2 grid).
    pub const ALL: [EngineKind; REGISTRY_ROWS.len()] = {
        let mut all = [EngineKind::Bfs; REGISTRY_ROWS.len()];
        let mut i = 0;
        while i < REGISTRY_ROWS.len() {
            all[i] = REGISTRY_ROWS[i].kind;
            i += 1;
        }
        all
    };

    /// Short stable name (accepted by [`EngineKind::parse`] and the CLI's
    /// `--engine` flag). Every shape of a parameterized kind shares one
    /// name — the shape travels in the variant, not the string.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Bfs => "bfs",
            EngineKind::Fast => "fast",
            EngineKind::Parallel => "parallel",
            EngineKind::Tiled { .. } => "tiled",
            EngineKind::Stream => "stream",
            EngineKind::Propagate => "propagate",
        }
    }

    /// Parses an engine name as printed by [`EngineKind::name`].
    /// Parameterized kinds come back in canonical shape (use struct-update
    /// syntax or the CLI's `--tiles` flag to pick another).
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// This kind's registry entry. Lookup is by name, so every shape of a
    /// parameterized kind maps to its one registry row.
    pub fn info(self) -> &'static EngineInfo {
        REGISTRY
            .iter()
            .find(|row| row.kind.name() == self.name())
            .expect("every kind is registered")
    }

    /// Opens a fresh session of this engine. `threads` is honored by
    /// multithreaded engines and ignored (as documented in the registry) by
    /// sequential ones.
    pub fn session(self, threads: usize) -> Box<dyn LabelEngine> {
        match self {
            EngineKind::Bfs => Box::new(BfsSession::new()),
            EngineKind::Fast => Box::new(FastSession::new()),
            EngineKind::Parallel => Box::new(ParallelSession::new(threads)),
            EngineKind::Tiled { tiles_x, tiles_y } => {
                Box::new(TiledSession::new(tiles_y, tiles_x, threads))
            }
            EngineKind::Stream => Box::new(StreamSession::new()),
            EngineKind::Propagate => Box::new(PropagateSession::new()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One registry row: an engine and its capabilities.
#[derive(Debug)]
pub struct EngineInfo {
    /// The engine.
    pub kind: EngineKind,
    /// One-line description for `--engine` help and docs.
    pub description: &'static str,
    /// Adjacency conventions the engine supports (every registered engine
    /// supports both; the field exists so a future engine may register less).
    pub connectivities: &'static [Connectivity],
    /// Whether the engine scales with a `threads` parameter.
    pub multithreaded: bool,
    /// Auxiliary-memory scaling class.
    pub memory: MemoryClass,
    /// Whether the underlying algorithm consumes rows incrementally (and so
    /// also powers `slap stream` / unbounded ingest).
    pub streaming: bool,
}

/// The registry rows: **the** single site where an engine is added.
/// [`EngineKind::ALL`] (and through it [`EngineKind::parse`], the CLI's
/// engine listing, and the registry-driven suites) derive from this array
/// at compile time.
const REGISTRY_ROWS: [EngineInfo; 6] = [
    EngineInfo {
        kind: EngineKind::Bfs,
        description: "sequential BFS flood fill — the gold reference oracle",
        connectivities: &[Connectivity::Four, Connectivity::Eight],
        multithreaded: false,
        memory: MemoryClass::PixelGrid,
        streaming: false,
    },
    EngineInfo {
        kind: EngineKind::Fast,
        description: "word-parallel run-based two-pass — the sequential hot path",
        connectivities: &[Connectivity::Four, Connectivity::Eight],
        multithreaded: false,
        memory: MemoryClass::RunArena,
        streaming: false,
    },
    EngineInfo {
        kind: EngineKind::Parallel,
        description: "strip-parallel two-pass with seam stitching — scales with cores",
        connectivities: &[Connectivity::Four, Connectivity::Eight],
        multithreaded: true,
        memory: MemoryClass::RunArena,
        streaming: false,
    },
    EngineInfo {
        kind: EngineKind::Tiled {
            tiles_x: 2,
            tiles_y: 2,
        },
        description: "2-D tiled two-pass with hierarchical seam merging — perimeter-bounded seams",
        connectivities: &[Connectivity::Four, Connectivity::Eight],
        multithreaded: true,
        memory: MemoryClass::RunArena,
        streaming: false,
    },
    EngineInfo {
        kind: EngineKind::Stream,
        description: "streaming scan-line labeler — O(cols + live) frontier, row-at-a-time input",
        connectivities: &[Connectivity::Four, Connectivity::Eight],
        multithreaded: false,
        memory: MemoryClass::BoundedFrontier,
        streaming: true,
    },
    EngineInfo {
        kind: EngineKind::Propagate,
        description: "iterative label-equivalence propagation — GPU-style relaxation rounds",
        connectivities: &[Connectivity::Four, Connectivity::Eight],
        multithreaded: false,
        memory: MemoryClass::RunArena,
        streaming: false,
    },
];

static REGISTRY: [EngineInfo; REGISTRY_ROWS.len()] = REGISTRY_ROWS;

/// Enumerates every registered engine with its capabilities, in
/// [`EngineKind::ALL`] order. The single source of truth the CLI, the bench
/// sweeps, and the differential harness dispatch from.
pub fn registry() -> &'static [EngineInfo] {
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{bfs_labels_conn, gen};

    #[test]
    fn registry_covers_every_kind_exactly_once() {
        assert_eq!(registry().len(), EngineKind::ALL.len());
        for (row, kind) in registry().iter().zip(EngineKind::ALL) {
            assert_eq!(row.kind, kind);
            assert_eq!(kind.info().kind, kind);
            assert_eq!(EngineKind::parse(kind.name()), Some(kind));
            assert!(!row.description.is_empty());
            assert!(!row.connectivities.is_empty());
        }
        assert_eq!(EngineKind::parse("oracle"), None);
    }

    #[test]
    fn every_session_matches_the_oracle_and_reports_sane_stats() {
        let img = gen::by_name("blobs", 37, 5).unwrap();
        for info in registry() {
            let mut session = info.kind.session(3);
            let mut grid = LabelGrid::new_background(1, 1);
            for &conn in info.connectivities {
                let truth = bfs_labels_conn(&img, conn);
                let stats = session.label_into(&img, conn, &mut grid);
                assert_eq!(grid, truth, "{} {conn}", info.kind);
                assert_eq!(
                    stats.components,
                    truth.component_count(),
                    "{} {conn}",
                    info.kind
                );
                assert_eq!(stats.threads, session.threads(), "{}", info.kind);
                if info.kind != EngineKind::Bfs {
                    assert!(stats.runs > 0, "{} reports its run universe", info.kind);
                }
                if info.kind == EngineKind::Stream {
                    assert!(stats.peak_frontier_runs > 0);
                    assert!(stats.peak_frontier_runs <= img.cols() / 2 + 1);
                }
                if info.kind == EngineKind::Propagate {
                    assert!(stats.iterations >= 1, "propagate counts its rounds");
                } else {
                    assert_eq!(stats.iterations, 0, "{} is not iterative", info.kind);
                    assert_eq!(stats.reduction_passes, 0, "{}", info.kind);
                }
            }
        }
    }

    #[test]
    fn sessions_reach_a_stable_scratch_watermark() {
        // Two warm-up passes over the frame set (double-buffered arenas can
        // need a second pass for both halves to hit their highs), then the
        // steady state: further passes must not grow any arena — the
        // zero-allocation regime the reuse bench records.
        let frames: Vec<_> = ["random50", "checker", "blobs"]
            .iter()
            .map(|name| gen::by_name(name, 48, 9).unwrap())
            .collect();
        for info in registry() {
            let mut session = info.kind.session(2);
            let mut grid = LabelGrid::new_background(1, 1);
            for _ in 0..2 {
                for img in &frames {
                    session.label_into(img, Connectivity::Four, &mut grid);
                }
            }
            let watermark = session.scratch_bytes();
            assert!(watermark > 0, "{} owns scratch arenas", info.kind);
            for img in &frames {
                session.label_into(img, Connectivity::Four, &mut grid);
            }
            assert_eq!(
                session.scratch_bytes(),
                watermark,
                "{}: warm repeat of a seen frame set must not allocate",
                info.kind
            );
        }
    }

    #[test]
    fn parallel_session_honors_thread_counts() {
        let img = gen::by_name("maze", 32, 3).unwrap();
        let truth = bfs_labels_conn(&img, Connectivity::Four);
        for t in [1usize, 2, 4, 8] {
            let mut session = EngineKind::Parallel.session(t);
            assert_eq!(session.threads(), t.max(1));
            let mut grid = LabelGrid::new_background(1, 1);
            let stats = session.label_into(&img, Connectivity::Four, &mut grid);
            assert_eq!(grid, truth, "threads={t}");
            assert_eq!(stats.threads, t.max(1));
        }
    }
}
