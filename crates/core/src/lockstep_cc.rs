//! Algorithm CC on the cycle-level (lock-step) machine.
//!
//! The virtual-time pipeline executor computes step counts analytically; this
//! module runs the *same* pass logic (shared cores in [`crate::passes`]) as
//! resumable PE state machines on `slap-machine`'s lock-step executor, one
//! simulated SIMD cycle at a time. It exists for three reasons:
//!
//! 1. **validation** — the labeling must be identical and the cycle count
//!    must track the virtual-time makespan (tested);
//! 2. **realism** — it demonstrates that the paper's queues and waits map
//!    onto a 1-word-per-link-per-cycle machine without hidden magic: link
//!    words are drained into a local queue every cycle (the PE's `O(n)`
//!    memory), multi-unit union–find operations stall the PE for their
//!    metered duration, and sends occupy one cycle each;
//! 3. **parallel execution** — the lock-step executor has a deterministic
//!    multithreaded runner, so the full Algorithm CC can be simulated on
//!    all cores (`threads` parameter) with bit-identical results.
//!
//! Cycle accounting convention: one tick = one unit of the virtual-time
//! model. A union–find operation of metered cost `c` holds the PE for `c`
//! ticks (the work happens at once internally; its externally visible
//! message is released when the stall expires, which is when the virtual
//! model would have sent it).

use crate::cc::{CcMetrics, CcOptions, CcRun, PassMetrics};
use crate::passes::{label_absorb, label_local_step, readout_pass, ColumnState};
use crate::stitch::stitch_column;
use crate::NIL;
use slap_image::{Bitmap, Columns, LabelGrid};
use slap_machine::{run_lockstep, run_lockstep_threaded, PeIo, PeProgram, PeStatus};
use slap_unionfind::UnionFind;
use std::collections::VecDeque;
use std::sync::Arc;

/// Link word for the lock-step passes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Msg {
    /// A relevant-union row pair (Union-Find-Pass).
    Pair(u32, u32),
    /// A *speculative* relevant-union pair (§3's "enqueue a pair of finds
    /// for the next processor as soon as two pixels are found that are
    /// adjacent to 1-pixels in the next column"), tagged with the sender's
    /// sequence number so a later [`Msg::Quash`] can refer to it.
    SpecPair(u32, u32, u32),
    /// Revokes the speculative pair with the given sequence number (§3's
    /// "it could then quash the pair of finds it had previously passed to
    /// the next processor").
    Quash(u32),
    /// A `(label, row)` message (Label-Pass).
    Label(u32, u32),
    /// End of stream (the paper's `eos`).
    Eos,
}

/// Counters of the speculative-forwarding machinery (zero unless the
/// quashing variant is enabled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Speculative pairs sent ahead of the finds.
    pub spec_sent: u64,
    /// Quashes sent after the finds revealed an already-merged pair.
    pub quash_sent: u64,
    /// Speculative pairs dropped at the receiver before execution (the
    /// quash overtook them in the in-memory queue).
    pub pairs_dropped: u64,
    /// Executions aborted mid-stall by an arriving quash.
    pub stalls_aborted: u64,
}

/// Cycle counts per phase of a lock-step Algorithm CC run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LockstepCcReport {
    /// Cycles of the left and right Union-Find-Pass runs.
    pub uf_rounds: [u64; 2],
    /// Cycles of the left and right Label-Pass runs.
    pub label_rounds: [u64; 2],
    /// Cycles of the local find/readout/stitch phases (max PE units each).
    pub local_rounds: u64,
    /// Total simulated cycles.
    pub total_rounds: u64,
    /// Speculation counters, summed over both union–find passes.
    pub spec: SpecStats,
}

/// Shared immutable inputs of one directional pass.
struct PassInput {
    cols: Arc<Columns>,
    opts: CcOptions,
    /// §3 speculative forwarding + quashing (lock-step only; see
    /// [`label_components_lockstep_quash`]).
    quash: bool,
}

/// Union-Find-Pass as a resumable PE program.
struct UfPassPe<U: UnionFind> {
    input: Arc<PassInput>,
    pe: usize,
    state: Option<ColumnState<U>>,
    inbox: VecDeque<Msg>,
    outbox: VecDeque<Msg>,
    stall: u64,
    phase: UfPhase,
    /// Next sequence number for outgoing speculative pairs.
    next_seq: u32,
    /// Sequence numbers quashed before their pair was executed.
    quashed: std::collections::HashSet<u32>,
    /// Sequence of the incoming speculative pair currently being executed
    /// (its stall can be aborted by a matching quash).
    inflight: Option<u32>,
    /// Message released when the current stall completes (our own quash,
    /// timed to after the finds that justify it).
    pending_after_stall: Option<Msg>,
    stats: SpecStats,
}

enum UfPhase {
    /// `Make-Set` per row (paper Fig. 5 line 1): `remaining` cycles.
    MakeSet {
        remaining: u64,
    },
    /// Lines 3–7: vertical-run unions, cursor `j`.
    Phase1 {
        j: usize,
    },
    /// Lines 8–14: consume incoming relevant unions.
    Phase2,
    /// Flush remaining outbox words (incl. EOS), then done.
    Drain,
    Finished,
}

impl<U: UnionFind> UfPassPe<U> {
    fn new(input: Arc<PassInput>, pe: usize) -> Self {
        let rows = input.cols.rows();
        let state = ColumnState::<U>::new(&input.cols, pe, input.opts.connectivity);
        UfPassPe {
            input,
            pe,
            state: Some(state),
            inbox: VecDeque::new(),
            outbox: VecDeque::new(),
            stall: 0,
            phase: UfPhase::MakeSet {
                remaining: rows as u64,
            },
            next_seq: 0,
            quashed: std::collections::HashSet::new(),
            inflight: None,
            pending_after_stall: None,
            stats: SpecStats::default(),
        }
    }

    fn drain_link(&mut self, io: &mut PeIo<Msg>) {
        // Every cycle the PE's queue hardware moves the arrived word into
        // local memory (this is the paper's unbounded in-memory queue; the
        // dequeue cost is charged when the word is consumed).
        let Some(w) = io.recv_left() else { return };
        if let Msg::Quash(seq) = w {
            // Quashes act at arrival — that is their entire point: the
            // in-memory queue hardware cancels the matching pair before the
            // PE spends find time on it. If the pair is already executing,
            // abort the rest of its stall (the union was a no-op, so no
            // state needs undoing; partial path compression is retained,
            // which only helps later finds). If it was already fully
            // executed, the quash is stale and ignored.
            if self.inflight == Some(seq) {
                self.stall = 0;
                self.inflight = None;
                self.stats.stalls_aborted += 1;
            } else {
                self.quashed.insert(seq);
            }
            return;
        }
        self.inbox.push_back(w);
    }

    fn flush_one(&mut self, io: &mut PeIo<Msg>) -> bool {
        if let Some(&m) = self.outbox.front() {
            if io.send_right(m) {
                self.outbox.pop_front();
            }
            return true;
        }
        false
    }

    /// Executes one incoming relevant-union pair (confirmed or speculative).
    /// In quashing mode, speculates the forward before the finds and
    /// schedules a quash for release at stall end when the finds reveal the
    /// pair was already merged.
    fn process_pair(&mut self, top: u32, bot: u32, incoming_seq: Option<u32>) {
        let mut extra = 0u64;
        let mut suppress = false;
        let mut my_spec: Option<u32> = None;
        let speculate = self.input.quash;
        let eager = self.input.opts.eager_forward && !speculate;
        if speculate || eager {
            extra += 1;
            if let Some(pair) = ColumnState::<U>::eager_witness(
                &self.input.cols,
                self.pe,
                top,
                bot,
                self.input.opts.connectivity,
            ) {
                if speculate {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.outbox.push_back(Msg::SpecPair(seq, pair.0, pair.1));
                    self.stats.spec_sent += 1;
                    my_spec = Some(seq);
                } else {
                    self.outbox.push_back(Msg::Pair(pair.0, pair.1));
                }
                suppress = true;
            }
        }
        let (units, forward) = self
            .state
            .as_mut()
            .expect("state taken before finish")
            .apply_core(top, bot);
        extra += units;
        match forward {
            Some(pair) if !suppress => self.outbox.push_back(Msg::Pair(pair.0, pair.1)),
            Some(_) => {} // the speculative/eager pair already carries the witness
            None => {
                // The finds found one set (no union): revoke the speculative
                // pair. The quash is released when the stall — the find time
                // that justifies it — completes (or is itself aborted, in
                // which case the quash cascades immediately).
                if let Some(seq) = my_spec {
                    self.pending_after_stall = Some(Msg::Quash(seq));
                    self.stats.quash_sent += 1;
                }
            }
        }
        self.stall = extra;
        self.inflight = incoming_seq.filter(|_| extra > 0);
    }
}

impl<U: UnionFind + Send> PeProgram for UfPassPe<U> {
    type Word = Msg;

    fn tick(&mut self, io: &mut PeIo<Msg>) -> PeStatus {
        self.drain_link(io);
        // A send occupies this cycle (ENQUEUE = 1 in the virtual model).
        if self.flush_one(io) {
            return PeStatus::Running;
        }
        if self.stall > 0 {
            self.stall -= 1;
            if self.stall == 0 {
                self.inflight = None;
            }
            return PeStatus::Running;
        }
        // Release anything deferred to the end of the stall (our own quash),
        // whether the stall ran out naturally or was aborted.
        if let Some(m) = self.pending_after_stall.take() {
            self.inflight = None;
            self.outbox.push_back(m);
        }
        match self.phase {
            UfPhase::MakeSet { ref mut remaining } => {
                *remaining -= 1;
                if *remaining == 0 {
                    self.phase = UfPhase::Phase1 { j: 1 };
                }
            }
            UfPhase::Phase1 { j } => {
                let cols = Arc::clone(&self.input.cols);
                if j >= cols.rows() {
                    if self.pe == 0 {
                        // paper line 8: PE 0 starts with eos in hand
                        self.outbox.push_back(Msg::Eos);
                        self.phase = UfPhase::Drain;
                    } else {
                        self.phase = UfPhase::Phase2;
                    }
                    return PeStatus::Running; // the loop-exit check cycle
                }
                let state = self.state.as_mut().expect("state taken before finish");
                let mut extra = 0u64; // +1 loop cycle is this tick
                if cols.get(self.pe, j - 1) && cols.get(self.pe, j) {
                    let (units, forward) = state.apply_core((j - 1) as u32, j as u32);
                    extra += units;
                    if let Some(pair) = forward {
                        self.outbox.push_back(Msg::Pair(pair.0, pair.1));
                    }
                }
                if self.input.opts.connectivity == slap_image::Connectivity::Eight
                    && crate::passes::bridge_at(&cols, self.pe, j)
                {
                    let state = self.state.as_mut().expect("state taken before finish");
                    let (units, forward) = state.apply_core((j - 2) as u32, j as u32);
                    extra += units;
                    if let Some(pair) = forward {
                        self.outbox.push_back(Msg::Pair(pair.0, pair.1));
                    }
                }
                self.stall = extra;
                self.phase = UfPhase::Phase1 { j: j + 1 };
            }
            UfPhase::Phase2 => {
                // This cycle is the dequeue attempt (DEQUEUE = 1); an empty
                // queue is the idle wait of the virtual model.
                match self.inbox.pop_front() {
                    None => {
                        if self.input.opts.idle_compression {
                            self.state
                                .as_mut()
                                .expect("state taken before finish")
                                .uf
                                .idle_compress(1);
                        }
                    }
                    Some(Msg::Eos) => {
                        self.outbox.push_back(Msg::Eos);
                        self.phase = UfPhase::Drain;
                    }
                    Some(Msg::Pair(top, bot)) => self.process_pair(top, bot, None),
                    Some(Msg::SpecPair(seq, top, bot)) => {
                        if self.quashed.remove(&seq) {
                            // quashed before execution: the dequeue cycle is
                            // all this pair ever costs
                            self.stats.pairs_dropped += 1;
                        } else {
                            self.process_pair(top, bot, Some(seq));
                        }
                    }
                    Some(Msg::Quash(_)) => {
                        unreachable!("quashes are intercepted at arrival")
                    }
                    Some(Msg::Label(..)) => unreachable!("label message in union-find pass"),
                }
            }
            UfPhase::Drain => {
                if self.outbox.is_empty() {
                    self.phase = UfPhase::Finished;
                    return PeStatus::Done;
                }
                // flush_one handles the sending; spend the cycle
            }
            UfPhase::Finished => return PeStatus::Done,
        }
        PeStatus::Running
    }
}

/// Label-Pass as a resumable PE program.
struct LabelPassPe<U: UnionFind> {
    input: Arc<PassInput>,
    pe: usize,
    state: Option<ColumnState<U>>,
    labels: Vec<u32>,
    base_position: u32,
    inbox: VecDeque<Msg>,
    outbox: VecDeque<Msg>,
    stall: u64,
    phase: LabelPhase,
}

enum LabelPhase {
    Local { j: usize },
    Absorb,
    Drain,
    Finished,
}

impl<U: UnionFind> LabelPassPe<U> {
    fn new(input: Arc<PassInput>, pe: usize, state: ColumnState<U>, base_position: u32) -> Self {
        let bound = state.uf.id_bound();
        LabelPassPe {
            input,
            pe,
            state: Some(state),
            labels: vec![NIL; bound],
            base_position,
            inbox: VecDeque::new(),
            outbox: VecDeque::new(),
            stall: 0,
            phase: LabelPhase::Local { j: 0 },
        }
    }
}

impl<U: UnionFind + Send> PeProgram for LabelPassPe<U> {
    type Word = Msg;

    fn tick(&mut self, io: &mut PeIo<Msg>) -> PeStatus {
        if let Some(w) = io.recv_left() {
            self.inbox.push_back(w);
        }
        if let Some(&m) = self.outbox.front() {
            if io.send_right(m) {
                self.outbox.pop_front();
            }
            return PeStatus::Running;
        }
        if self.stall > 0 {
            self.stall -= 1;
            return PeStatus::Running;
        }
        let state = self.state.as_mut().expect("state taken before finish");
        match self.phase {
            LabelPhase::Local { j } => {
                let cols = &self.input.cols;
                if j >= cols.rows() {
                    if self.pe == 0 {
                        self.outbox.push_back(Msg::Eos);
                        self.phase = LabelPhase::Drain;
                    } else {
                        self.phase = LabelPhase::Absorb;
                    }
                    return PeStatus::Running;
                }
                let (units, forward) = label_local_step(
                    cols,
                    self.pe,
                    state,
                    &mut self.labels,
                    self.base_position,
                    j,
                );
                self.stall = units.saturating_sub(1);
                if let Some((label, row)) = forward {
                    self.outbox.push_back(Msg::Label(label, row));
                }
                self.phase = LabelPhase::Local { j: j + 1 };
            }
            LabelPhase::Absorb => match self.inbox.pop_front() {
                None => {}
                Some(Msg::Eos) => {
                    self.outbox.push_back(Msg::Eos);
                    self.phase = LabelPhase::Drain;
                }
                Some(Msg::Label(label, row)) => {
                    let (units, forward) = label_absorb(
                        state,
                        &mut self.labels,
                        self.input.opts.forward_policy,
                        label,
                        row,
                    );
                    self.stall = units;
                    if let Some((l, r)) = forward {
                        self.outbox.push_back(Msg::Label(l, r));
                    }
                }
                Some(Msg::Pair(..) | Msg::SpecPair(..) | Msg::Quash(..)) => {
                    unreachable!("union-find message in label pass")
                }
            },
            LabelPhase::Drain => {
                if self.outbox.is_empty() {
                    self.phase = LabelPhase::Finished;
                    return PeStatus::Done;
                }
            }
            LabelPhase::Finished => return PeStatus::Done,
        }
        PeStatus::Running
    }
}

fn run_programs<P: PeProgram>(pes: &mut [P], threads: usize, max_rounds: u64) -> u64 {
    if threads <= 1 {
        run_lockstep(pes, max_rounds).rounds
    } else {
        run_lockstep_threaded(pes, threads, max_rounds).rounds
    }
}

/// One directional pass on the lock-step machine: UF pass (cycled), local
/// finds, label pass (cycled), local readout.
fn directional_pass_lockstep<U: UnionFind + Send>(
    cols: Arc<Columns>,
    opts: &CcOptions,
    label_offset: u32,
    threads: usize,
    quash: bool,
) -> (Vec<Vec<u32>>, [u64; 2], u64, SpecStats) {
    let n = cols.cols();
    let rows = cols.rows();
    let input = Arc::new(PassInput {
        cols: Arc::clone(&cols),
        opts: *opts,
        quash,
    });
    let budget = 64 * (rows as u64 + 8) * (n as u64 + 8) + 1_000_000;
    let mut uf_pes: Vec<UfPassPe<U>> = (0..n)
        .map(|pe| UfPassPe::new(Arc::clone(&input), pe))
        .collect();
    let uf_rounds = run_programs(&mut uf_pes, threads, budget);
    // local find pass
    let mut local = 0u64;
    let mut spec = SpecStats::default();
    for pe in &uf_pes {
        spec.spec_sent += pe.stats.spec_sent;
        spec.quash_sent += pe.stats.quash_sent;
        spec.pairs_dropped += pe.stats.pairs_dropped;
        spec.stalls_aborted += pe.stats.stalls_aborted;
    }
    let mut states: Vec<ColumnState<U>> = uf_pes
        .into_iter()
        .map(|pe| pe.state.expect("uf pass finished"))
        .collect();
    for (pe, state) in states.iter_mut().enumerate() {
        local = local.max(crate::passes::find_pass(&cols, pe, state));
    }
    // label pass
    let mut label_pes: Vec<LabelPassPe<U>> = states
        .into_iter()
        .enumerate()
        .map(|(pe, st)| {
            LabelPassPe::new(
                Arc::clone(&input),
                pe,
                st,
                label_offset + (pe * rows) as u32,
            )
        })
        .collect();
    let label_rounds = run_programs(&mut label_pes, threads, budget);
    // local readout
    let mut out = Vec::with_capacity(n);
    for (pe, lp) in label_pes.iter_mut().enumerate() {
        let mut state = lp.state.take().expect("label pass finished");
        let (row_labels, units) = readout_pass(&cols, pe, &mut state, &lp.labels);
        local = local.max(units);
        out.push(row_labels);
    }
    (out, [uf_rounds, label_rounds], local, spec)
}

/// Runs the full Algorithm CC cycle-by-cycle on the lock-step machine
/// (optionally across `threads` workers; results are identical for any
/// thread count). Returns the run — whose labels must equal the virtual-time
/// and oracle outputs — plus the cycle report.
///
/// The returned [`CcRun`] metrics carry only the makespans (the lock-step
/// machine does not produce per-PE virtual-clock breakdowns); use the
/// virtual-time executor for detailed accounting.
pub fn label_components_lockstep<U: UnionFind + Send>(
    img: &Bitmap,
    opts: &CcOptions,
    threads: usize,
) -> (CcRun, LockstepCcReport) {
    label_components_lockstep_quash::<U>(img, opts, threads, false)
}

/// [`label_components_lockstep`] with §3's speculative forwarding +
/// quashing switched on when `quash` is true: each incoming relevant-union
/// pair whose rows visibly touch the next column is forwarded *before* the
/// finds run, and revoked with a [`Msg::Quash`] if the finds then reveal the
/// two rows already share a set. Quashes act at arrival in the receiver's
/// in-memory queue, dropping the pair before any find time is spent on it
/// (or aborting the remainder of an execution already under way — safe,
/// since a quashed pair's union is a no-op and path compression is monotone).
///
/// Only the lock-step executor supports this variant: quashing is inherently
/// an *arrival-time* mechanism, and the virtual-time executor has no arrival
/// events between dequeues. The labels are identical in either mode
/// (tested); the [`SpecStats`] in the report quantify the speculation
/// traffic and the work it saved.
pub fn label_components_lockstep_quash<U: UnionFind + Send>(
    img: &Bitmap,
    opts: &CcOptions,
    threads: usize,
    quash: bool,
) -> (CcRun, LockstepCcReport) {
    let rows = img.rows();
    let ncols = img.cols();
    let cols = Arc::new(img.columns());
    let (left_labels, left_rounds, left_local, left_spec) =
        directional_pass_lockstep::<U>(Arc::clone(&cols), opts, 0, threads, quash);
    let flipped = Arc::new(img.flip_horizontal().columns());
    let offset = (rows * ncols) as u32;
    let (right_labels_flipped, right_rounds, right_local, right_spec) =
        directional_pass_lockstep::<U>(flipped, opts, offset, threads, quash);
    let mut grid = LabelGrid::new_background(rows, ncols);
    let mut stitch_makespan = 0u64;
    for c in 0..ncols {
        let (finals, units) = stitch_column(&left_labels[c], &right_labels_flipped[ncols - 1 - c]);
        stitch_makespan = stitch_makespan.max(units);
        for (j, &label) in finals.iter().enumerate() {
            if label != NIL {
                grid.set(j, c, label);
            }
        }
    }
    let local_rounds = left_local + right_local + stitch_makespan;
    let total_rounds =
        left_rounds[0] + left_rounds[1] + right_rounds[0] + right_rounds[1] + local_rounds;
    let report = LockstepCcReport {
        uf_rounds: [left_rounds[0], right_rounds[0]],
        label_rounds: [left_rounds[1], right_rounds[1]],
        local_rounds,
        total_rounds,
        spec: SpecStats {
            spec_sent: left_spec.spec_sent + right_spec.spec_sent,
            quash_sent: left_spec.quash_sent + right_spec.quash_sent,
            pairs_dropped: left_spec.pairs_dropped + right_spec.pairs_dropped,
            stalls_aborted: left_spec.stalls_aborted + right_spec.stalls_aborted,
        },
    };
    let run = CcRun {
        labels: grid,
        metrics: CcMetrics {
            left: PassMetrics::default(),
            right: PassMetrics::default(),
            stitch_makespan,
            stitch_busy: 0,
            load_steps: 0,
            total_steps: total_rounds,
        },
    };
    (run, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::label_components;
    use slap_image::{fast_labels, gen};
    use slap_unionfind::{RankHalvingUf, TarjanUf};

    #[test]
    fn lockstep_labels_match_oracle_and_virtual_time() {
        for name in ["random50", "comb", "fig3a", "tournament", "fan"] {
            let img = gen::by_name(name, 24, 5).unwrap();
            let truth = fast_labels(&img);
            let (run, _) = label_components_lockstep::<TarjanUf>(&img, &CcOptions::default(), 1);
            assert_eq!(run.labels, truth, "lockstep on {name}");
            let vt = label_components::<TarjanUf>(&img, &CcOptions::default());
            assert_eq!(vt.labels, truth);
        }
    }

    #[test]
    fn lockstep_cycles_track_virtual_makespan() {
        for name in ["random50", "comb", "tournament"] {
            let img = gen::by_name(name, 32, 3).unwrap();
            let (_, report) = label_components_lockstep::<TarjanUf>(&img, &CcOptions::default(), 1);
            let vt = label_components::<TarjanUf>(&img, &CcOptions::default());
            let vt_total = vt.metrics.total_steps as f64;
            let ls_total = report.total_rounds as f64;
            let ratio = ls_total / vt_total;
            assert!(
                (0.5..3.0).contains(&ratio),
                "{name}: lockstep {ls_total} vs virtual {vt_total} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn threaded_lockstep_is_deterministic() {
        let img = gen::by_name("comb", 28, 2).unwrap();
        let (seq, seq_report) =
            label_components_lockstep::<RankHalvingUf>(&img, &CcOptions::default(), 1);
        for threads in [2, 4] {
            let (par, par_report) =
                label_components_lockstep::<RankHalvingUf>(&img, &CcOptions::default(), threads);
            assert_eq!(par.labels, seq.labels, "threads={threads}");
            assert_eq!(par_report, seq_report, "threads={threads}");
        }
    }

    #[test]
    fn variants_work_on_lockstep_too() {
        let img = gen::by_name("fig3a", 24, 7).unwrap();
        let truth = fast_labels(&img);
        for eager in [false, true] {
            for idle in [false, true] {
                let opts = CcOptions {
                    eager_forward: eager,
                    idle_compression: idle,
                    ..CcOptions::default()
                };
                let (run, _) = label_components_lockstep::<TarjanUf>(&img, &opts, 1);
                assert_eq!(run.labels, truth, "eager={eager} idle={idle}");
            }
        }
    }

    #[test]
    fn rectangular_images_work() {
        let img = gen::uniform_random(9, 33, 0.5, 4);
        let truth = fast_labels(&img);
        let (run, _) = label_components_lockstep::<TarjanUf>(&img, &CcOptions::default(), 2);
        assert_eq!(run.labels, truth);
    }

    #[test]
    fn quashing_variant_labels_are_identical() {
        for name in ["random50", "comb", "fig3a", "tournament", "maze"] {
            let img = gen::by_name(name, 24, 5).unwrap();
            let truth = fast_labels(&img);
            let (run, report) =
                label_components_lockstep_quash::<TarjanUf>(&img, &CcOptions::default(), 1, true);
            assert_eq!(run.labels, truth, "quashing on {name}");
            assert!(
                report.spec.pairs_dropped + report.spec.stalls_aborted <= report.spec.quash_sent,
                "{name}: more cancellations than quashes"
            );
            assert!(
                report.spec.quash_sent <= report.spec.spec_sent,
                "{name}: more quashes than speculations"
            );
        }
    }

    #[test]
    fn quashing_fires_exactly_on_redundant_connectivity() {
        // Same-set pairs require a cycle in the pixel adjacency (two merge
        // paths for the same pair of sets). Solid bands and dense noise have
        // them in abundance; spanning trees (maze) and the nested brackets
        // (fig3a) have none, so their quash counts must be exactly zero even
        // though they speculate.
        for name in ["hstripes", "random65", "full", "tournament"] {
            let img = gen::by_name(name, 48, 1).unwrap();
            let (_, report) =
                label_components_lockstep_quash::<TarjanUf>(&img, &CcOptions::default(), 1, true);
            assert!(report.spec.spec_sent > 0, "{name}: no speculation happened");
            assert!(report.spec.quash_sent > 0, "{name}: no quashes were needed");
        }
        for name in ["maze", "fig3a", "spiral"] {
            let img = gen::by_name(name, 48, 1).unwrap();
            let (_, report) =
                label_components_lockstep_quash::<TarjanUf>(&img, &CcOptions::default(), 1, true);
            assert_eq!(
                report.spec.quash_sent, 0,
                "{name} is acyclic: every union must be novel"
            );
        }
    }

    #[test]
    fn quashing_contains_eagerness_cascades() {
        // On solid bands, a bare eager forward of an already-merged pair is
        // re-forwarded by every later column (each sees the witness before
        // running the finds) — the cascade travels the full array. Quashing
        // kills each speculative pair one hop downstream, so it must send
        // far fewer union-pass messages and not be slower.
        let img = gen::by_name("hstripes", 48, 1).unwrap();
        let eager_opts = CcOptions {
            eager_forward: true,
            ..CcOptions::default()
        };
        let (eager_run, eager_rep) = label_components_lockstep::<TarjanUf>(&img, &eager_opts, 1);
        let (quash_run, quash_rep) =
            label_components_lockstep_quash::<TarjanUf>(&img, &CcOptions::default(), 1, true);
        assert_eq!(eager_run.labels, quash_run.labels);
        assert!(
            quash_rep.total_rounds <= eager_rep.total_rounds,
            "quashing slower than eager: {} vs {}",
            quash_rep.total_rounds,
            eager_rep.total_rounds
        );
        // and nearly every quash overtakes its pair on this family
        assert!(quash_rep.spec.pairs_dropped * 10 >= quash_rep.spec.quash_sent * 9);
    }

    #[test]
    fn quashing_is_deterministic_across_threads() {
        let img = gen::by_name("fig3a", 28, 3).unwrap();
        let (seq, seq_report) =
            label_components_lockstep_quash::<TarjanUf>(&img, &CcOptions::default(), 1, true);
        let (par, par_report) =
            label_components_lockstep_quash::<TarjanUf>(&img, &CcOptions::default(), 2, true);
        assert_eq!(par.labels, seq.labels);
        assert_eq!(par_report, seq_report);
    }

    #[test]
    fn eight_connectivity_on_lockstep_matches_oracle() {
        use slap_image::{fast_labels_conn, Connectivity};
        let opts = CcOptions {
            connectivity: Connectivity::Eight,
            ..CcOptions::default()
        };
        for name in ["staircase", "checker", "random50", "fig3a"] {
            let img = gen::by_name(name, 20, 9).unwrap();
            let truth = fast_labels_conn(&img, Connectivity::Eight);
            let (run, _) = label_components_lockstep::<TarjanUf>(&img, &opts, 1);
            assert_eq!(run.labels, truth, "lockstep 8-conn on {name}");
            let (par, _) = label_components_lockstep::<TarjanUf>(&img, &opts, 2);
            assert_eq!(par.labels, truth, "threaded lockstep 8-conn on {name}");
        }
    }
}
