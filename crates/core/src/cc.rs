//! Algorithm CC (paper Fig. 2): the complete SLAP component labeling.

use crate::passes::{find_pass, label_pass, readout_pass, unionfind_pass};
use crate::stitch::stitch_column;
use crate::NIL;
use serde::{Deserialize, Serialize};
use slap_image::{Bitmap, Connectivity, LabelGrid};
use slap_machine::{costs, run_pipeline_pooled, PipelineBuffers, PipelineConfig, PipelineReport};
use slap_unionfind::{
    BlumUf, IdealO1, QuickFind, RankHalvingUf, RemUf, SplittingUf, TarjanUf, UfKind, UnionFind,
    WeightedUf,
};

/// When does a set re-forward label messages in `Label-Pass`?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardPolicy {
    /// Forward a label only when it strictly improves (lowers) the set's
    /// current label. Fewer messages, identical final labels (the minimum
    /// still reaches everyone). The default.
    #[default]
    OnImprovement,
    /// Forward every arrival, like the literal pseudocode of Fig. 6 line 14.
    Always,
}

/// Algorithm variant switches (paper §3 discusses the forwarding and
/// compression variants; `connectivity` is this workspace's extension).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CcOptions {
    /// Pixel adjacency convention. The paper's algorithm is 4-connectivity;
    /// [`Connectivity::Eight`] enables the diagonal-bridge extension (see
    /// `passes` docs) at unchanged asymptotic cost.
    pub connectivity: Connectivity,
    /// Label re-forwarding policy in `Label-Pass`.
    pub forward_policy: ForwardPolicy,
    /// Forward an incoming relevant-union pair immediately when both rows
    /// visibly touch the next column, before running the finds (the paper's
    /// speculative-forwarding idea, in a form that never needs quashing for
    /// *correctness*). Caution: on solid images an already-merged pair is
    /// re-forwarded by every later column, so this variant can cascade
    /// (experiment E16 measures a 61× blow-up on `full`); the full §3
    /// mechanism with quashing
    /// ([`lockstep_cc::label_components_lockstep_quash`](crate::lockstep_cc::label_components_lockstep_quash))
    /// contains it.
    pub eager_forward: bool,
    /// Spend blocked-on-empty-queue time on union–find path compression
    /// (the paper's idle-compression idea).
    pub idle_compression: bool,
    /// Include the image input phase (`3·rows` steps) in `total_steps`.
    pub charge_load: bool,
    /// Steps to push one message across a link: 1 on the word-wide SLAP,
    /// or the message bit width on the Theorem 5 bit-serial SLAP.
    pub word_steps: u64,
}

impl Default for CcOptions {
    fn default() -> Self {
        CcOptions {
            connectivity: Connectivity::Four,
            forward_policy: ForwardPolicy::OnImprovement,
            eager_forward: false,
            idle_compression: false,
            charge_load: false,
            word_steps: costs::WORD_STEPS,
        }
    }
}

/// Step accounting for one directional (left- or right-connected) pass.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PassMetrics {
    /// The pipelined `Union-Find-Pass` (Fig. 5).
    pub uf_pass: PipelineReport,
    /// Makespan of the local find pass (step 2 of Fig. 4): max units over
    /// PEs, since all PEs run it concurrently.
    pub find_makespan: u64,
    /// Total find-pass units over all PEs.
    pub find_busy: u64,
    /// The pipelined `Label-Pass` (Fig. 6).
    pub label_pass: PipelineReport,
    /// Makespan of the local per-pixel readout (step 4 of Fig. 4): max units
    /// over PEs.
    pub readout_makespan: u64,
    /// Total readout units over all PEs.
    pub readout_busy: u64,
}

impl PassMetrics {
    /// Machine time of the whole pass (the SIMD controller runs the four
    /// phases back to back).
    pub fn makespan(&self) -> u64 {
        self.uf_pass.makespan
            + self.find_makespan
            + self.label_pass.makespan
            + self.readout_makespan
    }
}

/// Step accounting for a full Algorithm CC run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CcMetrics {
    /// The left-connected labeling pass.
    pub left: PassMetrics,
    /// The right-connected labeling pass (mirrored run).
    pub right: PassMetrics,
    /// Makespan of the per-PE stitch (max units over PEs).
    pub stitch_makespan: u64,
    /// Total stitch units over all PEs.
    pub stitch_busy: u64,
    /// Image input phase steps (0 unless `CcOptions::charge_load`).
    pub load_steps: u64,
    /// End-to-end machine time: load + left + right + stitch.
    pub total_steps: u64,
}

/// Result of one Algorithm CC run: the labeling plus exact step accounting.
#[derive(Clone, Debug)]
pub struct CcRun {
    /// Per-pixel labels (minimum column-major position per component —
    /// identical to the oracle's output, not merely the same partition).
    pub labels: LabelGrid,
    /// Step accounting.
    pub metrics: CcMetrics,
}

/// One directional pass over `cols` (already mirrored for the right pass).
/// `label_offset` keeps the two passes' label spaces disjoint.
/// Returns per-column per-row labels plus metrics.
fn directional_pass<U: UnionFind>(
    cols: &slap_image::Columns,
    opts: &CcOptions,
    label_offset: u32,
    bufs: &mut PipelineBuffers<(u32, u32)>,
) -> (Vec<Vec<u32>>, PassMetrics) {
    let n_pes = cols.cols();
    let rows = cols.rows();
    let cfg = PipelineConfig {
        n_pes,
        word_steps: opts.word_steps,
        start_clock: 0,
    };
    // Phase 1+2: Union-Find-Pass (pipelined)
    let (mut states, uf_report) = run_pipeline_pooled(cfg, bufs, |pe, ctx| {
        unionfind_pass::<U>(cols, opts, pe, ctx)
    });
    // Step 2 of Left-Components: local finds (concurrent across PEs)
    let mut find_makespan = 0u64;
    let mut find_busy = 0u64;
    for (pe, state) in states.iter_mut().enumerate() {
        let units = find_pass(cols, pe, state);
        find_makespan = find_makespan.max(units);
        find_busy += units;
    }
    // Step 3: Label-Pass (pipelined)
    let mut label_slots: Vec<Vec<u32>> =
        states.iter().map(|s| vec![NIL; s.uf.id_bound()]).collect();
    let (_, label_report) = run_pipeline_pooled(cfg, bufs, |pe, ctx| {
        let base = label_offset + (pe * rows) as u32;
        label_pass::<U>(
            cols,
            opts,
            pe,
            &mut states[pe],
            &mut label_slots[pe],
            base,
            ctx,
        )
    });
    // Step 4: per-pixel readout (local, concurrent)
    let mut readout_makespan = 0u64;
    let mut readout_busy = 0u64;
    let col_labels: Vec<Vec<u32>> = states
        .iter_mut()
        .enumerate()
        .map(|(pe, state)| {
            let (row_labels, units) = readout_pass(cols, pe, state, &label_slots[pe]);
            readout_makespan = readout_makespan.max(units);
            readout_busy += units;
            row_labels
        })
        .collect();
    (
        col_labels,
        PassMetrics {
            uf_pass: uf_report,
            find_makespan,
            find_busy,
            label_pass: label_report,
            readout_makespan,
            readout_busy,
        },
    )
}

/// Labels the connected components of `img` on the simulated SLAP with
/// union–find implementation `U`, under the given options.
///
/// The output labeling is exactly the oracle labeling (minimum column-major
/// position per component). See [`CcMetrics`] for the step accounting.
pub fn label_components<U: UnionFind>(img: &Bitmap, opts: &CcOptions) -> CcRun {
    let rows = img.rows();
    let ncols = img.cols();
    assert!(
        2 * (rows as u64) * (ncols as u64) < u32::MAX as u64,
        "image too large for the u32 label spaces of the two passes"
    );
    let cols = img.columns();
    // One message-buffer pool serves all four pipelined passes of the run:
    // RowPair and LabelMsg share the (u32, u32) wire format.
    let mut bufs = PipelineBuffers::new();
    let (left_labels, left) = directional_pass::<U>(&cols, opts, 0, &mut bufs);
    let flipped = img.flip_horizontal();
    let fcols = flipped.columns();
    let offset = (rows * ncols) as u32;
    let (right_labels_flipped, right) = directional_pass::<U>(&fcols, opts, offset, &mut bufs);

    // Step 3 of Algorithm CC: per-PE stitch (concurrent across PEs).
    let mut grid = LabelGrid::new_background(rows, ncols);
    let mut stitch_makespan = 0u64;
    let mut stitch_busy = 0u64;
    for c in 0..ncols {
        let right_col = &right_labels_flipped[ncols - 1 - c];
        let (finals, units) = stitch_column(&left_labels[c], right_col);
        stitch_makespan = stitch_makespan.max(units);
        stitch_busy += units;
        for (j, &label) in finals.iter().enumerate() {
            if label != NIL {
                grid.set(j, c, label);
            }
        }
    }
    let load_steps = if opts.charge_load {
        costs::load_steps(rows)
    } else {
        0
    };
    let total_steps = load_steps + left.makespan() + right.makespan() + stitch_makespan;
    CcRun {
        labels: grid,
        metrics: CcMetrics {
            left,
            right,
            stitch_makespan,
            stitch_busy,
            load_steps,
            total_steps,
        },
    }
}

/// [`label_components`] with a runtime-selected union–find implementation.
pub fn label_components_kind(img: &Bitmap, kind: UfKind, opts: &CcOptions) -> CcRun {
    match kind {
        UfKind::QuickFind => label_components::<QuickFind>(img, opts),
        UfKind::Weighted => label_components::<WeightedUf>(img, opts),
        UfKind::Tarjan => label_components::<TarjanUf>(img, opts),
        UfKind::RankHalving => label_components::<RankHalvingUf>(img, opts),
        UfKind::Splitting => label_components::<SplittingUf>(img, opts),
        UfKind::Rem => label_components::<RemUf>(img, opts),
        UfKind::Blum => label_components::<BlumUf>(img, opts),
        UfKind::IdealO1 => label_components::<IdealO1>(img, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, fast_labels_conn, gen};

    fn check_exact(img: &Bitmap, opts: &CcOptions) {
        let truth = fast_labels_conn(img, opts.connectivity);
        for &kind in UfKind::ALL {
            let run = label_components_kind(img, kind, opts);
            assert_eq!(
                run.labels, truth,
                "uf={kind} options={opts:?} image:\n{img:?}"
            );
        }
    }

    fn eight(opts: CcOptions) -> CcOptions {
        CcOptions {
            connectivity: Connectivity::Eight,
            ..opts
        }
    }

    #[test]
    fn labels_tiny_shapes_exactly() {
        for art in [
            "#",
            ".",
            "##\n##\n",
            "#.\n.#\n",
            "###\n..#\n###\n",
            "#.#\n###\n#.#\n",
            "#####\n.....\n#####\n",
            ".#.\n###\n.#.\n",
        ] {
            check_exact(&Bitmap::from_art(art), &CcOptions::default());
        }
    }

    #[test]
    fn labels_single_column_and_single_row() {
        check_exact(&Bitmap::from_art("#\n#\n.\n#\n"), &CcOptions::default());
        check_exact(&Bitmap::from_art("##.#"), &CcOptions::default());
    }

    #[test]
    fn labels_rectangular_images() {
        let img = gen::uniform_random(13, 37, 0.45, 3);
        check_exact(&img, &CcOptions::default());
        let img = gen::uniform_random(37, 13, 0.45, 4);
        check_exact(&img, &CcOptions::default());
    }

    #[test]
    fn labels_all_generators_exactly() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 11).unwrap();
            let truth = fast_labels(&img);
            let run = label_components::<TarjanUf>(&img, &CcOptions::default());
            assert_eq!(run.labels, truth, "workload {name}");
        }
    }

    #[test]
    fn all_uf_kinds_agree_on_adversarial_images() {
        for name in ["fig3a", "comb", "tournament", "evenrows", "fan"] {
            let img = gen::by_name(name, 32, 5).unwrap();
            check_exact(&img, &CcOptions::default());
        }
    }

    #[test]
    fn variants_produce_identical_labels() {
        let img = gen::uniform_random(40, 40, 0.5, 21);
        let truth = fast_labels(&img);
        for eager in [false, true] {
            for idle in [false, true] {
                for policy in [ForwardPolicy::OnImprovement, ForwardPolicy::Always] {
                    let opts = CcOptions {
                        forward_policy: policy,
                        eager_forward: eager,
                        idle_compression: idle,
                        ..CcOptions::default()
                    };
                    check_exact(&img, &opts);
                    let _ = &truth;
                }
            }
        }
    }

    #[test]
    fn forward_always_sends_at_least_as_many_messages() {
        let img = gen::by_name("fig3a", 48, 1).unwrap();
        let a = label_components::<TarjanUf>(
            &img,
            &CcOptions {
                forward_policy: ForwardPolicy::Always,
                ..CcOptions::default()
            },
        );
        let b = label_components::<TarjanUf>(&img, &CcOptions::default());
        assert!(a.metrics.left.label_pass.messages >= b.metrics.left.label_pass.messages);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn total_steps_accumulate_all_phases() {
        let img = gen::uniform_random(32, 32, 0.5, 2);
        let run = label_components::<IdealO1>(&img, &CcOptions::default());
        let m = &run.metrics;
        assert_eq!(
            m.total_steps,
            m.left.makespan() + m.right.makespan() + m.stitch_makespan
        );
        let loaded = label_components::<IdealO1>(
            &img,
            &CcOptions {
                charge_load: true,
                ..CcOptions::default()
            },
        );
        assert_eq!(loaded.metrics.total_steps, m.total_steps + 3 * 32);
    }

    #[test]
    fn ideal_uf_runs_in_linear_steps() {
        // Lemma 2 smoke test: with O(1) union-find the makespan grows
        // linearly; check steps/n stays within a band across a size sweep.
        let mut ratios = Vec::new();
        for n in [32usize, 64, 128] {
            let img = gen::uniform_random(n, n, 0.5, 9);
            let run = label_components::<IdealO1>(&img, &CcOptions::default());
            ratios.push(run.metrics.total_steps as f64 / n as f64);
        }
        let (min, max) = (
            ratios.iter().cloned().fold(f64::MAX, f64::min),
            ratios.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(max / min < 1.6, "steps/n drifts superlinearly: {ratios:?}");
    }

    #[test]
    fn empty_and_full_images() {
        check_exact(&Bitmap::new(16, 16), &CcOptions::default());
        check_exact(&gen::full(16, 16), &CcOptions::default());
    }

    #[test]
    fn eight_conn_labels_tiny_diagonal_shapes_exactly() {
        for art in [
            "#.\n.#\n",
            ".#\n#.\n",
            "#.#\n.#.\n#.#\n",
            "#..\n.#.\n..#\n",
            "#.#\n...\n#.#\n",
            "##.\n..#\n##.\n",
            "#.#.#\n.....\n#.#.#\n",
        ] {
            check_exact(&Bitmap::from_art(art), &eight(CcOptions::default()));
        }
    }

    #[test]
    fn eight_conn_fuses_antidiagonals() {
        let img = gen::by_name("antidiag", 32, 1).unwrap();
        let run = label_components::<TarjanUf>(&img, &eight(CcOptions::default()));
        let truth = fast_labels_conn(&img, Connectivity::Eight);
        assert_eq!(run.labels, truth);
        // Under 4-connectivity every pixel is a singleton; under
        // 8-connectivity each anti-diagonal fuses into one component.
        let four = fast_labels(&img);
        assert_eq!(four.component_count(), img.count_ones());
        assert!(truth.component_count() < four.component_count() / 4);
    }

    #[test]
    fn eight_conn_labels_all_generators_exactly() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 11).unwrap();
            let opts = eight(CcOptions::default());
            let truth = fast_labels_conn(&img, Connectivity::Eight);
            let run = label_components::<TarjanUf>(&img, &opts);
            assert_eq!(run.labels, truth, "workload {name}");
        }
    }

    #[test]
    fn eight_conn_all_uf_kinds_agree_on_adversarial_images() {
        for name in ["fig3a", "comb", "staircase", "checker", "maze"] {
            let img = gen::by_name(name, 24, 5).unwrap();
            check_exact(&img, &eight(CcOptions::default()));
        }
    }

    #[test]
    fn eight_conn_variants_produce_identical_labels() {
        let img = gen::uniform_random(36, 36, 0.45, 23);
        for eager in [false, true] {
            for idle in [false, true] {
                for policy in [ForwardPolicy::OnImprovement, ForwardPolicy::Always] {
                    let opts = eight(CcOptions {
                        forward_policy: policy,
                        eager_forward: eager,
                        idle_compression: idle,
                        ..CcOptions::default()
                    });
                    check_exact(&img, &opts);
                }
            }
        }
    }

    #[test]
    fn eight_conn_rectangular_images() {
        check_exact(
            &gen::uniform_random(11, 37, 0.4, 6),
            &eight(CcOptions::default()),
        );
        check_exact(
            &gen::uniform_random(37, 11, 0.4, 7),
            &eight(CcOptions::default()),
        );
        check_exact(&Bitmap::from_art("#\n.\n#\n"), &eight(CcOptions::default()));
        check_exact(&Bitmap::from_art("#.#"), &eight(CcOptions::default()));
    }

    #[test]
    fn eight_conn_density_sweep_matches_oracle() {
        for (i, density) in [0.1, 0.3, 0.5, 0.7, 0.9].iter().enumerate() {
            let img = gen::uniform_random(28, 28, *density, 100 + i as u64);
            check_exact(&img, &eight(CcOptions::default()));
        }
    }
}
