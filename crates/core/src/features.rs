//! Component feature extraction on the SLAP (an application of Corollary 4).
//!
//! Corollary 4 generalizes from "minimum" to *any* associative and
//! commutative binary operator over initial pixel values. This module
//! exercises that generality with a **product monoid**: every pixel carries a
//! [`Features`] record (area 1, its own coordinates as bounding-box and
//! centroid seeds, its local perimeter contribution), and one fold per
//! direction — the same pipeline shape and asymptotic cost as a single
//! `Label-Pass` — yields per-component area, bounding box, centroid and
//! perimeter. This is the measurement stage of the intermediate-level vision
//! pipelines the paper's introduction motivates (region properties after
//! region labeling).
//!
//! Also here: the image-wide **Euler number** (components minus holes),
//! computed by Gray's quad-counting. Each PE counts the 2×2 quad patterns
//! that straddle its column boundary — a purely local scan — and one
//! O(n)-step reduction sums them, another example of the local-work +
//! linear-pass structure the architecture favors.

use crate::aggregate::{component_fold_conn, Fold, FoldMetrics};
use slap_image::stream::{BitmapRows, RetiredComponent};
use slap_image::{label_stream, Bitmap, Connectivity, LabelGrid};

/// Per-component geometric features (a commutative monoid under
/// [`Features::merge`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Features {
    /// Pixel count.
    pub area: u64,
    /// Topmost row.
    pub min_row: u32,
    /// Bottommost row.
    pub max_row: u32,
    /// Leftmost column.
    pub min_col: u32,
    /// Rightmost column.
    pub max_col: u32,
    /// Sum of row indices (centroid numerator).
    pub sum_row: u64,
    /// Sum of column indices (centroid numerator).
    pub sum_col: u64,
    /// Number of pixel edges exposed to background or the image border
    /// (the 4-neighbor boundary length).
    pub perimeter: u64,
}

impl Features {
    /// The monoid identity (empty region).
    pub const EMPTY: Features = Features {
        area: 0,
        min_row: u32::MAX,
        max_row: 0,
        min_col: u32::MAX,
        max_col: 0,
        sum_row: 0,
        sum_col: 0,
        perimeter: 0,
    };

    /// The feature record of the single pixel `(r, c)` with `exposed`
    /// boundary edges.
    pub fn pixel(r: usize, c: usize, exposed: u64) -> Features {
        Features {
            area: 1,
            min_row: r as u32,
            max_row: r as u32,
            min_col: c as u32,
            max_col: c as u32,
            sum_row: r as u64,
            sum_col: c as u64,
            perimeter: exposed,
        }
    }

    /// The commutative, associative combination (elementwise min/max/sum).
    pub fn merge(a: Features, b: Features) -> Features {
        Features {
            area: a.area + b.area,
            min_row: a.min_row.min(b.min_row),
            max_row: a.max_row.max(b.max_row),
            min_col: a.min_col.min(b.min_col),
            max_col: a.max_col.max(b.max_col),
            sum_row: a.sum_row + b.sum_row,
            sum_col: a.sum_col + b.sum_col,
            perimeter: a.perimeter + b.perimeter,
        }
    }

    /// Bounding-box width.
    pub fn width(&self) -> u32 {
        self.max_col - self.min_col + 1
    }

    /// Bounding-box height.
    pub fn height(&self) -> u32 {
        self.max_row - self.min_row + 1
    }

    /// Centroid `(row, col)`.
    pub fn centroid(&self) -> (f64, f64) {
        (
            self.sum_row as f64 / self.area as f64,
            self.sum_col as f64 / self.area as f64,
        )
    }

    /// Fill ratio of the bounding box (1.0 = solid rectangle).
    pub fn extent(&self) -> f64 {
        self.area as f64 / (self.width() as f64 * self.height() as f64)
    }

    /// The isoperimetric-style compactness `P² / (16·A)`: 1.0 for a solid
    /// square, larger for elongated or ragged shapes.
    pub fn compactness(&self) -> f64 {
        (self.perimeter * self.perimeter) as f64 / (16.0 * self.area as f64)
    }
}

/// The streaming engine's retirement hook: a component retired by
/// [`slap_image::stream::StreamLabeler`] carries exactly the [`Features`]
/// fields (the labeler maintains the same monoid online), so the conversion
/// is a field-for-field repack — no second pass over the image.
impl From<RetiredComponent> for Features {
    fn from(rec: RetiredComponent) -> Features {
        Features {
            area: rec.area,
            min_row: rec.min_row,
            max_row: rec.max_row,
            min_col: rec.min_col,
            max_col: rec.max_col,
            sum_row: rec.sum_row,
            sum_col: rec.sum_col,
            perimeter: rec.perimeter,
        }
    }
}

/// Per-component features via the **streaming** engine: `img` is replayed
/// one row at a time and every retired record is converted through the
/// [`From<RetiredComponent>`] hook. Returns `(label, features)` pairs sorted
/// by the paper label — the same keying as
/// [`component_features`]`.per_component`, but computed in
/// `O(cols + live components)` working memory and without a label grid.
pub fn streamed_features(img: &Bitmap, conn: Connectivity) -> Vec<(u32, Features)> {
    let run =
        label_stream(&mut BitmapRows::new(img), conn).expect("in-memory row replay cannot fail");
    let mut out: Vec<(u32, Features)> = run
        .components
        .into_iter()
        // The u64 → u32 narrowing is exact here: an in-memory Bitmap's
        // positions fit the same u32 space LabelGrid asserts.
        .map(|rec| (rec.label(img.rows()) as u32, Features::from(rec)))
        .collect();
    out.sort_unstable_by_key(|&(label, _)| label);
    out
}

/// [`Fold`] instance plugging [`Features`] into the Corollary 4 machinery.
pub struct FeatureFold;
impl Fold for FeatureFold {
    type Value = Features;
    fn identity() -> Features {
        Features::EMPTY
    }
    fn combine(a: Features, b: Features) -> Features {
        Features::merge(a, b)
    }
}

/// Result of a feature-extraction run.
#[derive(Clone, Debug)]
pub struct FeatureRun {
    /// Per-component features, keyed by component label, sorted by label.
    pub per_component: Vec<(u32, Features)>,
    /// Step accounting of the underlying fold passes.
    pub metrics: FoldMetrics,
}

impl FeatureRun {
    /// Looks up the features of the component with `label`.
    pub fn get(&self, label: u32) -> Option<&Features> {
        self.per_component
            .binary_search_by_key(&label, |&(l, _)| l)
            .ok()
            .map(|i| &self.per_component[i].1)
    }
}

/// Number of 4-neighbor sides of pixel `(r, c)` exposed to background or the
/// image border.
fn exposed_edges(img: &Bitmap, r: usize, c: usize) -> u64 {
    let mut e = 0u64;
    if r == 0 || !img.get(r - 1, c) {
        e += 1;
    }
    if r + 1 >= img.rows() || !img.get(r + 1, c) {
        e += 1;
    }
    if c == 0 || !img.get(r, c - 1) {
        e += 1;
    }
    if c + 1 >= img.cols() || !img.get(r, c + 1) {
        e += 1;
    }
    e
}

/// Computes per-component features on the simulated SLAP: one
/// [`component_fold_conn`] pass over the [`Features`] monoid. `labels` must
/// be a valid labeling of `img` under `conn`.
pub fn component_features(img: &Bitmap, labels: &LabelGrid, conn: Connectivity) -> FeatureRun {
    let fold = component_fold_conn::<FeatureFold>(img, labels, conn, &|r, c| {
        Features::pixel(r, c, exposed_edges(img, r, c))
    });
    FeatureRun {
        per_component: fold.per_component,
        metrics: fold.metrics,
    }
}

/// [`component_features`] with the labeling produced by an arbitrary
/// registered engine session ([`crate::engine::LabelEngine`]): the hook the
/// CLI's `features --engine` path dispatches through, so feature extraction
/// is engine-agnostic by construction (every engine labels bit-identically).
/// `out` is the session's reusable label grid.
pub fn features_with_engine(
    img: &Bitmap,
    conn: Connectivity,
    session: &mut dyn crate::engine::LabelEngine,
    out: &mut LabelGrid,
) -> FeatureRun {
    session.label_into(img, conn, out);
    component_features(img, out, conn)
}

/// Euler number report: the value plus the cost model of computing it on the
/// array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EulerRun {
    /// Components minus holes.
    pub euler: i64,
    /// Machine steps: the local quad scan (max over PEs) plus the O(n)
    /// reduction across the array.
    pub steps: u64,
}

/// Computes the image-wide Euler number (4-connected components minus
/// 8-connected holes, or vice versa under `Connectivity::Eight`) by Gray's
/// quad counting.
///
/// Each PE scans the 2×2 windows whose left column it owns (touching only
/// its own and its east neighbor's pixels — the same neighbor-column access
/// the witness initialization uses) and counts the three pattern classes;
/// the counts are then summed along the array in `O(n)` steps.
pub fn euler_number(img: &Bitmap, conn: Connectivity) -> EulerRun {
    let (rows, cols) = (img.rows(), img.cols());
    // Pad by one so border pixels form quads with the outside; PE c owns the
    // windows with left column c-1 (virtual column -1 owned by PE 0's scan).
    let get = |r: isize, c: isize| -> bool {
        r >= 0
            && c >= 0
            && (r as usize) < rows
            && (c as usize) < cols
            && img.get(r as usize, c as usize)
    };
    let mut q1 = 0i64; // exactly one foreground pixel
    let mut q3 = 0i64; // exactly three foreground pixels
    let mut qd = 0i64; // the two diagonal patterns
    let mut per_pe_units = 0u64;
    for c in -1..cols as isize {
        let mut units = 0u64;
        for r in -1..rows as isize {
            units += 1;
            let quad = [get(r, c), get(r, c + 1), get(r + 1, c), get(r + 1, c + 1)];
            let ones = quad.iter().filter(|&&b| b).count();
            match ones {
                1 => q1 += 1,
                3 => q3 += 1,
                2 if quad[0] == quad[3] => qd += 1, // the two diagonals
                _ => {}
            }
        }
        per_pe_units = per_pe_units.max(units);
    }
    // Gray's formulas: 4·E4 = Q1 − Q3 + 2·QD, 4·E8 = Q1 − Q3 − 2·QD.
    let four_e = match conn {
        Connectivity::Four => q1 - q3 + 2 * qd,
        Connectivity::Eight => q1 - q3 - 2 * qd,
    };
    debug_assert_eq!(four_e % 4, 0, "Gray quad counts must be divisible by 4");
    EulerRun {
        euler: four_e / 4,
        // local scan runs on all PEs concurrently; the reduction moves one
        // partial sum per link: 3 units per hop (recv, add, send).
        steps: per_pe_units + 3 * cols as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, fast_labels_conn, gen};

    fn features_of(art: &str) -> (Bitmap, FeatureRun) {
        let img = Bitmap::from_art(art);
        let labels = fast_labels(&img);
        let run = component_features(&img, &labels, Connectivity::Four);
        (img, run)
    }

    #[test]
    fn solid_square_features() {
        let (_, run) = features_of("###\n###\n###\n");
        assert_eq!(run.per_component.len(), 1);
        let f = run.get(0).unwrap();
        assert_eq!(f.area, 9);
        assert_eq!((f.width(), f.height()), (3, 3));
        assert_eq!(f.perimeter, 12);
        assert_eq!(f.centroid(), (1.0, 1.0));
        assert!((f.compactness() - 1.0).abs() < 1e-9);
        assert!((f.extent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_components_are_separated() {
        let (img, run) = features_of("##...\n##...\n.....\n...##\n");
        assert_eq!(run.per_component.len(), 2);
        let a = run.get(0).unwrap();
        assert_eq!(a.area, 4);
        assert_eq!(a.perimeter, 8);
        let b_label = img.position(3, 3);
        let b = run.get(b_label).unwrap();
        assert_eq!(b.area, 2);
        assert_eq!((b.width(), b.height()), (2, 1));
        assert_eq!(b.perimeter, 6);
    }

    #[test]
    fn features_match_component_stats_on_random_images() {
        let img = gen::uniform_random(24, 24, 0.45, 3);
        let labels = fast_labels(&img);
        let run = component_features(&img, &labels, Connectivity::Four);
        let stats = labels.component_stats();
        assert_eq!(run.per_component.len(), stats.len());
        for info in stats {
            let f = run.get(info.label).unwrap();
            assert_eq!(f.area as usize, info.pixels, "area of {}", info.label);
            assert_eq!(f.min_row as usize, info.min_row);
            assert_eq!(f.max_row as usize, info.max_row);
            assert_eq!(f.min_col as usize, info.min_col);
            assert_eq!(f.max_col as usize, info.max_col);
        }
    }

    #[test]
    fn perimeter_matches_brute_force() {
        let img = gen::by_name("blobs", 32, 9).unwrap();
        let labels = fast_labels(&img);
        let run = component_features(&img, &labels, Connectivity::Four);
        let mut expect: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for (r, c) in img.iter_ones_colmajor() {
            *expect.entry(labels.get(r, c)).or_insert(0) += exposed_edges(&img, r, c);
        }
        for (l, p) in expect {
            assert_eq!(run.get(l).unwrap().perimeter, p, "component {l}");
        }
    }

    #[test]
    fn eight_conn_features_fuse_diagonals() {
        let mut img = Bitmap::new(8, 8);
        for i in 0..8 {
            img.set(i, 7 - i, true);
        }
        let labels = fast_labels_conn(&img, Connectivity::Eight);
        let run = component_features(&img, &labels, Connectivity::Eight);
        assert_eq!(run.per_component.len(), 1);
        let f = run.per_component[0].1;
        assert_eq!(f.area, 8);
        assert_eq!((f.width(), f.height()), (8, 8));
        assert_eq!(f.perimeter, 32, "isolated pixels expose all 4 sides");
    }

    #[test]
    fn euler_number_counts_components_minus_holes() {
        // Solid square: E = 1. Square ring (one hole): E = 0. Two rings: -…
        let solid = Bitmap::from_art("###\n###\n###\n");
        assert_eq!(euler_number(&solid, Connectivity::Four).euler, 1);
        let ring = Bitmap::from_art(
            "####\n\
             #..#\n\
             #..#\n\
             ####\n",
        );
        assert_eq!(euler_number(&ring, Connectivity::Four).euler, 0);
        let two = Bitmap::from_art("##.##\n##.##\n");
        assert_eq!(euler_number(&two, Connectivity::Four).euler, 2);
    }

    #[test]
    fn euler_number_respects_connectivity() {
        // A diagonal pair: two 4-components but one 8-component.
        let diag = Bitmap::from_art("#.\n.#\n");
        assert_eq!(euler_number(&diag, Connectivity::Four).euler, 2);
        assert_eq!(euler_number(&diag, Connectivity::Eight).euler, 1);
    }

    #[test]
    fn euler_matches_component_count_on_hole_free_images() {
        for name in ["blobs", "vstripes", "checker"] {
            let img = gen::by_name(name, 16, 5).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let labels = fast_labels_conn(&img, conn);
                let holes = holes_count(&img, conn);
                let e = euler_number(&img, conn);
                assert_eq!(
                    e.euler,
                    labels.component_count() as i64 - holes,
                    "{name} {conn}"
                );
            }
        }
    }

    /// Brute-force hole count: background components (under the dual
    /// connectivity) not touching the border.
    fn holes_count(img: &Bitmap, conn: Connectivity) -> i64 {
        let dual = match conn {
            Connectivity::Four => Connectivity::Eight,
            Connectivity::Eight => Connectivity::Four,
        };
        let inv = img.invert();
        let labels = fast_labels_conn(&inv, dual);
        let mut border: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let (rows, cols) = (img.rows(), img.cols());
        for r in 0..rows {
            for c in [0, cols - 1] {
                if labels.is_foreground(r, c) {
                    border.insert(labels.get(r, c));
                }
            }
        }
        for c in 0..cols {
            for r in [0, rows - 1] {
                if labels.is_foreground(r, c) {
                    border.insert(labels.get(r, c));
                }
            }
        }
        let mut all: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for (r, c) in inv.iter_ones_colmajor() {
            all.insert(labels.get(r, c));
        }
        (all.len() - border.len()) as i64
    }

    #[test]
    fn streamed_features_match_the_fold_on_every_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 11).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let labels = fast_labels_conn(&img, conn);
                let folded = component_features(&img, &labels, conn);
                assert_eq!(
                    streamed_features(&img, conn),
                    folded.per_component,
                    "workload {name} {conn}"
                );
            }
        }
    }

    #[test]
    fn features_with_engine_agree_across_the_registry() {
        let img = gen::by_name("blobs", 28, 13).unwrap();
        let mut grid = slap_image::LabelGrid::new_background(1, 1);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let labels = fast_labels_conn(&img, conn);
            let reference = component_features(&img, &labels, conn);
            for info in crate::engine::registry() {
                let mut session = info.kind.session(2);
                let run = features_with_engine(&img, conn, session.as_mut(), &mut grid);
                assert_eq!(
                    run.per_component, reference.per_component,
                    "{} {conn}",
                    info.kind
                );
            }
        }
    }

    #[test]
    fn retired_record_converts_field_for_field() {
        let img = Bitmap::from_art("##\n#.\n");
        let run =
            slap_image::label_stream(&mut slap_image::BitmapRows::new(&img), Connectivity::Four)
                .unwrap();
        assert_eq!(run.components.len(), 1);
        let f = Features::from(run.components[0]);
        assert_eq!(f.area, 3);
        assert_eq!((f.min_row, f.max_row, f.min_col, f.max_col), (0, 1, 0, 1));
        assert_eq!(f.perimeter, 8);
    }

    #[test]
    fn empty_image_has_no_features() {
        let img = Bitmap::new(6, 6);
        let labels = fast_labels(&img);
        let run = component_features(&img, &labels, Connectivity::Four);
        assert!(run.per_component.is_empty());
        assert_eq!(euler_number(&img, Connectivity::Four).euler, 0);
    }
}
