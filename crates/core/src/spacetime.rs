//! Space–time traces of the left-connected pass, for visualization.
//!
//! [`left_pass_trace`] runs `Union-Find-Pass` and `Label-Pass` on the
//! virtual-time executor with span recording switched on and hands back the
//! per-PE busy/idle/send intervals. Rendered with
//! [`slap_machine::render_gantt`], the diagrams make the paper's timing
//! arguments visible at a glance:
//!
//! * on benign images, the idle wedge ahead of the pipeline wavefront — the
//!   time §3's idle-compression variant harvests;
//! * on the Figure 3(b) comb, the send-dominated stripes that delay the
//!   naive label passer;
//! * the `O(n + i)` finish-time diagonal of Lemma 1's induction.

use crate::cc::CcOptions;
use crate::passes::{find_pass, label_pass, unionfind_pass};
use crate::NIL;
use slap_image::Bitmap;
use slap_machine::{run_pipeline_traced, PipelineConfig, PipelineReport, Span};
use slap_unionfind::UnionFind;

/// Traces of one directional (left-connected) pass.
pub struct PassTrace {
    /// Per-PE spans of the Union-Find-Pass (Fig. 5).
    pub uf_spans: Vec<Vec<Span>>,
    /// Per-PE spans of the Label-Pass (Fig. 6).
    pub label_spans: Vec<Vec<Span>>,
    /// Step accounting of the Union-Find-Pass.
    pub uf_report: PipelineReport,
    /// Step accounting of the Label-Pass.
    pub label_report: PipelineReport,
}

/// Runs the left-connected pass of Algorithm CC with span recording and
/// returns the space–time traces (the labeling itself is discarded; use
/// [`crate::label_components`] for results).
pub fn left_pass_trace<U: UnionFind>(img: &Bitmap, opts: &CcOptions) -> PassTrace {
    let cols = img.columns();
    let n_pes = cols.cols();
    let rows = cols.rows();
    let cfg = PipelineConfig {
        n_pes,
        word_steps: opts.word_steps,
        start_clock: 0,
    };
    let (mut states, uf_report, uf_spans) =
        run_pipeline_traced(cfg, |pe, ctx| unionfind_pass::<U>(&cols, opts, pe, ctx));
    for (pe, state) in states.iter_mut().enumerate() {
        find_pass(&cols, pe, state);
    }
    let mut label_slots: Vec<Vec<u32>> =
        states.iter().map(|s| vec![NIL; s.uf.id_bound()]).collect();
    let (_, label_report, label_spans) = run_pipeline_traced(cfg, |pe, ctx| {
        let base = (pe * rows) as u32;
        label_pass::<U>(
            &cols,
            opts,
            pe,
            &mut states[pe],
            &mut label_slots[pe],
            base,
            ctx,
        )
    });
    PassTrace {
        uf_spans,
        label_spans,
        uf_report,
        label_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::gen;
    use slap_machine::{span_totals, SpanKind};
    use slap_unionfind::TarjanUf;

    #[test]
    fn spans_cover_each_pe_clock_exactly() {
        let img = gen::uniform_random(24, 24, 0.5, 5);
        let tr = left_pass_trace::<TarjanUf>(&img, &CcOptions::default());
        assert_eq!(tr.uf_spans.len(), 24);
        for (pe, spans) in tr.uf_spans.iter().enumerate() {
            let t = span_totals(spans);
            let stats = &tr.uf_report.per_pe[pe];
            assert_eq!(t.busy + t.send, stats.busy, "PE {pe} busy mismatch");
            assert_eq!(t.idle, stats.idle, "PE {pe} idle mismatch");
            // spans are ordered and non-overlapping
            for w in spans.windows(2) {
                assert!(w[0].end <= w[1].start, "PE {pe} spans overlap");
            }
            if let Some(last) = spans.last() {
                assert_eq!(last.end, stats.finish, "PE {pe} trace truncated");
            }
        }
    }

    #[test]
    fn traced_report_matches_untraced_run() {
        let img = gen::by_name("comb", 32, 1).unwrap();
        let opts = CcOptions::default();
        let tr = left_pass_trace::<TarjanUf>(&img, &opts);
        let run = crate::label_components::<TarjanUf>(&img, &opts);
        assert_eq!(tr.uf_report.makespan, run.metrics.left.uf_pass.makespan);
        assert_eq!(
            tr.label_report.makespan,
            run.metrics.left.label_pass.makespan
        );
        assert_eq!(tr.uf_report.messages, run.metrics.left.uf_pass.messages);
    }

    #[test]
    fn later_pes_idle_ahead_of_the_wavefront() {
        // The pipeline wavefront of Lemma 1: downstream PEs block on their
        // queue while upstream PEs work, so idle time grows along the array
        // on an image that generates traffic.
        let img = gen::by_name("fig3a", 48, 1).unwrap();
        let tr = left_pass_trace::<TarjanUf>(&img, &CcOptions::default());
        let idle_first = span_totals(&tr.uf_spans[1]).idle;
        let idle_last = span_totals(&tr.uf_spans[46]).idle;
        assert!(
            idle_last >= idle_first,
            "idle should accumulate downstream: {idle_first} -> {idle_last}"
        );
        // and some PE actually sends
        assert!(tr
            .uf_spans
            .iter()
            .any(|s| s.iter().any(|sp| sp.kind == SpanKind::Send)));
    }

    #[test]
    fn gantt_renders_for_the_traces() {
        let img = gen::by_name("comb", 16, 1).unwrap();
        let tr = left_pass_trace::<TarjanUf>(&img, &CcOptions::default());
        let g = slap_machine::render_gantt(&tr.uf_spans, 60);
        assert_eq!(g.lines().count(), 17); // header + 16 PEs
    }
}
