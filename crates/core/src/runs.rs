//! Run-length-encoded variant of Algorithm CC.
//!
//! The paper's passes treat every *pixel row* as a union–find element: each
//! column makes `n` singletons and phase 1 of `Union-Find-Pass` spends
//! `n − 1` iterations re-merging the vertical runs (Fig. 5 lines 3–7). But a
//! column's left-components are unions of its maximal *vertical runs* of
//! 1-pixels, and a column has at most `⌈n/2⌉` of them — usually far fewer.
//! This module rebuilds the passes over the run universe:
//!
//! * the column scan that the paper spends on `Make-Set` instead extracts
//!   runs, the `row → run` table and the adjacency witnesses (same `Θ(n)`
//!   cost, it is one pass over the column either way);
//! * phase 1 disappears under 4-connectivity (runs are maximal by
//!   construction), shrinking to the `O(runs)` diagonal-bridge scan under
//!   8-connectivity;
//! * union–find operates on `runs ≤ ⌈n/2⌉` elements, so tree depths — the
//!   worst-case bottleneck of §3 — shrink from `lg n` to `lg runs`;
//! * `Label-Pass`'s local loop visits runs, not rows.
//!
//! Messages stay row-indexed (a pair of next-column rows for relevant
//! unions, a `(label, row)` pair for labels), so the wire format and the
//! correctness argument are exactly the paper's; only the local
//! representation changes. The labeling produced is bit-identical to the
//! pixel variant's (tested), and experiment E13 measures the step-count
//! ablation. Run-based labeling is the natural engineering refinement of
//! the paper's algorithm, in the spirit of the run-oriented processing in
//! Alnuweiri–Prasanna \[2\].
//!
//! The same run universe — transposed to horizontal runs — underlies the
//! host-side fast engine ([`slap_image::fast`], re-exported as
//! [`crate::fast`]): there the runs feed a sequential two-pass union–find
//! (the shape of the run-based CCL literature, e.g. arXiv:1606.05973,
//! arXiv:1708.08180), here they feed the paper's pipelined passes. Both
//! exploit the identical observation that a scan line meets each component
//! in a handful of maximal runs, and [`RunColumn::scan`] extracts them
//! word-parallel with the same packed-word scanning primitives
//! ([`slap_image::bitmap::for_each_run_in_words`]).

use crate::cc::{CcMetrics, CcOptions, CcRun, PassMetrics};
use crate::stitch::stitch_column;
use crate::NIL;
use slap_image::{Bitmap, Columns, Connectivity, LabelGrid};
use slap_machine::{run_pipeline_pooled, PeCtx, PipelineBuffers, PipelineConfig};
use slap_unionfind::UnionFind;

/// The maximal vertical runs of one column plus the `row → run` table.
pub struct RunColumn {
    /// `run_of[j]` = index of the run containing row `j`, or [`NIL`].
    pub run_of: Vec<u32>,
    /// First row of each run.
    pub start: Vec<u32>,
    /// Last row (inclusive) of each run.
    pub end: Vec<u32>,
}

impl RunColumn {
    /// Number of runs.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// `true` when the column is all background.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Scans column `pe`, extracting maximal vertical runs word-parallel
    /// from the packed column words (no per-pixel probing), with the output
    /// vectors pre-sized exactly by a popcount pre-pass.
    pub fn scan(cols: &Columns, pe: usize) -> Self {
        let rows = cols.rows();
        let n_runs = cols.count_column_runs(pe);
        let mut run_of = vec![NIL; rows];
        let mut start = Vec::with_capacity(n_runs);
        let mut end = Vec::with_capacity(n_runs);
        cols.for_each_column_run(pe, |s, e| {
            run_of[s as usize..=e as usize].fill(start.len() as u32);
            start.push(s);
            end.push(e);
        });
        debug_assert_eq!(start.len(), n_runs);
        RunColumn { run_of, start, end }
    }
}

/// Pass state of one PE in the run-based variant: disjoint sets over the
/// column's runs plus per-set adjacency witnesses (row indices *in the
/// neighbor column*, as in the pixel variant's updated convention).
pub struct RunColumnState<U: UnionFind> {
    /// The column's runs.
    pub runs: RunColumn,
    /// Disjoint sets over run indices.
    pub uf: U,
    /// Witness row in the next column per set, or [`NIL`].
    pub adjnext: Vec<u32>,
    /// Witness row in the previous column per set, or [`NIL`].
    pub adjprev: Vec<u32>,
}

/// First row of `ncol` holding a 1-pixel adjacent (under `conn`) to any
/// pixel of the run `[a, b]` of column `pe`'s neighbor scan. Scans the
/// neighbor's packed words, not pixels.
fn run_adjacent_row(cols: &Columns, ncol: usize, a: u32, b: u32, conn: Connectivity) -> u32 {
    let rows = cols.rows();
    let (lo, hi) = match conn {
        Connectivity::Four => (a as usize, b as usize),
        Connectivity::Eight => (
            (a as usize).saturating_sub(1),
            ((b as usize) + 1).min(rows - 1),
        ),
    };
    match cols.first_one_in_range(ncol, lo, hi) {
        Some(r) => r as u32,
        None => NIL,
    }
}

impl<U: UnionFind> RunColumnState<U> {
    /// Builds the state from one scan over the column: runs, `row → run`
    /// table, witnesses, and one `Make-Set` per run. The caller charges
    /// `rows` units for the scan (the same line-1 budget as the pixel
    /// variant) plus one unit per run for the make-sets.
    pub fn new(cols: &Columns, pe: usize, conn: Connectivity) -> Self {
        let runs = RunColumn::scan(cols, pe);
        let uf = U::with_elements(runs.len());
        let bound = uf.id_bound();
        let mut adjnext = vec![NIL; bound];
        let mut adjprev = vec![NIL; bound];
        for k in 0..runs.len() {
            let (a, b) = (runs.start[k], runs.end[k]);
            if pe + 1 < cols.cols() {
                adjnext[k] = run_adjacent_row(cols, pe + 1, a, b, conn);
            }
            if pe > 0 {
                adjprev[k] = run_adjacent_row(cols, pe - 1, a, b, conn);
            }
        }
        RunColumnState {
            runs,
            uf,
            adjnext,
            adjprev,
        }
    }

    /// The paper's `Apply` on a pair of *rows* of this column (the wire
    /// format is unchanged); rows are translated to runs through the local
    /// table. Returns `(units, forward)`.
    pub fn apply_rows(&mut self, top: u32, bot: u32) -> (u64, Option<(u32, u32)>) {
        let (rt0, rb0) = (
            self.runs.run_of[top as usize],
            self.runs.run_of[bot as usize],
        );
        debug_assert!(rt0 != NIL && rb0 != NIL, "union on background rows");
        let c0 = self.uf.cost();
        let rt = self.uf.find(rt0 as usize);
        let rb = self.uf.find(rb0 as usize);
        if rt != rb {
            let (an_t, an_b) = (self.adjnext[rt], self.adjnext[rb]);
            let (ap_t, ap_b) = (self.adjprev[rt], self.adjprev[rb]);
            let relevant = an_t != NIL && an_b != NIL;
            let r = self.uf.union_roots(rt, rb);
            self.adjnext[r] = if an_t != NIL { an_t } else { an_b };
            self.adjprev[r] = if ap_t != NIL { ap_t } else { ap_b };
            let units = self.uf.cost() - c0 + 2; // +2 table lookups
            (units, if relevant { Some((an_t, an_b)) } else { None })
        } else {
            (self.uf.cost() - c0 + 2, None)
        }
    }
}

/// Run-based `Union-Find-Pass` for one PE.
fn run_unionfind_pass<U: UnionFind>(
    cols: &Columns,
    opts: &CcOptions,
    pe: usize,
    ctx: &mut PeCtx<(u32, u32)>,
) -> RunColumnState<U> {
    let rows = cols.rows();
    let conn = opts.connectivity;
    let mut state = RunColumnState::<U>::new(cols, pe, conn);
    // The column scan (runs + table + witnesses) is one pass over the rows;
    // make-sets add one unit per run.
    ctx.charge(rows as u64 + state.runs.len() as u64);
    // Phase-1 forwarding. In the pixel variant, a vertical-run union whose
    // two sides both touch the next column forwards a relevant pair, which
    // is how the next column learns that several of its runs border one
    // left-component fragment. Here a maximal run performs no unions at
    // all, so the equivalent information is emitted directly: for each run,
    // the adjacent next-column rows form gap-separated groups (one per
    // next-column run), and consecutive groups are chained with one
    // relevant pair each — the same pairs, minus the redundant ones.
    if pe + 1 < cols.cols() {
        for k in 0..state.runs.len() {
            ctx.charge(1);
            let (lo, hi) = match conn {
                Connectivity::Four => (state.runs.start[k] as usize, state.runs.end[k] as usize),
                Connectivity::Eight => (
                    (state.runs.start[k] as usize).saturating_sub(1),
                    (state.runs.end[k] as usize + 1).min(rows - 1),
                ),
            };
            let mut prev_group: Option<u32> = None;
            let mut r = lo;
            while r <= hi {
                if cols.get(pe + 1, r) {
                    let first = r as u32;
                    while r <= hi && cols.get(pe + 1, r) {
                        r += 1;
                    }
                    if let Some(p) = prev_group {
                        ctx.charge(1);
                        ctx.send((p, first));
                    }
                    prev_group = Some(first);
                } else {
                    r += 1;
                }
            }
        }
    }
    // Under 8-connectivity, also union consecutive runs joined through a
    // single west pixel (gap exactly one with the west pixel set) — the
    // diagonal-bridge rule.
    if conn == Connectivity::Eight && pe > 0 {
        for k in 1..state.runs.len() {
            ctx.charge(1);
            let gap_top = state.runs.end[k - 1] + 1;
            if state.runs.start[k] == gap_top + 1 && cols.get(pe - 1, gap_top as usize) {
                let (units, forward) = state.apply_rows(state.runs.end[k - 1], state.runs.start[k]);
                ctx.charge(units);
                if let Some(pair) = forward {
                    ctx.send(pair);
                }
            }
        }
    }
    // Phase 2: drain incoming relevant unions (wire-identical to Fig. 5).
    loop {
        let msg = if opts.idle_compression {
            let uf = &mut state.uf;
            ctx.recv_with(&mut |budget| uf.idle_compress(budget))
        } else {
            ctx.recv()
        };
        let Some((top, bot)) = msg else { break };
        let mut suppress = false;
        if opts.eager_forward {
            ctx.charge(1);
            let witness = |r: u32| {
                let k = state.runs.run_of[r as usize];
                (k != NIL && pe + 1 < cols.cols())
                    .then(|| {
                        let w = run_adjacent_row(
                            cols,
                            pe + 1,
                            state.runs.start[k as usize],
                            state.runs.end[k as usize],
                            conn,
                        );
                        (w != NIL).then_some(w)
                    })
                    .flatten()
            };
            if let (Some(t), Some(b)) = (witness(top), witness(bot)) {
                ctx.send((t, b));
                suppress = true;
            }
        }
        let (units, forward) = state.apply_rows(top, bot);
        ctx.charge(units);
        if let Some(pair) = forward {
            if !suppress {
                ctx.send(pair);
            }
        }
    }
    state
}

/// Run-based find pass: one find per *run* (the pixel variant does one per
/// row). Returns the units spent.
fn run_find_pass<U: UnionFind>(state: &mut RunColumnState<U>) -> u64 {
    let c0 = state.uf.cost();
    let n_runs = state.runs.len();
    for k in 0..n_runs {
        state.uf.find(k);
    }
    state.uf.cost() - c0 + n_runs as u64
}

/// Run-based `Label-Pass`: the local loop walks runs instead of rows.
fn run_label_pass<U: UnionFind>(
    opts: &CcOptions,
    state: &mut RunColumnState<U>,
    labels: &mut [u32],
    base_position: u32,
    ctx: &mut PeCtx<(u32, u32)>,
) {
    let n_runs = state.runs.len();
    debug_assert_eq!(labels.len(), state.uf.id_bound());
    for k in 0..n_runs {
        let c0 = state.uf.cost();
        let s = state.uf.find(k);
        let mut units = state.uf.cost() - c0 + 1;
        if state.adjprev[s] == NIL && labels[s] == NIL {
            // The run's topmost pixel has the least column-major position of
            // the run; with the least-label rule this reproduces the paper's
            // labels exactly.
            labels[s] = base_position + state.runs.start[k];
            units += 1;
            if state.adjnext[s] != NIL {
                ctx.charge(units);
                ctx.send((labels[s], state.adjnext[s]));
                continue;
            }
        }
        ctx.charge(units);
    }
    while let Some((label, row)) = ctx.recv() {
        let k = state.runs.run_of[row as usize];
        debug_assert_ne!(k, NIL, "label message addressed a background row");
        let c0 = state.uf.cost();
        let s = state.uf.find(k as usize);
        let units = state.uf.cost() - c0 + 2; // +1 table lookup
        ctx.charge(units);
        let improved = label < labels[s];
        if improved {
            labels[s] = label;
        }
        let forward = match opts.forward_policy {
            crate::cc::ForwardPolicy::OnImprovement => improved,
            crate::cc::ForwardPolicy::Always => true,
        };
        if forward && state.adjnext[s] != NIL {
            ctx.send((labels[s], state.adjnext[s]));
        }
    }
}

/// Run-based readout: one find per run, then one table write per row.
fn run_readout_pass<U: UnionFind>(
    state: &mut RunColumnState<U>,
    labels: &[u32],
) -> (Vec<u32>, u64) {
    let rows = state.runs.run_of.len();
    let mut units = 0u64;
    let n_runs = state.runs.len();
    let mut run_label = vec![NIL; n_runs];
    for (k, slot) in run_label.iter_mut().enumerate() {
        let c0 = state.uf.cost();
        let s = state.uf.find(k);
        units += state.uf.cost() - c0 + 1;
        *slot = labels[s];
        debug_assert_ne!(*slot, NIL, "run left unlabeled");
    }
    let mut out = vec![NIL; rows];
    for (j, slot) in out.iter_mut().enumerate() {
        units += 1;
        let k = state.runs.run_of[j];
        if k != NIL {
            *slot = run_label[k as usize];
        }
    }
    (out, units)
}

/// One directional run-based pass (mirrors `cc::directional_pass`).
fn directional_pass_runs<U: UnionFind>(
    cols: &Columns,
    opts: &CcOptions,
    label_offset: u32,
    bufs: &mut PipelineBuffers<(u32, u32)>,
) -> (Vec<Vec<u32>>, PassMetrics) {
    let n_pes = cols.cols();
    let rows = cols.rows();
    let cfg = PipelineConfig {
        n_pes,
        word_steps: opts.word_steps,
        start_clock: 0,
    };
    let (mut states, uf_report) = run_pipeline_pooled(cfg, bufs, |pe, ctx| {
        run_unionfind_pass::<U>(cols, opts, pe, ctx)
    });
    let mut find_makespan = 0u64;
    let mut find_busy = 0u64;
    for state in states.iter_mut() {
        let units = run_find_pass(state);
        find_makespan = find_makespan.max(units);
        find_busy += units;
    }
    let mut label_slots: Vec<Vec<u32>> =
        states.iter().map(|s| vec![NIL; s.uf.id_bound()]).collect();
    let (_, label_report) = run_pipeline_pooled(cfg, bufs, |pe, ctx| {
        let base = label_offset + (pe * rows) as u32;
        run_label_pass::<U>(opts, &mut states[pe], &mut label_slots[pe], base, ctx)
    });
    let mut readout_makespan = 0u64;
    let mut readout_busy = 0u64;
    let col_labels: Vec<Vec<u32>> = states
        .iter_mut()
        .enumerate()
        .map(|(pe, state)| {
            let (row_labels, units) = run_readout_pass(state, &label_slots[pe]);
            readout_makespan = readout_makespan.max(units);
            readout_busy += units;
            row_labels
        })
        .collect();
    (
        col_labels,
        PassMetrics {
            uf_pass: uf_report,
            find_makespan,
            find_busy,
            label_pass: label_report,
            readout_makespan,
            readout_busy,
        },
    )
}

/// Algorithm CC over the run universe: identical output labeling to
/// [`crate::label_components`], different constants (see module docs and
/// experiment E13).
pub fn label_components_runs<U: UnionFind>(img: &Bitmap, opts: &CcOptions) -> CcRun {
    let rows = img.rows();
    let ncols = img.cols();
    assert!(
        2 * (rows as u64) * (ncols as u64) < u32::MAX as u64,
        "image too large for the u32 label spaces of the two passes"
    );
    let cols = img.columns();
    // One message-buffer pool serves all four pipelined passes of the run.
    let mut bufs = PipelineBuffers::new();
    let (left_labels, left) = directional_pass_runs::<U>(&cols, opts, 0, &mut bufs);
    let flipped = img.flip_horizontal();
    let fcols = flipped.columns();
    let offset = (rows * ncols) as u32;
    let (right_labels_flipped, right) = directional_pass_runs::<U>(&fcols, opts, offset, &mut bufs);
    let mut grid = LabelGrid::new_background(rows, ncols);
    let mut stitch_makespan = 0u64;
    let mut stitch_busy = 0u64;
    for c in 0..ncols {
        let right_col = &right_labels_flipped[ncols - 1 - c];
        let (finals, units) = stitch_column(&left_labels[c], right_col);
        stitch_makespan = stitch_makespan.max(units);
        stitch_busy += units;
        for (j, &label) in finals.iter().enumerate() {
            if label != NIL {
                grid.set(j, c, label);
            }
        }
    }
    let load_steps = if opts.charge_load {
        slap_machine::costs::load_steps(rows)
    } else {
        0
    };
    let total_steps = load_steps + left.makespan() + right.makespan() + stitch_makespan;
    CcRun {
        labels: grid,
        metrics: CcMetrics {
            left,
            right,
            stitch_makespan,
            stitch_busy,
            load_steps,
            total_steps,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::label_components;
    use slap_image::{fast_labels_conn, gen};
    use slap_unionfind::{BlumUf, RankHalvingUf, TarjanUf};

    #[test]
    fn run_scan_extracts_maximal_runs() {
        let img = Bitmap::from_art(
            "#\n\
             #\n\
             .\n\
             #\n\
             .\n\
             #\n\
             #\n",
        );
        let cols = img.columns();
        let rc = RunColumn::scan(&cols, 0);
        assert_eq!(rc.len(), 3);
        assert_eq!(rc.start, vec![0, 3, 5]);
        assert_eq!(rc.end, vec![1, 3, 6]);
        assert_eq!(rc.run_of[0], 0);
        assert_eq!(rc.run_of[2], NIL);
        assert_eq!(rc.run_of[6], 2);
    }

    #[test]
    fn empty_and_full_columns() {
        let img = Bitmap::from_art(".#\n.#\n.#\n");
        let cols = img.columns();
        let empty = RunColumn::scan(&cols, 0);
        assert!(empty.is_empty());
        let full = RunColumn::scan(&cols, 1);
        assert_eq!(full.len(), 1);
        assert_eq!((full.start[0], full.end[0]), (0, 2));
    }

    #[test]
    fn runs_variant_matches_pixel_variant_exactly() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 13).unwrap();
            let opts = CcOptions::default();
            let pixel = label_components::<TarjanUf>(&img, &opts);
            let runs = label_components_runs::<TarjanUf>(&img, &opts);
            assert_eq!(runs.labels, pixel.labels, "workload {name}");
        }
    }

    #[test]
    fn runs_variant_matches_oracle_under_eight_connectivity() {
        let opts = CcOptions {
            connectivity: Connectivity::Eight,
            ..CcOptions::default()
        };
        for name in ["staircase", "checker", "random50", "fig3a", "maze"] {
            let img = gen::by_name(name, 24, 3).unwrap();
            let truth = fast_labels_conn(&img, Connectivity::Eight);
            let run = label_components_runs::<BlumUf>(&img, &opts);
            assert_eq!(run.labels, truth, "workload {name}");
        }
    }

    #[test]
    fn runs_variant_supports_all_option_combinations() {
        let img = gen::uniform_random(32, 32, 0.5, 41);
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let truth = fast_labels_conn(&img, conn);
            for eager in [false, true] {
                for idle in [false, true] {
                    let opts = CcOptions {
                        connectivity: conn,
                        eager_forward: eager,
                        idle_compression: idle,
                        ..CcOptions::default()
                    };
                    let run = label_components_runs::<RankHalvingUf>(&img, &opts);
                    assert_eq!(run.labels, truth, "conn={conn:?} eager={eager} idle={idle}");
                }
            }
        }
    }

    #[test]
    fn runs_variant_is_cheaper_on_solid_workloads() {
        // Vertical stripes: every column is one run, so the run variant's
        // union–find work collapses while the pixel variant pays per row.
        let img = gen::by_name("vstripes", 64, 1).unwrap();
        let opts = CcOptions::default();
        let pixel = label_components::<TarjanUf>(&img, &opts);
        let runs = label_components_runs::<TarjanUf>(&img, &opts);
        assert!(
            runs.metrics.total_steps < pixel.metrics.total_steps,
            "runs {} >= pixel {}",
            runs.metrics.total_steps,
            pixel.metrics.total_steps
        );
    }

    #[test]
    fn single_row_and_single_column_images() {
        for art in ["#.##.#", "#\n#\n.\n#\n"] {
            let img = Bitmap::from_art(art);
            let opts = CcOptions::default();
            let pixel = label_components::<TarjanUf>(&img, &opts);
            let runs = label_components_runs::<TarjanUf>(&img, &opts);
            assert_eq!(runs.labels, pixel.labels);
        }
    }

    #[test]
    fn metrics_totals_are_consistent() {
        let img = gen::uniform_random(24, 24, 0.4, 5);
        let run = label_components_runs::<TarjanUf>(&img, &CcOptions::default());
        let m = &run.metrics;
        assert_eq!(
            m.total_steps,
            m.left.makespan() + m.right.makespan() + m.stitch_makespan
        );
    }
}
