//! Bitmap front-end for the lock-step propagation machine
//! ([`slap_machine::propagate`]) — the GPU-style iterative kernel run in the
//! paper's machine model, with grid output for differential testing.
//!
//! [`crate::lockstep_cc::label_components_lockstep`] runs the paper's
//! pipeline Algorithm CC on the same executor; `slap-bench propagate` puts
//! the two side by side on identical inputs, recording exactly how many
//! machine rounds the naive neighbor-relaxation iteration pays for its
//! locality (one column of label travel per iteration) against the
//! pipeline's single sweep each way.

use slap_image::{Bitmap, Connectivity, LabelGrid};
use slap_machine::propagate::propagate_lockstep;

/// Machine-time accounting of one [`propagate_components_lockstep`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PropagateLockstepReport {
    /// Total simulated machine rounds (the PRAM-style time).
    pub rounds: u64,
    /// Total PE ticks executed (the PRAM-style work).
    pub ticks: u64,
    /// Jacobi iterations, including the final no-change iteration that
    /// proves convergence.
    pub iterations: u64,
}

/// Labels `img` by iterative min-label propagation on the lock-step linear
/// array (one PE per column) and returns the grid plus exact machine-time
/// accounting. Output is bit-identical to
/// [`slap_image::bfs_labels_conn`]. `threads > 1` runs the simulation on the
/// multithreaded executor with identical results and counts.
pub fn propagate_components_lockstep(
    img: &Bitmap,
    conn: Connectivity,
    threads: usize,
) -> (LabelGrid, PropagateLockstepReport) {
    let (rows, cols) = (img.rows(), img.cols());
    let mut grid = LabelGrid::new_background(rows, cols);
    if rows == 0 || cols == 0 {
        return (grid, PropagateLockstepReport::default());
    }
    let columns = img.columns();
    let runs: Vec<Vec<(u32, u32)>> = (0..cols)
        .map(|c| {
            let mut v = Vec::with_capacity(columns.count_column_runs(c));
            columns.for_each_column_run(c, |s, e| v.push((s, e)));
            v
        })
        .collect();
    let eight = conn == Connectivity::Eight;
    let out = propagate_lockstep(&runs, rows as u32, eight, threads);
    for (c, (col_runs, labels)) in runs.iter().zip(&out.labels).enumerate() {
        for (&(s, e), &label) in col_runs.iter().zip(labels) {
            for r in s..=e {
                grid.set(r as usize, c, label);
            }
        }
    }
    let report = PropagateLockstepReport {
        rounds: out.report.rounds,
        ticks: out.report.ticks,
        iterations: out.iterations,
    };
    (grid, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{bfs_labels_conn, gen};

    #[test]
    fn matches_the_oracle_on_every_workload_family() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 11).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let (grid, report) = propagate_components_lockstep(&img, conn, 1);
                assert_eq!(grid, bfs_labels_conn(&img, conn), "{name} {conn}");
                assert!(report.iterations >= 1, "{name} {conn}");
                assert!(report.rounds >= report.iterations, "{name} {conn}");
                assert!(report.ticks >= report.rounds, "{name} {conn}");
            }
        }
    }

    #[test]
    fn threaded_simulation_is_bit_identical_with_equal_counts() {
        let img = gen::by_name("blobs", 32, 3).unwrap();
        let (seq_grid, seq_report) = propagate_components_lockstep(&img, Connectivity::Eight, 1);
        for threads in [2usize, 4] {
            let (grid, report) = propagate_components_lockstep(&img, Connectivity::Eight, threads);
            assert_eq!(grid, seq_grid, "threads={threads}");
            assert_eq!(report, seq_report, "threads={threads}");
        }
    }

    #[test]
    fn iteration_count_tracks_label_travel_distance() {
        // A single full row: the minimum label must travel from column 0 to
        // column n-1, one column per iteration — the cost the pipeline
        // algorithm's one-sweep-each-way design avoids.
        let mut img = Bitmap::new(4, 24);
        for c in 0..24 {
            img.set(1, c, true);
        }
        let (grid, report) = propagate_components_lockstep(&img, Connectivity::Four, 1);
        assert_eq!(grid, bfs_labels_conn(&img, Connectivity::Four));
        assert!(
            report.iterations >= 24,
            "min label crosses 23 columns: {} iterations",
            report.iterations
        );
    }
}
