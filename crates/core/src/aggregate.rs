//! Corollary 4: component-wise folds of arbitrary initial pixel labels.
//!
//! Given any assignment of initial values to pixels and any commutative,
//! associative operator, label every pixel of each component with the fold of
//! the component's initial values — in the same asymptotic time as component
//! labeling. The paper proves it for "minimum" and notes the generalization;
//! this module implements the general form.
//!
//! Following the paper's proof sketch: first produce a component labeling
//! (Algorithm CC), then fold locally within each column, then run a
//! left-to-right pass recording for each component the fold of its pixels in
//! columns `0..=i`, then the mirrored right-to-left pass, and finally combine
//! the two directions locally. Because a component's column span is an
//! interval and the component crosses every internal column boundary of its
//! span, each PE can decide locally (from its neighbor columns' pixels)
//! whether a component extends left or right, so each pass sends at most one
//! message per component per link — the same pipeline shape as `Label-Pass`.
//!
//! To avoid double counting with non-idempotent operators (sum, count), the
//! final value at column `i` is `prefix_incl(0..=i) ⊕ suffix_excl(i+1..)`.

use serde::{Deserialize, Serialize};
use slap_image::{Bitmap, Connectivity, LabelGrid};
use slap_machine::{run_pipeline_with, PipelineConfig, PipelineReport};
use std::collections::HashMap;

/// A commutative, associative fold with identity.
pub trait Fold {
    /// The folded value type.
    type Value: Copy + PartialEq + std::fmt::Debug;

    /// Identity element (`combine(identity(), v) == v`).
    fn identity() -> Self::Value;

    /// The operator; must be commutative and associative.
    fn combine(a: Self::Value, b: Self::Value) -> Self::Value;
}

/// Minimum of `u64` values (the paper's running example).
pub struct MinFold;
impl Fold for MinFold {
    type Value = u64;
    fn identity() -> u64 {
        u64::MAX
    }
    fn combine(a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Maximum of `u64` values.
pub struct MaxFold;
impl Fold for MaxFold {
    type Value = u64;
    fn identity() -> u64 {
        0
    }
    fn combine(a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// Sum of `u64` values (with all-ones input: component pixel counts).
pub struct SumFold;
impl Fold for SumFold {
    type Value = u64;
    fn identity() -> u64 {
        0
    }
    fn combine(a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Step accounting for a component fold.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FoldMetrics {
    /// Makespan of the local per-column fold (max units over PEs).
    pub local_makespan: u64,
    /// The left-to-right prefix pass.
    pub prefix_pass: PipelineReport,
    /// The right-to-left suffix pass.
    pub suffix_pass: PipelineReport,
    /// Machine time: local + prefix + suffix + final combine.
    pub total_steps: u64,
}

/// Result of a component fold.
#[derive(Clone, Debug)]
pub struct FoldRun<V> {
    /// Fold value per component, keyed by the component's label, sorted by
    /// label.
    pub per_component: Vec<(u32, V)>,
    /// Step accounting.
    pub metrics: FoldMetrics,
}

impl<V: Copy> FoldRun<V> {
    /// Looks up the folded value of the component with `label`.
    pub fn value_of(&self, label: u32) -> Option<V> {
        self.per_component
            .binary_search_by_key(&label, |&(l, _)| l)
            .ok()
            .map(|i| self.per_component[i].1)
    }
}

/// Per-column fold state used by the passes.
struct ColumnFold<V> {
    /// label -> fold of this column's pixels with that label
    local: HashMap<u32, V>,
    /// does the component extend left / right of this column?
    extends_left: HashMap<u32, bool>,
    extends_right: HashMap<u32, bool>,
    units: u64,
}

fn column_folds<F: Fold>(
    img: &Bitmap,
    labels: &LabelGrid,
    conn: Connectivity,
    values: &dyn Fn(usize, usize) -> F::Value,
) -> Vec<ColumnFold<F::Value>> {
    let (rows, cols) = (img.rows(), img.cols());
    // An adjacent foreground pixel in the neighbor column is by definition
    // in the same component, so its presence means the component crosses the
    // link. Because a component's column span is an interval and the
    // component crosses every internal boundary of its span, checking the
    // neighbor column suffices (diagonal rows too under 8-connectivity).
    let crosses = |r: usize, nc: usize| -> bool {
        if img.get(r, nc) {
            return true;
        }
        conn == Connectivity::Eight
            && ((r > 0 && img.get(r - 1, nc)) || (r + 1 < rows && img.get(r + 1, nc)))
    };
    (0..cols)
        .map(|c| {
            let mut cf = ColumnFold {
                local: HashMap::new(),
                extends_left: HashMap::new(),
                extends_right: HashMap::new(),
                units: 0,
            };
            for r in 0..rows {
                cf.units += 1;
                if !img.get(r, c) {
                    continue;
                }
                let l = labels.get(r, c);
                let e = cf.local.entry(l).or_insert_with(F::identity);
                *e = F::combine(*e, values(r, c));
                cf.units += 1;
                if c > 0 && crosses(r, c - 1) {
                    cf.extends_left.insert(l, true);
                }
                if c + 1 < cols && crosses(r, c + 1) {
                    cf.extends_right.insert(l, true);
                }
            }
            cf
        })
        .collect()
}

/// One directional accumulation pass. `cols_order` yields PE indices in flow
/// order; `extends_back`/`extends_fwd` select which extension maps mean
/// "expect a message" / "send a message". Returns, per column, the
/// *inclusive* accumulation per label (fold over all columns from the flow
/// start through this one) and the *exclusive* incoming value per label.
#[allow(clippy::type_complexity)]
fn accumulate_pass<F: Fold>(
    folds: &[ColumnFold<F::Value>],
    reversed: bool,
    word_steps: u64,
) -> (
    Vec<HashMap<u32, F::Value>>, // inclusive per column (in image order)
    Vec<HashMap<u32, F::Value>>, // exclusive incoming per column (in image order)
    PipelineReport,
) {
    let n = folds.len();
    let cfg = PipelineConfig {
        n_pes: n,
        word_steps,
        start_clock: 0,
    };
    let image_index = |pe: usize| if reversed { n - 1 - pe } else { pe };
    let mut inclusive: Vec<HashMap<u32, F::Value>> = (0..n).map(|_| HashMap::new()).collect();
    let mut exclusive: Vec<HashMap<u32, F::Value>> = (0..n).map(|_| HashMap::new()).collect();
    let (_, report) =
        run_pipeline_with(cfg, |pe, ctx: &mut slap_machine::PeCtx<(u32, F::Value)>| {
            let c = image_index(pe);
            let cf = &folds[c];
            let (expects_in, sends_out) = if reversed {
                (&cf.extends_right, &cf.extends_left)
            } else {
                (&cf.extends_left, &cf.extends_right)
            };
            // send the labels that start here (no upstream extension)
            for (&l, &v) in &cf.local {
                ctx.charge(1);
                inclusive[c].insert(l, v);
                if !expects_in.contains_key(&l) && sends_out.contains_key(&l) {
                    ctx.send((l, v));
                }
            }
            // absorb upstream accumulations, extend, forward
            while let Some((l, v)) = ctx.recv() {
                ctx.charge(1);
                exclusive[c].insert(l, v);
                let local = cf.local.get(&l).copied().unwrap_or_else(F::identity);
                let acc = F::combine(local, v);
                inclusive[c].insert(l, acc);
                if sends_out.contains_key(&l) {
                    ctx.send((l, acc));
                }
            }
        });
    (inclusive, exclusive, report)
}

/// Computes, for every component of `img` (as labeled by `labels`), the fold
/// of `values(row, col)` over the component's pixels, on the simulated SLAP.
///
/// `labels` must be a valid 4-connectivity labeling of `img` (e.g. an
/// Algorithm CC or oracle output). For 8-connectivity labelings use
/// [`component_fold_conn`].
pub fn component_fold<F: Fold>(
    img: &Bitmap,
    labels: &LabelGrid,
    values: &dyn Fn(usize, usize) -> F::Value,
) -> FoldRun<F::Value> {
    component_fold_conn::<F>(img, labels, Connectivity::Four, values)
}

/// [`component_fold`] under an arbitrary adjacency convention. `conn` must
/// match the convention `labels` was produced with, or the boundary-crossing
/// tests the passes rely on may miss a component's extension.
pub fn component_fold_conn<F: Fold>(
    img: &Bitmap,
    labels: &LabelGrid,
    conn: Connectivity,
    values: &dyn Fn(usize, usize) -> F::Value,
) -> FoldRun<F::Value> {
    assert_eq!(labels.rows(), img.rows());
    assert_eq!(labels.cols(), img.cols());
    let folds = column_folds::<F>(img, labels, conn, values);
    let local_makespan = folds.iter().map(|f| f.units).max().unwrap_or(0);
    let word_steps = slap_machine::costs::WORD_STEPS;
    let (prefix_incl, _prefix_excl, prefix_report) =
        accumulate_pass::<F>(&folds, false, word_steps);
    let (_suffix_incl, suffix_excl, suffix_report) = accumulate_pass::<F>(&folds, true, word_steps);
    // Final local combine: prefix_incl(0..=c) ⊕ suffix_excl(c+1..). Every
    // column of a component computes the same value; fill the map from the
    // leftmost occurrence and verify agreement elsewhere (debug builds).
    let mut totals: HashMap<u32, F::Value> = HashMap::new();
    let mut combine_makespan = 0u64;
    for c in 0..folds.len() {
        let mut units = 0u64;
        for (&l, &p) in &prefix_incl[c] {
            units += 1;
            let s = suffix_excl[c].get(&l).copied().unwrap_or_else(F::identity);
            let total = F::combine(p, s);
            if let Some(prev) = totals.get(&l) {
                debug_assert_eq!(*prev, total, "column {c}: fold of label {l} disagrees");
            } else {
                totals.insert(l, total);
            }
        }
        combine_makespan = combine_makespan.max(units);
    }
    let mut per_component: Vec<(u32, F::Value)> = totals.into_iter().collect();
    per_component.sort_unstable_by_key(|&(l, _)| l);
    let total_steps =
        local_makespan + prefix_report.makespan + suffix_report.makespan + combine_makespan;
    FoldRun {
        per_component,
        metrics: FoldMetrics {
            local_makespan,
            prefix_pass: prefix_report,
            suffix_pass: suffix_report,
            total_steps,
        },
    }
}

/// Convenience for the paper's headline case: fold = minimum, initial values
/// = column-major positions. The result must equal the component labels
/// themselves (a built-in self check used by the tests).
pub fn min_position_fold(img: &Bitmap, labels: &LabelGrid) -> FoldRun<u64> {
    let rows = img.rows();
    component_fold::<MinFold>(img, labels, &move |r, c| (c * rows + r) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels, gen};

    fn setup(name: &str, n: usize) -> (Bitmap, LabelGrid) {
        let img = gen::by_name(name, n, 5).unwrap();
        let labels = fast_labels(&img);
        (img, labels)
    }

    #[test]
    fn min_of_positions_reproduces_labels() {
        for name in ["random50", "fig3a", "comb", "blobs", "fan"] {
            let (img, labels) = setup(name, 24);
            let run = min_position_fold(&img, &labels);
            for &(label, v) in &run.per_component {
                assert_eq!(v, label as u64, "workload {name}");
            }
        }
    }

    #[test]
    fn sum_of_ones_gives_component_sizes() {
        let (img, labels) = setup("blobs", 32);
        let run = component_fold::<SumFold>(&img, &labels, &|_, _| 1u64);
        let stats = labels.component_stats();
        assert_eq!(run.per_component.len(), stats.len());
        for info in stats {
            assert_eq!(
                run.value_of(info.label),
                Some(info.pixels as u64),
                "component {}",
                info.label
            );
        }
    }

    #[test]
    fn max_fold_finds_largest_initial_value() {
        let (img, labels) = setup("random50", 20);
        let rows = img.rows();
        let run = component_fold::<MaxFold>(&img, &labels, &move |r, c| (c * rows + r) as u64);
        // brute-force check
        let mut expect: HashMap<u32, u64> = HashMap::new();
        for (r, c) in img.iter_ones_colmajor() {
            let l = labels.get(r, c);
            let v = (c * rows + r) as u64;
            let e = expect.entry(l).or_insert(0);
            *e = (*e).max(v);
        }
        for (l, v) in expect {
            assert_eq!(run.value_of(l), Some(v));
        }
    }

    #[test]
    fn fold_handles_single_pixel_components() {
        let (img, labels) = setup("checker", 16);
        let run = component_fold::<SumFold>(&img, &labels, &|_, _| 1u64);
        for &(_, v) in &run.per_component {
            assert_eq!(v, 1);
        }
        assert_eq!(run.per_component.len(), labels.component_count());
    }

    #[test]
    fn empty_image_yields_no_components() {
        let img = Bitmap::new(8, 8);
        let labels = fast_labels(&img);
        let run = component_fold::<SumFold>(&img, &labels, &|_, _| 1u64);
        assert!(run.per_component.is_empty());
    }

    #[test]
    fn pass_messages_bounded_by_components_times_span() {
        let (img, labels) = setup("hstripes", 32);
        let run = component_fold::<SumFold>(&img, &labels, &|_, _| 1u64);
        // each stripe crosses 31 links once per direction
        let comps = labels.component_count() as u64;
        assert!(run.metrics.prefix_pass.messages <= comps * 31);
        assert!(run.metrics.prefix_pass.messages >= comps * 31);
    }

    #[test]
    fn value_of_missing_label_is_none() {
        let (img, labels) = setup("random50", 12);
        let run = component_fold::<SumFold>(&img, &labels, &|_, _| 1u64);
        assert_eq!(run.value_of(u32::MAX - 1), None);
    }

    #[test]
    fn eight_conn_fold_counts_diagonal_components_whole() {
        use slap_image::{fast_labels_conn, Connectivity};
        // A pure anti-diagonal: one 8-component of n pixels spanning all
        // columns; a 4-connectivity fold would see n singletons.
        let n = 16;
        let mut img = Bitmap::new(n, n);
        for i in 0..n {
            img.set(i, n - 1 - i, true);
        }
        let labels = fast_labels_conn(&img, Connectivity::Eight);
        let run = component_fold_conn::<SumFold>(&img, &labels, Connectivity::Eight, &|_, _| 1u64);
        assert_eq!(run.per_component.len(), 1);
        assert_eq!(run.per_component[0].1, n as u64);
    }

    #[test]
    fn eight_conn_fold_matches_brute_force_on_random_images() {
        use slap_image::{fast_labels_conn, Connectivity};
        let img = gen::uniform_random(24, 24, 0.35, 77);
        let labels = fast_labels_conn(&img, Connectivity::Eight);
        let run = component_fold_conn::<SumFold>(&img, &labels, Connectivity::Eight, &|_, _| 1u64);
        let mut expect: HashMap<u32, u64> = HashMap::new();
        for (r, c) in img.iter_ones_colmajor() {
            *expect.entry(labels.get(r, c)).or_insert(0) += 1;
        }
        assert_eq!(run.per_component.len(), expect.len());
        for (l, v) in expect {
            assert_eq!(run.value_of(l), Some(v), "component {l}");
        }
    }
}
