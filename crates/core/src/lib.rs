//! Greenberg's SPAA 1995 connected-component labeling algorithm for the
//! scan line array processor (SLAP).
//!
//! The algorithm labels the 4-connected components of an `rows × cols` binary
//! image on a linear array of `cols` PEs, giving each component the minimum
//! column-major position (`col * rows + row`) over its pixels. Its structure
//! (paper Figure 2, **Algorithm CC**):
//!
//! 1. a **left-connected** labeling pass: [`passes::unionfind_pass`]
//!    (Fig. 5) groups each column's pixels into left-component sets with
//!    union–find, pipelining *relevant unions* rightward; a local find pass
//!    then resolves every pixel's set; [`passes::label_pass`] (Fig. 6)
//!    pipelines labels rightward;
//! 2. the mirror-image **right-connected** pass (implemented by running the
//!    left machinery on the horizontally flipped image);
//! 3. a local **stitch** in each PE: sequential connected components on the
//!    graph `{(leftlabel[j], rightlabel[j])}`, labeling each component with
//!    the least label seen (paper §2's consistency rule).
//!
//! Every step is executed on the `slap-machine` virtual-time simulator, so a
//! run yields both the labeling and exact step counts ([`CcMetrics`]) under
//! whichever union–find implementation and algorithm variant
//! ([`CcOptions`]) is selected — the quantities behind the paper's
//! Lemma 1/2, Theorem 3 and the §3 practical variants.
//!
//! [`aggregate`] implements Corollary 4 (component-wise folds of arbitrary
//! initial labels) and [`bitserial`] the Theorem 5 bit-link machinery.
//!
//! The crate also re-exports the *host-side* engines as [`fast`]
//! ([`fast::fast_labels`] sequential, [`fast::parallel_labels`]
//! strip-parallel) and [`stream`] ([`stream::StreamLabeler`], the
//! one-row-per-beat bounded-memory engine whose retirement records feed the
//! [`features`] hook) — the wall-clock counterparts the simulation is
//! measured against — and generalizes the stitch argument to horizontal band
//! seams in [`stitch::stitch_bands`] and to full 2-D tile grids with
//! hierarchical pairwise-doubling seam merging in [`stitch::stitch_grid`],
//! the specifications behind the strip-parallel and tiled engines' seam
//! passes.
//!
//! The [`engine`] module unifies those host engines behind one trait:
//! [`LabelEngine`] sessions own their scratch arenas and relabel
//! allocation-free in steady state, and [`registry`] enumerates every engine
//! with its capabilities so the CLI, the bench sweeps, and the differential
//! suites dispatch from data rather than per-engine match arms.
//!
//! # Quick start
//!
//! ```
//! use slap_cc::{label_components, CcOptions};
//! use slap_image::{gen, bfs_labels};
//!
//! let img = gen::uniform_random(64, 64, 0.4, 7);
//! let run = label_components::<slap_unionfind::TarjanUf>(&img, &CcOptions::default());
//! assert_eq!(run.labels, bfs_labels(&img)); // exact, not just same partition
//! println!("SLAP steps: {}", run.metrics.total_steps);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod bitserial;
pub mod cc;
pub mod engine;
pub mod features;
pub mod lockstep_cc;
pub mod lockstep_propagate;
pub mod passes;
pub mod runs;
pub mod spacetime;
pub mod stitch;

pub use cc::{
    label_components, label_components_kind, CcMetrics, CcOptions, CcRun, ForwardPolicy,
    PassMetrics,
};
pub use engine::{
    registry, BfsSession, EngineInfo, EngineKind, EngineStats, FastSession, LabelEngine,
    MemoryClass, ParallelSession, PropagateSession, StreamSession, TiledSession,
};
pub use runs::label_components_runs;
pub use slap_image::fast;
pub use slap_image::stream;
pub use slap_image::Connectivity;

/// Sentinel for "no row" / "unset label" in the passes' `u32` arrays (the
/// paper's `nil`); appears in the public `adjnext`/`adjprev` witness arrays
/// and the run tables.
pub const NIL: u32 = u32::MAX;
