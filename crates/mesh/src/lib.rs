//! A SIMD two-dimensional mesh simulator.
//!
//! The paper's introduction contrasts the SLAP (n PEs) with mesh algorithms
//! that label an `n × n` image in `O(n)` time using **n² processors**
//! [Levialdi 72; Nassimi–Sahni 80; Cypher–Sanz–Snyder 90] and argues the
//! resource cost is prohibitive ("even with n = 128, n² processors would
//! greatly exceed the available resources on most existing parallel
//! machines"). Experiment E6 reproduces that comparison, which requires an
//! actual mesh to run the baselines on.
//!
//! The model: one PE per pixel, NSEW links, lock-step rounds. Every live cell
//! ticks once per round; words written in round `t` are readable by the
//! neighbor in round `t+1` (single-word link registers, newest word wins,
//! exactly like the linear-array executor in `slap-machine`).

#![warn(missing_docs)]

use std::fmt;

/// Result of one cell tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// Keep ticking.
    Running,
    /// Finished; the cell is not ticked again and later arrivals are dropped.
    Done,
}

/// The four mesh directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Toward row 0.
    North,
    /// Toward the last row.
    South,
    /// Toward the last column.
    East,
    /// Toward column 0.
    West,
}

impl Dir {
    /// All four directions.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
        }
    }

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        }
    }
}

/// Per-tick I/O window of one cell: the four incoming link registers and the
/// four outgoing ones (at most one word per direction per round).
pub struct CellIo<W> {
    incoming: [Option<W>; 4],
    outgoing: [Option<W>; 4],
}

impl<W: Copy> CellIo<W> {
    /// Consumes the word that arrived from `dir`, if any.
    pub fn recv(&mut self, dir: Dir) -> Option<W> {
        self.incoming[dir.index()].take()
    }

    /// Peeks at the word from `dir` without consuming it.
    pub fn peek(&self, dir: Dir) -> Option<W> {
        self.incoming[dir.index()]
    }

    /// Sends a word toward `dir`; `false` if that link was already used this
    /// round.
    pub fn send(&mut self, dir: Dir, w: W) -> bool {
        let slot = &mut self.outgoing[dir.index()];
        if slot.is_some() {
            return false;
        }
        *slot = Some(w);
        true
    }
}

/// A mesh cell program; one tick per SIMD round.
pub trait CellProgram {
    /// Link word type.
    type Word: Copy;

    /// Executes one round. `row`/`col` give the cell's coordinates.
    fn tick(&mut self, row: usize, col: usize, io: &mut CellIo<Self::Word>) -> CellStatus;
}

/// Accounting from a mesh run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeshReport {
    /// Rounds until every cell was done — the mesh machine time.
    pub rounds: u64,
    /// Total ticks across cells.
    pub ticks: u64,
    /// Number of processors used (`rows * cols`), for the E6 resource
    /// comparison (`rounds × processors` = work).
    pub processors: usize,
}

impl MeshReport {
    /// Time × processors, the resource product the paper's intro compares.
    pub fn work(&self) -> u64 {
        self.rounds * self.processors as u64
    }
}

impl fmt::Display for MeshReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds on {} PEs (work {})",
            self.rounds,
            self.processors,
            self.work()
        )
    }
}

/// Runs an `rows × cols` mesh of cell programs to completion.
///
/// # Panics
/// Panics if the mesh is empty or any cell is still running after
/// `max_rounds`.
pub fn run_mesh<P: CellProgram>(
    rows: usize,
    cols: usize,
    cells: &mut [P],
    max_rounds: u64,
) -> MeshReport {
    assert!(rows > 0 && cols > 0, "mesh must be non-empty");
    assert_eq!(cells.len(), rows * cols, "cell count must match dimensions");
    let n = cells.len();
    let mut regs: Vec<[Option<P::Word>; 4]> = (0..n).map(|_| [None; 4]).collect();
    let mut next: Vec<[Option<P::Word>; 4]> = (0..n).map(|_| [None; 4]).collect();
    let mut done = vec![false; n];
    let mut active = n;
    let mut rounds = 0u64;
    let mut ticks = 0u64;
    while active > 0 {
        assert!(
            rounds < max_rounds,
            "mesh run exceeded {max_rounds} rounds with {active} cells running"
        );
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if done[i] {
                    continue;
                }
                let mut io = CellIo {
                    incoming: std::mem::take(&mut regs[i]),
                    outgoing: [None; 4],
                };
                let status = cells[i].tick(r, c, &mut io);
                ticks += 1;
                // unconsumed words persist
                regs[i] = io.incoming;
                // deliver sends: a word sent toward `dir` lands in the
                // neighbor's register for the opposite direction
                for dir in Dir::ALL {
                    if let Some(w) = io.outgoing[dir.index()] {
                        let target = match dir {
                            Dir::North if r > 0 => Some(i - cols),
                            Dir::South if r + 1 < rows => Some(i + cols),
                            Dir::East if c + 1 < cols => Some(i + 1),
                            Dir::West if c > 0 => Some(i - 1),
                            _ => None,
                        };
                        if let Some(t) = target {
                            next[t][dir.opposite().index()] = Some(w);
                        }
                    }
                }
                if status == CellStatus::Done {
                    done[i] = true;
                    active -= 1;
                }
            }
        }
        for i in 0..n {
            for d in 0..4 {
                if let Some(w) = next[i][d].take() {
                    regs[i][d] = Some(w);
                }
            }
        }
        rounds += 1;
    }
    MeshReport {
        rounds,
        ticks,
        processors: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every cell starts with a value; each round it sends its value east and
    /// adopts the minimum of itself and arrivals; stops after `deadline`
    /// rounds. Row minima must propagate east.
    struct RowMin {
        value: u64,
        rounds_left: u32,
    }

    impl CellProgram for RowMin {
        type Word = u64;
        fn tick(&mut self, _r: usize, _c: usize, io: &mut CellIo<u64>) -> CellStatus {
            if let Some(w) = io.recv(Dir::West) {
                self.value = self.value.min(w);
            }
            io.send(Dir::East, self.value);
            if self.rounds_left == 0 {
                CellStatus::Done
            } else {
                self.rounds_left -= 1;
                CellStatus::Running
            }
        }
    }

    #[test]
    fn values_propagate_east() {
        let (rows, cols) = (3, 6);
        let mut cells: Vec<RowMin> = (0..rows * cols)
            .map(|i| RowMin {
                value: (i % cols) as u64 + 100 * (i / cols) as u64,
                rounds_left: cols as u32,
            })
            .collect();
        let report = run_mesh(rows, cols, &mut cells, 1000);
        for r in 0..rows {
            // eastmost cell has seen the whole row: min = 100 * r
            assert_eq!(cells[r * cols + cols - 1].value, 100 * r as u64);
        }
        assert_eq!(report.processors, rows * cols);
        assert!(report.rounds >= cols as u64);
    }

    #[test]
    fn corner_sends_are_dropped() {
        struct EdgeSpammer {
            n: u32,
        }
        impl CellProgram for EdgeSpammer {
            type Word = u64;
            fn tick(&mut self, _r: usize, _c: usize, io: &mut CellIo<u64>) -> CellStatus {
                for d in Dir::ALL {
                    io.send(d, 1);
                }
                self.n -= 1;
                if self.n == 0 {
                    CellStatus::Done
                } else {
                    CellStatus::Running
                }
            }
        }
        let mut cells = vec![EdgeSpammer { n: 3 }];
        let report = run_mesh(1, 1, &mut cells, 100);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn opposite_direction_pairs() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn work_is_rounds_times_processors() {
        let r = MeshReport {
            rounds: 7,
            ticks: 0,
            processors: 9,
        };
        assert_eq!(r.work(), 63);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_mesh_is_caught() {
        struct Forever;
        impl CellProgram for Forever {
            type Word = u8;
            fn tick(&mut self, _r: usize, _c: usize, _io: &mut CellIo<u8>) -> CellStatus {
                CellStatus::Running
            }
        }
        let mut cells = vec![Forever, Forever, Forever, Forever];
        run_mesh(2, 2, &mut cells, 10);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_cell_count_rejected() {
        struct Noop;
        impl CellProgram for Noop {
            type Word = u8;
            fn tick(&mut self, _r: usize, _c: usize, _io: &mut CellIo<u8>) -> CellStatus {
                CellStatus::Done
            }
        }
        let mut cells = vec![Noop];
        run_mesh(2, 2, &mut cells, 10);
    }
}
