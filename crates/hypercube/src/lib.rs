//! A SIMD hypercube machine model and a polylog-time component labeler.
//!
//! The paper's introduction contrasts the SLAP with richer networks:
//! *"Other algorithms can yield even better than O(n) time \[5, 15, 17\], but
//! only with interconnection networks that are more complicated and,
//! therefore, more costly."* Reference \[5\] is Cypher–Sanz–Snyder's hypercube
//! / shuffle-exchange labeling. No public implementation of that algorithm
//! exists; this crate reproduces the *comparison* the introduction makes —
//! polylogarithmic time bought with `n²` processors and `Θ(n² lg n)` links —
//! with two pieces:
//!
//! * [`cost`] — the standard one-word-per-link-per-step SIMD hypercube cost
//!   model, expressed as exact round counts for the collective operations
//!   (dimension exchange, bitonic sort, scan/reduce, sort-based remote
//!   access) that hypercube connectivity algorithms are built from;
//! * [`sv`] — a Shiloach–Vishkin-style hook-and-shortcut labeler over the
//!   image's pixel graph, one pixel per PE, whose every super-step is
//!   charged through the cost model. (Cypher–Sanz–Snyder reach `O(lg² n)`
//!   with bespoke merging; the sort-based S-V here runs in
//!   `O(lg n)`-ish iterations of `O(lg² n)`-round collectives — still
//!   polylog, which is what the resource comparison needs. The substitution
//!   is recorded in DESIGN.md.)
//!
//! Experiment E15 runs this labeler against Algorithm CC on the SLAP and
//! tabulates time, processor count, link count, and work.

#![warn(missing_docs)]

pub mod cost;
pub mod sv;

pub use cost::{HypercubeCost, HypercubeReport};
pub use sv::{sv_labels, sv_labels_conn};
