//! The SIMD hypercube cost model.
//!
//! A `d`-dimensional hypercube has `N = 2^d` PEs; PE `p` is linked to the
//! `d` PEs whose index differs from `p` in exactly one bit, for
//! `N·d/2` full-duplex links in total. One time step (round) moves at most
//! one word across each link — the same word-per-link-per-step convention
//! the SLAP simulator charges.
//!
//! Hypercube algorithms in the Cypher–Sanz–Snyder style are *normal*: each
//! round uses a single dimension, so their cost is an exact round count per
//! collective. This module states those counts; the labeler in [`crate::sv`]
//! charges every super-step through them. (This mirrors the virtual-time
//! SLAP executor, which also computes exact step counts analytically rather
//! than pushing words around.)
//!
//! Collective round counts (`d` = dimensions):
//!
//! | collective | rounds | construction |
//! |---|---|---|
//! | one dimension exchange | 1 | definition |
//! | reduce / broadcast / scan | `d` | dimension sweep |
//! | bitonic sort | `d(d+1)/2` | Batcher's network, one compare-exchange dimension per round |
//! | remote read (one indirection) | `2·sort + 2·d` | sort requests by target, deliver + combine (scan), sort replies back |
//! | CRCW min-write | `sort + d` | sort by target, segmented-min scan, deliver |

/// Cost model for one SIMD hypercube of `2^d` PEs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HypercubeCost {
    /// Number of dimensions (`lg` of the PE count).
    pub d: u32,
}

impl HypercubeCost {
    /// The smallest hypercube with at least `min_pes` PEs.
    pub fn for_pes(min_pes: usize) -> Self {
        let d = usize::BITS - min_pes.max(1).saturating_sub(1).leading_zeros();
        HypercubeCost { d }
    }

    /// Number of PEs (`2^d`).
    pub fn pes(&self) -> u64 {
        1u64 << self.d
    }

    /// Number of full-duplex links (`N·d/2`).
    pub fn links(&self) -> u64 {
        self.pes() * self.d as u64 / 2
    }

    /// Rounds for one dimension exchange.
    pub fn exchange(&self) -> u64 {
        1
    }

    /// Rounds for a reduce, broadcast, or (segmented) prefix scan: one sweep
    /// over the dimensions.
    pub fn sweep(&self) -> u64 {
        self.d as u64
    }

    /// Rounds for a bitonic sort of one key per PE: `d` merge phases, phase
    /// `i` running `i+1` compare-exchange dimensions.
    pub fn sort(&self) -> u64 {
        let d = self.d as u64;
        d * (d + 1) / 2
    }

    /// Rounds for one data-parallel remote read (`x[v] <- y[f(v)]` for
    /// arbitrary `f`): concentrate the requests with one sort, satisfy
    /// duplicates with a scan sweep, route the replies back with another
    /// sort and sweep.
    pub fn remote_read(&self) -> u64 {
        2 * self.sort() + 2 * self.sweep()
    }

    /// Rounds for one combining (CRCW-min) remote write: sort the writes by
    /// target, fold duplicates with a segmented-min scan, deliver.
    pub fn min_write(&self) -> u64 {
        self.sort() + 2 * self.sweep()
    }
}

/// Accounting from a hypercube algorithm run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HypercubeReport {
    /// Hypercube dimensions used.
    pub d: u32,
    /// Total rounds (machine time).
    pub rounds: u64,
    /// Super-step iterations the algorithm needed (hook + shortcut passes).
    pub iterations: u64,
    /// PE count.
    pub pes: u64,
    /// Link count.
    pub links: u64,
}

impl HypercubeReport {
    /// Time × processors.
    pub fn work(&self) -> u64 {
        self.rounds * self.pes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_pes_rounds_up_to_powers_of_two() {
        assert_eq!(HypercubeCost::for_pes(1).d, 0);
        assert_eq!(HypercubeCost::for_pes(2).d, 1);
        assert_eq!(HypercubeCost::for_pes(3).d, 2);
        assert_eq!(HypercubeCost::for_pes(4).d, 2);
        assert_eq!(HypercubeCost::for_pes(5).d, 3);
        assert_eq!(HypercubeCost::for_pes(1024).d, 10);
        assert_eq!(HypercubeCost::for_pes(1025).d, 11);
    }

    #[test]
    fn link_count_is_half_n_d() {
        let c = HypercubeCost { d: 4 };
        assert_eq!(c.pes(), 16);
        assert_eq!(c.links(), 32);
    }

    #[test]
    fn sort_is_batcher_round_count() {
        assert_eq!(HypercubeCost { d: 1 }.sort(), 1);
        assert_eq!(HypercubeCost { d: 4 }.sort(), 10);
        assert_eq!(HypercubeCost { d: 10 }.sort(), 55);
    }

    #[test]
    fn collectives_scale_polylogarithmically() {
        // Doubling the PE count four times (d 10 -> 14) must grow every
        // collective by far less than the 16x PE growth.
        let small = HypercubeCost { d: 10 };
        let big = HypercubeCost { d: 14 };
        assert!(big.remote_read() < 2 * small.remote_read());
        assert!(big.min_write() < 2 * small.min_write());
        assert!(big.sweep() < 2 * small.sweep());
    }
}
