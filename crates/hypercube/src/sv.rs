//! Shiloach–Vishkin-style component labeling, charged on the hypercube.
//!
//! One PE per pixel (vertex ids = column-major positions, so the final roots
//! are exactly the paper's minimum-position labels). Each super-step is a
//! constant number of data-parallel collectives; the data flow is computed
//! directly while the round clock advances by the exact collective costs of
//! [`HypercubeCost`] — the same analytic-execution style as the SLAP
//! virtual-time executor.
//!
//! Per iteration:
//!
//! 1. **hook** — for every mesh edge `(u, v)` (both orientations): if
//!    `f[u]` is a root and `f[v] < f[u]`, propose `f[f[u]] ← f[v]`;
//!    concurrent proposals to one root combine by minimum (CRCW-min).
//!    Collectives: three remote reads (`f[u]`, `f[v]`, `f[f[u]]`) and one
//!    combining write.
//! 2. **shortcut** — `f[v] ← f[f[v]]`: one remote read.
//! 3. **convergence test** — an OR-reduce.
//!
//! Hooking is strictly decreasing and the minimum vertex of a component can
//! never hook or move, so at convergence every component is one star rooted
//! at its minimum column-major position — the oracle labeling, exactly.
//!
//! The iteration count is logarithmic-ish in practice (asserted loosely in
//! tests and reported by experiment E15); Cypher–Sanz–Snyder's bespoke
//! merging \[5\] is asymptotically tighter (`O(lg² n)` total) but the
//! polylog-vs-`Ω(n)` resource comparison the paper's introduction makes is
//! insensitive to the extra `lg` factor.

use crate::cost::{HypercubeCost, HypercubeReport};
use slap_image::{Bitmap, Connectivity, LabelGrid};

/// [`sv_labels_conn`] under the paper's 4-connectivity.
pub fn sv_labels(img: &Bitmap) -> (LabelGrid, HypercubeReport) {
    sv_labels_conn(img, Connectivity::Four)
}

/// Labels the components of `img` with the hypercube S-V labeler. Returns
/// the labeling (identical to the oracle's) and the round accounting.
pub fn sv_labels_conn(img: &Bitmap, conn: Connectivity) -> (LabelGrid, HypercubeReport) {
    let (rows, cols) = (img.rows(), img.cols());
    let n_px = rows * cols;
    let cube = HypercubeCost::for_pes(n_px);
    let mut report = HypercubeReport {
        d: cube.d,
        rounds: 0,
        iterations: 0,
        pes: cube.pes(),
        links: cube.links(),
    };

    // Vertex ids are column-major positions; background cells are unused.
    let pos = |r: usize, c: usize| (c * rows + r) as u32;
    let mut f: Vec<u32> = (0..n_px as u32).collect();

    // Edge list, both orientations (each pixel PE owns its outgoing
    // proposals, SIMD-style).
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in 0..cols {
        for r in 0..rows {
            if !img.get(r, c) {
                continue;
            }
            for (nr, nc) in conn.neighbors(r, c, rows, cols) {
                if img.get(nr, nc) {
                    edges.push((pos(r, c), pos(nr, nc)));
                }
            }
        }
    }

    let iter_cap = 4 * cube.d as u64 + 16;
    loop {
        report.iterations += 1;
        assert!(
            report.iterations <= iter_cap,
            "S-V failed to converge within {iter_cap} iterations"
        );
        let mut changed = false;

        // Phase 1: hooking (synchronous reads from the snapshot, CRCW-min
        // writes applied after).
        report.rounds += 3 * cube.remote_read() + cube.min_write();
        let snapshot = f.clone();
        let mut proposal: Vec<u32> = snapshot.clone(); // proposal[root] = min hook target
        for &(u, v) in &edges {
            let fu = snapshot[u as usize];
            let fv = snapshot[v as usize];
            let fu_is_root = snapshot[fu as usize] == fu;
            if fu_is_root && fv < fu {
                let slot = &mut proposal[fu as usize];
                if fv < *slot {
                    *slot = fv;
                }
            }
        }
        for v in 0..n_px {
            if proposal[v] != snapshot[v] {
                f[v] = proposal[v];
                changed = true;
            }
        }

        // Phase 2: shortcut.
        report.rounds += cube.remote_read();
        let before = f.clone();
        for v in 0..n_px {
            let gp = before[before[v] as usize];
            if gp != f[v] {
                f[v] = gp;
                changed = true;
            }
        }

        // Phase 3: OR-reduce for convergence.
        report.rounds += cube.sweep();
        if !changed {
            break;
        }
    }

    let mut grid = LabelGrid::new_background(rows, cols);
    for c in 0..cols {
        for r in 0..rows {
            if img.get(r, c) {
                grid.set(r, c, f[pos(r, c) as usize]);
            }
        }
    }
    (grid, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slap_image::{fast_labels_conn, gen};

    #[test]
    fn labels_match_oracle_on_all_generators() {
        for name in gen::WORKLOADS {
            let img = gen::by_name(name, 24, 7).unwrap();
            for conn in [Connectivity::Four, Connectivity::Eight] {
                let (labels, _) = sv_labels_conn(&img, conn);
                assert_eq!(labels, fast_labels_conn(&img, conn), "{name} {conn}");
            }
        }
    }

    #[test]
    fn labels_are_min_positions_exactly() {
        let img = Bitmap::from_art(
            "###\n\
             ..#\n\
             ###\n",
        );
        let (labels, _) = sv_labels(&img);
        for (r, c) in img.iter_ones_colmajor() {
            assert_eq!(labels.get(r, c), 0);
        }
    }

    #[test]
    fn iteration_count_stays_logarithmic_ish() {
        // The serpentine snake has diameter Θ(n²): label propagation would
        // need Θ(n²) rounds, S-V must stay polylogarithmic.
        let mut iters = Vec::new();
        for n in [16usize, 32, 64] {
            let img = gen::serpentine(n, n, 3);
            let (labels, report) = sv_labels(&img);
            assert_eq!(labels, fast_labels_conn(&img, Connectivity::Four));
            iters.push(report.iterations);
        }
        // d doubles across the sweep; iterations must grow additively
        // (like lg n), not multiplicatively (like n).
        assert!(
            iters[2] <= iters[0] + 16,
            "iterations grew too fast: {iters:?}"
        );
        assert!(
            iters[2] >= iters[0],
            "iterations should not shrink: {iters:?}"
        );
    }

    #[test]
    fn rounds_are_polylog_while_pixels_grow_quadratically() {
        let r16 = sv_labels(&gen::serpentine(16, 16, 3)).1;
        let r64 = sv_labels(&gen::serpentine(64, 64, 3)).1;
        assert_eq!(r64.pes, 16 * r16.pes, "PE count must grow 16x");
        assert!(
            r64.rounds < 8 * r16.rounds,
            "rounds grew near-linearly: {} -> {}",
            r16.rounds,
            r64.rounds
        );
    }

    #[test]
    fn empty_and_full_images_terminate() {
        let empty = Bitmap::new(8, 8);
        let (l, rep) = sv_labels(&empty);
        assert_eq!(l.component_count(), 0);
        assert!(rep.iterations >= 1);
        let full = gen::full(8, 8);
        let (l, _) = sv_labels(&full);
        assert_eq!(l.component_count(), 1);
        assert_eq!(l.get(7, 7), 0);
    }

    #[test]
    fn single_pixel_image() {
        let img = Bitmap::from_art("#");
        let (l, rep) = sv_labels(&img);
        assert_eq!(l.get(0, 0), 0);
        assert_eq!(rep.pes, 1);
    }

    #[test]
    fn report_work_multiplies_rounds_by_pes() {
        let img = gen::uniform_random(16, 16, 0.5, 3);
        let (_, rep) = sv_labels(&img);
        assert_eq!(rep.work(), rep.rounds * rep.pes);
    }
}
