//! The fault-injection suite: `slapd` under eight classes of hostile I/O.
//!
//! Every test drives a real server over real sockets through the seeded
//! [`slap_serve::chaos`] scripts and asserts the robustness contract:
//! the server never crashes, corrupted inputs get typed rejections (or a
//! clean close), healthy jobs keep answering bit-identically to the fast
//! engine throughout, backpressure and deadlines fire as typed codes, and
//! shutdown drains gracefully under load.

use slap_cc::{Connectivity, EngineKind};
use slap_image::{pbm, Bitmap, LabelGrid};
use slap_serve::chaos::{ChaosTransport, Delivery, FaultClass, FaultyStream};
use slap_serve::client::{Client, RetryPolicy};
use slap_serve::protocol::{self, Response, ResponseMode, StreamResponse, WireError};
use slap_serve::server::{ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A non-trivial test image with a known-good labeling.
fn spiral(rows: usize, cols: usize) -> Bitmap {
    let mut img = Bitmap::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if (r * c) % 7 == 0 || r % 5 == 0 {
                img.set(r, c, true);
            }
        }
    }
    img
}

/// The fast engine's answer, the bit-identical oracle for every healthy
/// job in this suite.
fn oracle(img: &Bitmap) -> (usize, Vec<u32>) {
    let mut grid = LabelGrid::new_background(img.rows(), img.cols());
    let stats = EngineKind::Fast
        .session(1)
        .label_into(img, Connectivity::Four, &mut grid);
    (stats.components, grid.as_slice().to_vec())
}

fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        deadline: Duration::from_secs(2),
        io_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    }
}

/// Sends one healthy job over a fresh connection and asserts the reply is
/// bit-identical to the fast engine.
fn assert_healthy(addr: SocketAddr, img: &Bitmap) {
    let mut stream = TcpStream::connect(addr).expect("server must accept");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    pbm::write_framed(img, &mut stream).expect("server must read");
    let mut reader = BufReader::new(stream);
    let resp = protocol::read_response(&mut reader)
        .expect("server must answer")
        .expect("server must not close on a healthy job");
    let (components, labels) = oracle(img);
    match resp {
        Response::Ok(ok) => {
            assert_eq!(ok.rows, img.rows());
            assert_eq!(ok.cols, img.cols());
            assert_eq!(ok.components, components, "component count diverged");
            assert_eq!(ok.labels, labels, "labels diverged from the fast engine");
        }
        other => panic!("healthy job rejected: {other:?}"),
    }
}

/// Reads responses until the server closes (or resets) the connection.
fn read_responses_until_close<R: std::io::Read>(stream: R) -> Vec<Response> {
    let mut reader = BufReader::new(stream);
    let mut out = Vec::new();
    loop {
        match protocol::read_response(&mut reader) {
            Ok(Some(resp)) => out.push(resp),
            Ok(None) => break, // clean close
            Err(_) => break,   // reset / desync after corruption: acceptable
        }
    }
    out
}

/// The core contract: for every fault class and several seeds, inject a
/// corrupted job, then prove the server is still healthy. Corrupted
/// deliveries must never produce an `OK`, and any response they do
/// produce must be a typed `ERR`.
#[test]
fn server_survives_all_fault_classes() {
    let server = Server::bind("127.0.0.1:0", chaos_cfg()).unwrap();
    let addr = server.local_addr();
    let img = spiral(23, 57);
    let mut frame = Vec::new();
    pbm::write_framed(&img, &mut frame).unwrap();
    let stall = Duration::from_millis(500); // past the 200ms io_timeout
    let (components, labels) = oracle(&img);

    for class in FaultClass::ALL {
        for seed in 1..=3u64 {
            let raw = TcpStream::connect(addr).expect("accept during chaos");
            raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut faulty = FaultyStream::new(raw, class, seed);
            let delivery = faulty
                .send_job(&frame, stall)
                .unwrap_or(Delivery::Corrupted); // write to a reset peer is fine
            let _ = faulty.get_mut().close_write();
            let responses = read_responses_until_close(faulty);
            match delivery {
                Delivery::Intact => {
                    // Hostile pacing, whole frame: the job must succeed.
                    assert_eq!(responses.len(), 1, "{class}/{seed}: one job, one response");
                    match &responses[0] {
                        Response::Ok(ok) => {
                            assert_eq!(ok.components, components);
                            assert_eq!(ok.labels, labels);
                        }
                        other => panic!("{class}/{seed}: intact job rejected: {other:?}"),
                    }
                }
                Delivery::Corrupted => {
                    for resp in &responses {
                        match resp {
                            Response::Rejected { code, .. } => assert!(
                                matches!(code, WireError::BadFrame | WireError::Deadline),
                                "{class}/{seed}: unexpected code {code}"
                            ),
                            Response::Ok(_) => {
                                panic!("{class}/{seed}: corrupted frame answered OK")
                            }
                        }
                    }
                }
            }
            // The server is still alive and still exact.
            assert_healthy(addr, &img);
        }
    }

    let stats = server.shutdown();
    // One healthy probe per injection plus the intact deliveries (three
    // short-ops and three stream-abort runs; the abort here targets a v1
    // grid connection whose response the test drains fully).
    assert_eq!(
        stats.jobs_ok,
        8 * 3 + 2 * 3,
        "healthy jobs served throughout"
    );
    assert!(
        stats.bad_frame > 0,
        "corrupted frames must surface as typed bad-frame rejections"
    );
    assert_eq!(stats.panics, 0);
}

/// A v2 client that vanishes mid-`STREAM` response: the server must eat
/// the write failure as plain connection I/O — no panic, no session
/// rebuild — and keep answering everyone else exactly.
#[test]
fn a_client_vanishing_mid_stream_response_is_drained() {
    let server = Server::bind("127.0.0.1:0", chaos_cfg()).unwrap();
    let addr = server.local_addr();
    // A checkerboard maximizes components, so the STREAM response is many
    // kilobytes of records — far more than the abort script reads.
    let mut img = Bitmap::new(60, 60);
    for r in 0..60 {
        for c in 0..60 {
            if (r + c) % 2 == 0 {
                img.set(r, c, true);
            }
        }
    }
    let mut frame = Vec::new();
    pbm::write_framed(&img, &mut frame).unwrap();

    for seed in 1..=3u64 {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        protocol::write_hello(&mut (&stream), ResponseMode::Stream).unwrap();
        assert_eq!(
            protocol::read_hello(&mut reader).unwrap(),
            ResponseMode::Stream
        );
        drop(reader);
        let mut faulty = FaultyStream::new(stream, FaultClass::StreamAbort, seed);
        let delivery = faulty.send_job(&frame, Duration::from_millis(1)).unwrap();
        assert_eq!(delivery, Delivery::Intact);
        // Read a token slice of the response, then vanish entirely.
        let got = faulty.abandon_after_reading(32).unwrap();
        assert!(got > 0, "seed {seed}: the server had started answering");
        // The same server still labels bit-exactly.
        assert_healthy(addr, &img);
    }

    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
    assert_eq!(
        stats.sessions_rebuilt, 0,
        "an aborted reader is connection I/O, not a worker fault"
    );
}

/// A raster truncated *inside* a consistent frame clears the framing
/// layer and admission (stream mode never materializes the body up
/// front, and the tiny `max_pixels` here routes it out-of-core), so a
/// worker discovers the corruption mid-band. That must surface as a
/// typed `bad-frame` on a connection that stays usable — no rebuild, no
/// desync.
#[test]
fn a_truncated_body_discovered_after_admission_is_typed_not_fatal() {
    let cfg = ServeConfig {
        max_pixels: 64, // 23×57 = 1311 pixels: routes out-of-core
        ..chaos_cfg()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let img = spiral(23, 57);
    let mut frame = Vec::new();
    pbm::write_framed(&img, &mut frame).unwrap();
    let (components, _) = oracle(&img);

    for seed in 1..=3u64 {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        protocol::write_hello(&mut (&stream), ResponseMode::Stream).unwrap();
        assert_eq!(
            protocol::read_hello(&mut reader).unwrap(),
            ResponseMode::Stream
        );
        let mut faulty = FaultyStream::new(stream, FaultClass::TruncatedBody, seed);
        assert_eq!(
            faulty.send_job(&frame, Duration::from_millis(1)).unwrap(),
            Delivery::Corrupted
        );
        match protocol::read_stream_response(&mut reader).unwrap() {
            Some(StreamResponse::Rejected { code, .. }) => {
                assert_eq!(code, WireError::BadFrame, "seed {seed}")
            }
            other => panic!("seed {seed}: expected bad-frame, got {other:?}"),
        }
        // Not desynced: the same socket serves a clean streamed job
        // immediately afterwards.
        faulty.get_mut().write_all(&frame).unwrap();
        match protocol::read_stream_response(&mut reader).unwrap() {
            Some(StreamResponse::Ok(ok)) => {
                assert_eq!(ok.components, components);
                assert_eq!(ok.records.len(), components);
            }
            other => panic!("seed {seed}: clean follow-up failed: {other:?}"),
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
    assert_eq!(
        stats.sessions_rebuilt, 0,
        "raster I/O errors rebuild nothing"
    );
    assert_eq!(stats.bad_frame, 3);
    assert_eq!(stats.jobs_ooc, 3, "the clean follow-ups routed out-of-core");
    assert!(
        stats.peak_carried_runs as usize <= 57 / 2 + 1,
        "carried state stayed O(cols): {}",
        stats.peak_carried_runs
    );
}

/// Healthy traffic keeps flowing *concurrently* while faults are being
/// injected, not just between injections.
#[test]
fn healthy_jobs_answer_while_chaos_runs() {
    let server = Server::bind("127.0.0.1:0", chaos_cfg()).unwrap();
    let addr = server.local_addr();
    let ok_count = Arc::new(AtomicU64::new(0));

    let clients: Vec<_> = (0..2)
        .map(|i| {
            let ok_count = Arc::clone(&ok_count);
            thread::spawn(move || {
                let img = spiral(19 + i, 40 + 3 * i);
                let (components, labels) = oracle(&img);
                let mut client = Client::with_policy(
                    addr,
                    RetryPolicy {
                        base_delay: Duration::from_millis(5),
                        ..RetryPolicy::default()
                    },
                );
                for _ in 0..15 {
                    let ok = client.label(&img).expect("healthy job during chaos");
                    assert_eq!(ok.components, components);
                    assert_eq!(ok.labels, labels, "labels diverged under chaos");
                    ok_count.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    let img = spiral(23, 57);
    let mut frame = Vec::new();
    pbm::write_framed(&img, &mut frame).unwrap();
    for round in 0..2u64 {
        for class in FaultClass::ALL {
            if class == FaultClass::Stall {
                continue; // covered above; keeps this test fast
            }
            let raw = TcpStream::connect(addr).unwrap();
            raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut faulty = FaultyStream::new(raw, class, 100 + round);
            let _ = faulty.send_job(&frame, Duration::from_millis(1));
            let _ = faulty.get_mut().close_write();
            let _ = read_responses_until_close(faulty);
        }
    }

    for c in clients {
        c.join().expect("client thread must not panic");
    }
    let stats = server.shutdown();
    assert_eq!(ok_count.load(Ordering::Relaxed), 30);
    assert!(stats.jobs_ok >= 30);
}

/// A full queue answers `queue-full` immediately instead of buffering
/// without bound; the server keeps serving afterwards.
#[test]
fn backpressure_rejects_typed_when_the_queue_is_full() {
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        deadline: Duration::from_secs(5),
        io_timeout: Duration::from_secs(2),
        job_hook: Some(Arc::new(|_img| thread::sleep(Duration::from_millis(300)))),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let img = spiral(10, 10);

    let attempts: Vec<_> = (0..6)
        .map(|_| {
            let img = img.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                pbm::write_framed(&img, &mut stream).unwrap();
                let mut reader = BufReader::new(stream);
                protocol::read_response(&mut reader).unwrap().unwrap()
            })
        })
        .collect();
    let outcomes: Vec<Response> = attempts.into_iter().map(|h| h.join().unwrap()).collect();

    let oks = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Ok(_)))
        .count();
    let full = outcomes
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Rejected {
                    code: WireError::QueueFull,
                    ..
                }
            )
        })
        .count();
    assert!(oks >= 1, "the worker must make progress under load");
    assert!(full >= 1, "overload must surface as typed queue-full");
    assert_eq!(oks + full, outcomes.len(), "no other outcome is acceptable");

    // Pressure released: the same server serves again.
    assert_healthy(addr, &img);
    let stats = server.shutdown();
    assert_eq!(stats.queue_full as usize, full);
    let budget = stats.peak_queue_bytes;
    assert!(budget > 0 && stats.peak_queue_depth <= 1);
}

/// Jobs that cannot meet their wall-clock deadline answer `deadline`:
/// both the slow-compute path and the expired-in-queue (watchdog) path.
#[test]
fn deadlines_expire_slow_and_queued_jobs() {
    let cfg = ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(150),
        io_timeout: Duration::from_secs(2),
        job_hook: Some(Arc::new(|_img| thread::sleep(Duration::from_millis(500)))),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let img = spiral(8, 8);

    // Two jobs race for one slow worker: the first blows its deadline in
    // compute, the second expires in the queue (swept by the watchdog).
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let img = img.clone();
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                pbm::write_framed(&img, &mut stream).unwrap();
                let mut reader = BufReader::new(stream);
                protocol::read_response(&mut reader).unwrap().unwrap()
            })
        })
        .collect();
    for h in racers {
        match h.join().unwrap() {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::Deadline),
            other => panic!("expected deadline rejection, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert!(
        stats.deadline_expired >= 2,
        "both paths must count: got {}",
        stats.deadline_expired
    );
    assert_eq!(stats.jobs_ok, 0);
}

/// Shutdown under live load: in-flight jobs finish and answer, new work
/// is refused, every client thread terminates, and the counters balance.
#[test]
fn graceful_drain_finishes_in_flight_work() {
    let cfg = ServeConfig {
        workers: 2,
        deadline: Duration::from_secs(5),
        io_timeout: Duration::from_millis(500),
        job_hook: Some(Arc::new(|_img| thread::sleep(Duration::from_millis(20)))),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let client_oks = Arc::new(AtomicU64::new(0));

    let clients: Vec<_> = (0..4)
        .map(|i| {
            let client_oks = Arc::clone(&client_oks);
            thread::spawn(move || {
                let img = spiral(12 + i, 30);
                let (components, labels) = oracle(&img);
                loop {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        break; // listener is gone: drain reached us
                    };
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    if pbm::write_framed(&img, &mut stream).is_err() {
                        break;
                    }
                    let mut reader = BufReader::new(stream);
                    match protocol::read_response(&mut reader) {
                        Ok(Some(Response::Ok(ok))) => {
                            assert_eq!(ok.components, components);
                            assert_eq!(ok.labels, labels);
                            client_oks.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(Some(Response::Rejected { code, .. })) => {
                            assert_eq!(code, WireError::Shutdown, "only drain rejects here");
                            break;
                        }
                        Ok(None) | Err(_) => break, // connection drained away
                    }
                }
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(250)); // let load build
    let stats = server.shutdown(); // must return despite live clients
    for c in clients {
        c.join().expect("client threads must all terminate");
    }
    let observed = client_oks.load(Ordering::Relaxed);
    assert!(observed > 0, "work must have flowed before the drain");
    assert_eq!(
        stats.jobs_ok, observed,
        "every job the server counted was answered to a client"
    );
    assert_eq!(stats.panics, 0);
}
