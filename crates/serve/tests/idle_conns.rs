//! The readiness-core contract: an idle keep-alive connection costs no
//! thread. Sixty-four parked clients must not grow the process thread
//! count at all (one poll loop owns every socket), and every one of those
//! sockets must still serve a job afterwards.

use slap_image::{pbm, Bitmap};
use slap_serve::protocol::{self, Response};
use slap_serve::server::{ServeConfig, Server};
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Threads in this process, per the kernel.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

#[test]
fn sixty_four_idle_connections_cost_no_thread() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let baseline = thread_count();

    // Park 64 idle connections: connect, then send nothing.
    let conns: Vec<TcpStream> = (0..64)
        .map(|_| {
            let s = TcpStream::connect(addr).expect("accept");
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            s
        })
        .collect();

    // Wait until the server has registered all of them, then a beat more
    // so any per-connection thread (the regression this test guards
    // against) would have been spawned.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().connections < 64 {
        assert!(Instant::now() < deadline, "server never saw all 64 conns");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));
    let parked = thread_count();
    assert!(
        parked <= baseline,
        "idle connections grew the thread count: {baseline} -> {parked}"
    );

    // The parked sockets are live connections, not zombies: each one
    // still serves a job.
    let img = {
        let mut img = Bitmap::new(9, 9);
        for i in 0..9 {
            img.set(i, i, true);
        }
        img
    };
    for (i, mut stream) in conns.into_iter().enumerate() {
        pbm::write_framed(&img, &mut stream).expect("parked conn must accept a job");
        let mut reader = BufReader::new(stream);
        match protocol::read_response(&mut reader)
            .expect("parked conn must answer")
            .expect("parked conn must not be closed")
        {
            Response::Ok(ok) => assert_eq!(ok.components, 9, "conn {i}"),
            other => panic!("conn {i}: healthy job rejected: {other:?}"),
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.connections, 64);
    assert_eq!(stats.jobs_ok, 64);
    assert_eq!(stats.io_errors, 0, "idle keep-alive is not an I/O error");
}
