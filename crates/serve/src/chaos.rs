//! Deterministic fault injection for the `slapd` wire protocol.
//!
//! [`FaultyStream`] wraps a transport and delivers a well-formed job frame
//! through one of eight scripted fault classes — truncation, pathological
//! short writes, mid-frame disconnect, a lying length prefix, a stall past
//! the server's I/O deadline, pure garbage, a raster truncated *inside* a
//! consistent frame (fails after admission, not at the framing layer), or
//! a client that vanishes mid-response. Every script is driven by a seeded
//! [`DetRng`], so a failing chaos run replays bit-for-bit from its seed.
//!
//! The stream stays readable after injection: a test sends a corrupted
//! frame, then reads the server's typed `ERR` response (or observes the
//! close) on the same wrapper. The response-side fault is the exception:
//! [`FaultyStream::abandon_after_reading`] consumes the wrapper to model a
//! full disconnect while the server is still writing.

use std::io::{self, Read, Write};
use std::time::Duration;

/// A tiny deterministic RNG (SplitMix64). Not cryptographic; used for
/// chaos scripts and client backoff jitter so both replay from a seed.
#[derive(Clone, Debug)]
pub struct DetRng(u64);

impl DetRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        DetRng(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`n` must be nonzero). Modulo bias is irrelevant
    /// at chaos-script scales.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// A uniformly random bool.
    pub fn chance(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The transport surface chaos scripts need: byte I/O plus the ability to
/// half-close the write side (to model a client vanishing mid-frame while
/// still reading the server's reaction).
pub trait ChaosTransport: Read + Write {
    /// Closes the write direction; reads stay usable.
    fn close_write(&mut self) -> io::Result<()>;
}

impl ChaosTransport for std::net::TcpStream {
    fn close_write(&mut self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

/// The eight scripted fault classes the harness can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Send a strict prefix of the frame, then nothing (caller closes).
    Truncate,
    /// Deliver the whole frame, but in 1–7 byte writes with a flush after
    /// each. The job is intact; only the I/O pattern is hostile.
    ShortOps,
    /// Send part of the frame body, then half-close the write side.
    Disconnect,
    /// Rewrite the decimal length prefix to lie about the body size.
    LyingLength,
    /// Send half the frame, stall past the server's I/O deadline, then try
    /// to send the rest.
    Stall,
    /// Send seeded random bytes that were never a frame.
    Garbage,
    /// Cut the PBM raster short but rewrite the length prefix to match the
    /// cut: the frame is *internally consistent*, so it clears the framing
    /// layer and is admitted — the corruption only surfaces when a worker
    /// walks the raster.
    TruncatedBody,
    /// Deliver the whole frame intact, then half-close the write side and
    /// (via [`FaultyStream::abandon_after_reading`]) vanish after reading
    /// only part of the response — the mid-`STREAM` client disconnect.
    StreamAbort,
}

impl FaultClass {
    /// Every class, in a stable order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::Truncate,
        FaultClass::ShortOps,
        FaultClass::Disconnect,
        FaultClass::LyingLength,
        FaultClass::Stall,
        FaultClass::Garbage,
        FaultClass::TruncatedBody,
        FaultClass::StreamAbort,
    ];

    /// A stable lowercase name for logs and test labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Truncate => "truncate",
            FaultClass::ShortOps => "short-ops",
            FaultClass::Disconnect => "disconnect",
            FaultClass::LyingLength => "lying-length",
            FaultClass::Stall => "stall",
            FaultClass::Garbage => "garbage",
            FaultClass::TruncatedBody => "truncated-body",
            FaultClass::StreamAbort => "stream-abort",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a fault script actually put on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The full, well-formed frame was delivered (hostile pacing aside);
    /// the server must answer the job normally.
    Intact,
    /// The frame was corrupted, cut short, or never sent; the server must
    /// reject or close, and must not crash.
    Corrupted,
}

/// A transport wrapper that injects one scripted fault per job frame.
pub struct FaultyStream<S: ChaosTransport> {
    inner: S,
    class: FaultClass,
    rng: DetRng,
}

impl<S: ChaosTransport> FaultyStream<S> {
    /// Wraps `inner`, injecting `class` faults scripted from `seed`.
    pub fn new(inner: S, class: FaultClass, seed: u64) -> Self {
        FaultyStream {
            inner,
            class,
            rng: DetRng::new(seed),
        }
    }

    /// The wrapped transport, for direct reads or clean writes.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Pushes one well-formed job `frame` through the fault script.
    /// `stall` is how long the [`FaultClass::Stall`] script sleeps — pick
    /// something comfortably past the server's I/O timeout.
    ///
    /// Scripts treat write errors to a server that already gave up (reset,
    /// broken pipe) as expected, not as failures.
    pub fn send_job(&mut self, frame: &[u8], stall: Duration) -> io::Result<Delivery> {
        assert!(frame.len() >= 2, "a framed job is at least prefix + body");
        match self.class {
            FaultClass::ShortOps => {
                let mut rest = frame;
                while !rest.is_empty() {
                    let n = (1 + self.rng.below(7) as usize).min(rest.len());
                    self.inner.write_all(&rest[..n])?;
                    self.inner.flush()?;
                    rest = &rest[n..];
                }
                Ok(Delivery::Intact)
            }
            FaultClass::Truncate => {
                let keep = 1 + self.rng.below(frame.len() as u64 - 1) as usize;
                self.inner.write_all(&frame[..keep])?;
                self.inner.flush()?;
                Ok(Delivery::Corrupted)
            }
            FaultClass::Disconnect => {
                // Cut inside the body (past the length prefix) so the
                // server is mid-frame when the write side vanishes.
                let body_at = prefix_end(frame) + 1;
                let body_len = frame.len() - body_at;
                let keep = body_at + 1 + self.rng.below(body_len.max(2) as u64 - 1) as usize;
                let keep = keep.min(frame.len() - 1);
                self.inner.write_all(&frame[..keep])?;
                self.inner.flush()?;
                self.inner.close_write()?;
                Ok(Delivery::Corrupted)
            }
            FaultClass::LyingLength => {
                let nl = prefix_end(frame);
                let body = &frame[nl + 1..];
                let declared = if self.rng.chance() || body.len() < 2 {
                    // Lie high: promise bytes that never come.
                    body.len() as u64 + 1 + self.rng.below(4096)
                } else {
                    // Lie low: the tail of the real body reads as garbage
                    // after a frame that cuts the raster short.
                    1 + self.rng.below(body.len() as u64 - 1)
                };
                let mut lying = format!("{declared}\n").into_bytes();
                lying.extend_from_slice(body);
                self.inner.write_all(&lying)?;
                self.inner.flush()?;
                Ok(Delivery::Corrupted)
            }
            FaultClass::Stall => {
                let half = frame.len() / 2;
                self.inner.write_all(&frame[..half])?;
                self.inner.flush()?;
                std::thread::sleep(stall);
                // The server has usually reset the connection by now;
                // either way the frame arrived late and broken.
                let _ = self.inner.write_all(&frame[half..]);
                let _ = self.inner.flush();
                Ok(Delivery::Corrupted)
            }
            FaultClass::Garbage => {
                let n = 1 + self.rng.below(200) as usize;
                let junk: Vec<u8> = (0..n).map(|_| self.rng.next_u64() as u8).collect();
                // Never start with a digit: garbage must not accidentally
                // parse as a plausible length prefix that stalls the read.
                let mut junk = junk;
                if junk[0].is_ascii_digit() {
                    junk[0] = b'!';
                }
                self.inner.write_all(&junk)?;
                self.inner.flush()?;
                Ok(Delivery::Corrupted)
            }
            FaultClass::TruncatedBody => {
                // Cut inside the raster (past the P4 dims line) and rewrite
                // the length prefix to match, so the frame clears admission
                // and fails only when the raster is walked.
                let body = &frame[prefix_end(frame) + 1..];
                let header_end = body
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .nth(1)
                    .map(|(i, _)| i)
                    .expect("a P4 body has a dims line");
                let raster_len = body.len() - header_end - 1;
                let keep = header_end + 1 + self.rng.below(raster_len.max(1) as u64) as usize;
                let keep = keep.min(body.len() - 1);
                let mut cut = format!("{keep}\n").into_bytes();
                cut.extend_from_slice(&body[..keep]);
                self.inner.write_all(&cut)?;
                self.inner.flush()?;
                Ok(Delivery::Corrupted)
            }
            FaultClass::StreamAbort => {
                // The whole job arrives intact, then the write side goes
                // away; the read-side abandonment happens separately via
                // `abandon_after_reading`.
                self.inner.write_all(frame)?;
                self.inner.flush()?;
                self.inner.close_write()?;
                Ok(Delivery::Intact)
            }
        }
    }

    /// Reads a seeded number of response bytes (at most `cap`), then drops
    /// the transport entirely — a client that vanishes mid-response.
    /// Returns how many bytes were actually read before the abandonment
    /// (fewer than planned if the server finished or closed first).
    pub fn abandon_after_reading(mut self, cap: u64) -> io::Result<usize> {
        assert!(cap > 0, "abandon_after_reading(0)");
        let want = 1 + self.rng.below(cap) as usize;
        let mut buf = [0u8; 1024];
        let mut total = 0;
        while total < want {
            let n = self.inner.read(&mut buf[..(want - total).min(1024)])?;
            if n == 0 {
                break;
            }
            total += n;
        }
        Ok(total)
    }
}

impl<S: ChaosTransport> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

/// Index of the `\n` terminating the decimal length prefix.
fn prefix_end(frame: &[u8]) -> usize {
    frame
        .iter()
        .position(|&b| b == b'\n')
        .expect("a framed job has a length prefix")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory transport capturing everything a script writes.
    #[derive(Default)]
    struct MemStream {
        written: Vec<u8>,
        write_closed: bool,
    }

    impl Read for MemStream {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Ok(0)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl ChaosTransport for MemStream {
        fn close_write(&mut self) -> io::Result<()> {
            self.write_closed = true;
            Ok(())
        }
    }

    fn sample_frame() -> Vec<u8> {
        let body = b"P4\n8 2\n\x55\xaa";
        let mut frame = format!("{}\n", body.len()).into_bytes();
        frame.extend_from_slice(body);
        frame
    }

    fn run(class: FaultClass, seed: u64) -> (MemStream, Delivery) {
        let mut fs = FaultyStream::new(MemStream::default(), class, seed);
        let d = fs
            .send_job(&sample_frame(), Duration::from_millis(1))
            .unwrap();
        (fs.into_inner(), d)
    }

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = DetRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = DetRng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn scripts_replay_bit_for_bit_from_their_seed() {
        for class in FaultClass::ALL {
            let (a, da) = run(class, 7);
            let (b, db) = run(class, 7);
            assert_eq!(a.written, b.written, "{class} not deterministic");
            assert_eq!(da, db);
        }
    }

    #[test]
    fn short_ops_delivers_the_frame_intact() {
        let (mem, delivery) = run(FaultClass::ShortOps, 3);
        assert_eq!(delivery, Delivery::Intact);
        assert_eq!(mem.written, sample_frame());
        assert!(!mem.write_closed);
    }

    #[test]
    fn truncate_sends_a_strict_prefix() {
        for seed in 0..32 {
            let (mem, delivery) = run(FaultClass::Truncate, seed);
            assert_eq!(delivery, Delivery::Corrupted);
            let frame = sample_frame();
            assert!(!mem.written.is_empty() && mem.written.len() < frame.len());
            assert_eq!(mem.written, frame[..mem.written.len()]);
        }
    }

    #[test]
    fn disconnect_cuts_inside_the_body_and_half_closes() {
        for seed in 0..32 {
            let (mem, _) = run(FaultClass::Disconnect, seed);
            assert!(mem.write_closed);
            let frame = sample_frame();
            let body_at = frame.iter().position(|&b| b == b'\n').unwrap() + 1;
            assert!(mem.written.len() > body_at, "cut is past the prefix");
            assert!(mem.written.len() < frame.len(), "cut is mid-body");
        }
    }

    #[test]
    fn lying_length_keeps_the_body_but_mangles_the_prefix() {
        let frame = sample_frame();
        let nl = frame.iter().position(|&b| b == b'\n').unwrap();
        let real = frame.len() - nl - 1;
        for seed in 0..32 {
            let (mem, _) = run(FaultClass::LyingLength, seed);
            let lied_nl = mem.written.iter().position(|&b| b == b'\n').unwrap();
            let declared: usize = std::str::from_utf8(&mem.written[..lied_nl])
                .unwrap()
                .parse()
                .unwrap();
            assert_ne!(declared, real, "the prefix must lie (seed {seed})");
            assert_eq!(&mem.written[lied_nl + 1..], &frame[nl + 1..]);
        }
    }

    #[test]
    fn garbage_never_opens_with_a_digit() {
        for seed in 0..64 {
            let (mem, _) = run(FaultClass::Garbage, seed);
            assert!(!mem.written[0].is_ascii_digit());
        }
    }

    #[test]
    fn truncated_body_stays_internally_consistent() {
        // The defining property: the rewritten prefix matches the cut body
        // exactly, so the framing layer sees nothing wrong.
        let frame = sample_frame();
        let nl = frame.iter().position(|&b| b == b'\n').unwrap();
        for seed in 0..32 {
            let (mem, delivery) = run(FaultClass::TruncatedBody, seed);
            assert_eq!(delivery, Delivery::Corrupted);
            let lied_nl = mem.written.iter().position(|&b| b == b'\n').unwrap();
            let declared: usize = std::str::from_utf8(&mem.written[..lied_nl])
                .unwrap()
                .parse()
                .unwrap();
            let body = &mem.written[lied_nl + 1..];
            assert_eq!(declared, body.len(), "prefix must match the cut body");
            assert!(body.len() < frame.len() - nl - 1, "body must be cut");
            assert!(body.starts_with(b"P4\n"), "the PBM header survives");
        }
    }

    #[test]
    fn stream_abort_delivers_intact_then_half_closes() {
        for seed in 0..8 {
            let (mem, delivery) = run(FaultClass::StreamAbort, seed);
            assert_eq!(delivery, Delivery::Intact);
            assert_eq!(mem.written, sample_frame());
            assert!(mem.write_closed, "the write side must vanish");
        }
    }

    #[test]
    fn abandon_after_reading_caps_and_reports_the_bytes_read() {
        // MemStream reads EOF immediately, so the abandonment reads zero
        // bytes; the point here is the seeded cap arithmetic and that the
        // call consumes the wrapper without touching the write side.
        let fs = FaultyStream::new(MemStream::default(), FaultClass::StreamAbort, 11);
        assert_eq!(fs.abandon_after_reading(64).unwrap(), 0);
    }
}
