//! A minimal raw-libc `poll(2)` shim for the readiness-based connection
//! core — the same no-crates.io discipline as the raw `signal(2)` binding
//! in the CLI: declare exactly the symbols used, nothing vendored.
//!
//! Only what the server's event loop needs is bound: `poll` itself (with
//! EINTR retry and deadline-aware timeout recomputation) and the `fcntl`
//! calls that flip a descriptor nonblocking. The constants are the
//! Linux/glibc values; they match every libc this workspace targets.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable data (or a connection to accept) is available.
pub const POLLIN: i16 = 0x001;
/// Writing would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One slot of a `poll(2)` set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch (< 0 slots are ignored by the kernel).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A slot watching `fd` for `events`, `revents` cleared.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any readiness (or error/hangup — both demand attention) was
    /// reported on this slot.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: core::ffi::c_int) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

/// Blocks until at least one slot is ready or `timeout` elapses (`None` =
/// forever). Returns the number of ready slots (0 on timeout). `EINTR` is
/// retried with the remaining time, so callers never see spurious wakeups
/// from signals.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let deadline = timeout.map(|t| std::time::Instant::now() + t);
    loop {
        let millis: i32 = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                // Round up so a 0 < left < 1ms wait does not spin.
                left.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32
            }
        };
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                return Ok(0);
            }
        }
    }
}

/// Flips `fd` into nonblocking mode (used for the wake-pipe ends; sockets
/// go through `TcpStream::set_nonblocking`).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if flags & O_NONBLOCK != 0 {
        return Ok(());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    #[test]
    fn a_timeout_with_nothing_ready_returns_zero() {
        let (reader, _writer) = io::pipe().unwrap();
        let mut fds = [PollFd::new(reader.as_raw_fd(), POLLIN)];
        let start = std::time::Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(!fds[0].ready());
    }

    #[test]
    fn a_written_pipe_reports_readable() {
        let (reader, mut writer) = io::pipe().unwrap();
        writer.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(reader.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents & POLLIN != 0);
    }

    #[test]
    fn a_closed_writer_reports_hangup_or_readable_eof() {
        let (mut reader, writer) = io::pipe().unwrap();
        drop(writer);
        let mut fds = [PollFd::new(reader.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready());
        let mut buf = [0u8; 1];
        assert_eq!(reader.read(&mut buf).unwrap(), 0, "EOF behind the event");
    }

    #[test]
    fn nonblocking_mode_turns_an_empty_read_into_would_block() {
        let (mut reader, _writer) = io::pipe().unwrap();
        set_nonblocking(reader.as_raw_fd()).unwrap();
        // Idempotent.
        set_nonblocking(reader.as_raw_fd()).unwrap();
        let mut buf = [0u8; 1];
        let err = reader.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
