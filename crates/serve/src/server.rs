//! `slapd`: the fault-tolerant labeling server.
//!
//! The design is a small set of independent defenses layered in front of
//! the warm labeling engines:
//!
//! ```text
//!  poll loop ──► connection state machines ──► bounded queue ──► workers
//!     │  accept + readiness   │  parse + guards     │  backpressure  │ warm
//!     │  (idle conns cost     │  (typed ERR early)  │  + byte budget │ engine
//!     ▼   no thread)          ▼                     ▼               ▼ pools
//!  nonblocking I/O        typed ERR           queue-full ERR   panic ⇒ rebuild
//! ```
//!
//! * **Readiness core**: one poll thread (raw `poll(2)` via [`crate::poll`])
//!   owns the listener and every connection as a nonblocking state machine
//!   (greeting → frame prefix → frame body → job in flight). An idle
//!   keep-alive connection is one `pollfd` slot, not a parked thread; the
//!   whole server runs on `1 poll + workers + 1 watchdog` threads.
//! * **Admission guards** run before any allocation proportional to the
//!   job: dimension caps, `rows × cols` overflow, pixel budget.
//! * **Response modes**: a protocol-v2 hello negotiates `grid` (v1 label
//!   grids, the default — v1 clients never send a hello and are served
//!   unchanged) or `stream` (retired-component feature records). Stream
//!   jobs above `max_pixels` are not rejected: they route through the
//!   out-of-core band scheduler at `O(cols + live)` carried state, with
//!   `max_stream_pixels` as the hard cap.
//! * **Backpressure** is the bounded queue — when it is full the client
//!   gets a typed `queue-full` rejection immediately; the server never
//!   buffers unbounded work.
//! * **Deadlines** are wall-clock per job: the watchdog sweeps expired
//!   queued jobs, workers refuse to start expired work, and the poll loop
//!   stops waiting past the deadline.
//! * **Panic isolation**: a panicking engine is caught with
//!   `catch_unwind`, the job answers `ERR panic`, the worker rebuilds its
//!   sessions, and the server keeps serving. A stream job whose buffered
//!   body turns out truncated fails with `ERR bad-frame` and rebuilds
//!   nothing.
//! * **Graceful drain**: [`Server::shutdown`] stops accepting, rejects new
//!   jobs with `shutdown`, finishes everything in flight, and returns the
//!   final stats snapshot.

use crate::poll::{poll_fds, set_nonblocking, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};
use crate::protocol::{self, ResponseMode, WireError};
use crate::queue::{BoundedQueue, PushRejection};
use crate::wire::PrefixParser;
use slap_cc::stream::label_stream;
use slap_cc::{Connectivity, EngineKind, LabelEngine};
use slap_image::pbm::{PbmError, PbmRowReader, MAX_FRAME_BYTES};
use slap_image::stream::RowSource;
use slap_image::{Bitmap, LabelGrid, OutOfCoreLabeler, RetiredComponent};
use std::io::{self, PipeReader, PipeWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A pre-compute inspection hook, called with each admitted grid-mode job's
/// bitmap on the worker thread before labeling (stream-mode jobs never
/// materialize a bitmap, so the hook does not see them). Tests use it to
/// inject panics and delays; production leaves it `None`.
pub type JobHook = Arc<dyn Fn(&Bitmap) + Send + Sync>;

/// Tunable limits and behavior for a [`Server`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Neighbor convention applied to every job.
    pub conn: Connectivity,
    /// Worker threads, each holding warm engine sessions.
    pub workers: usize,
    /// Maximum queued jobs (items) before `queue-full`.
    pub queue_cap: usize,
    /// Maximum bytes of queued job state (bitmaps + reserved label output)
    /// before `queue-full` — the memory budget.
    pub queue_budget_bytes: usize,
    /// Maximum rows and maximum cols per job.
    pub max_dim: usize,
    /// Maximum `rows × cols` for a whole-grid response; in stream mode the
    /// *routing threshold* instead — larger frames go out-of-core.
    pub max_pixels: u64,
    /// Hard pixel cap for stream-mode jobs (the out-of-core path).
    pub max_stream_pixels: u64,
    /// Rows per band for the out-of-core scheduler (clamped so a band
    /// never exceeds the `u32` position space at `max_dim` width).
    pub ooc_band_rows: usize,
    /// Wall-clock budget per job, from admission to response.
    pub deadline: Duration,
    /// Socket read/write timeout — how long a client may stall mid-frame.
    pub io_timeout: Duration,
    /// Jobs at or above this many pixels run on the parallel engine;
    /// smaller jobs take the fast sequential engine.
    pub parallel_threshold_pixels: u64,
    /// Threads handed to the parallel engine session.
    pub engine_threads: usize,
    /// Optional pre-compute hook (see [`JobHook`]).
    pub job_hook: Option<JobHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            conn: Connectivity::Four,
            workers: 2,
            queue_cap: 64,
            queue_budget_bytes: 256 << 20,
            max_dim: 1 << 15,
            max_pixels: 1 << 26,
            max_stream_pixels: 1 << 30,
            ooc_band_rows: 128,
            deadline: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            parallel_threshold_pixels: 1 << 21,
            engine_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            job_hook: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("conn", &self.conn)
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .field("queue_budget_bytes", &self.queue_budget_bytes)
            .field("max_dim", &self.max_dim)
            .field("max_pixels", &self.max_pixels)
            .field("max_stream_pixels", &self.max_stream_pixels)
            .field("ooc_band_rows", &self.ooc_band_rows)
            .field("deadline", &self.deadline)
            .field("io_timeout", &self.io_timeout)
            .field("parallel_threshold_pixels", &self.parallel_threshold_pixels)
            .field("engine_threads", &self.engine_threads)
            .field("job_hook", &self.job_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

macro_rules! stats_fields {
    ($($(#[$doc:meta])* $name:ident,)*) => {
        /// Live server counters (lock-free, updated by every thread).
        #[derive(Debug, Default)]
        pub struct ServerStats {
            $($(#[$doc])* pub $name: std::sync::atomic::AtomicU64,)*
        }

        /// A point-in-time copy of [`ServerStats`] plus queue high-water
        /// marks.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
            /// Most jobs queued at once.
            pub peak_queue_depth: u64,
            /// Most queued job bytes held at once.
            pub peak_queue_bytes: u64,
        }

        impl ServerStats {
            fn snapshot(&self, peaks: (usize, usize)) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                    peak_queue_depth: peaks.0 as u64,
                    peak_queue_bytes: peaks.1 as u64,
                }
            }
        }
    };
}

stats_fields! {
    /// Connections accepted.
    connections,
    /// Jobs labeled and answered (`OK` or `STREAM`), counted once the
    /// response is fully flushed to the socket.
    jobs_ok,
    /// Stream-mode jobs answered with feature records (a subset of
    /// `jobs_ok`).
    jobs_streamed,
    /// Stream-mode jobs routed through the out-of-core band scheduler
    /// because they exceeded `max_pixels` (a subset of `jobs_streamed`).
    jobs_ooc,
    /// High-water mark of per-job carried state on the streaming paths
    /// (frontier runs for in-core streams, carried boundary runs
    /// out-of-core) — the measurable `O(cols + live)` claim.
    peak_carried_runs,
    /// `bad-frame` rejections (parse failures, garbage, truncation).
    bad_frame,
    /// `too-large` rejections (dimension or pixel budget).
    too_large,
    /// `overflow` rejections (`rows × cols` overflows label space).
    overflow,
    /// `queue-full` rejections (backpressure).
    queue_full,
    /// `deadline` rejections (expired in queue, stalled ingest, or slow
    /// compute).
    deadline_expired,
    /// Jobs that panicked inside the engine (each also rebuilds a worker).
    panics,
    /// `shutdown` rejections during drain.
    shutdown_rejects,
    /// Connections dropped on raw I/O errors (reset, broken pipe, stall).
    io_errors,
    /// Worker engine pools rebuilt after a panic.
    sessions_rebuilt,
}

impl ServerStats {
    fn count_reject(&self, code: WireError) {
        let counter = match code {
            WireError::BadFrame => &self.bad_frame,
            WireError::TooLarge => &self.too_large,
            WireError::Overflow => &self.overflow,
            WireError::QueueFull => &self.queue_full,
            WireError::Deadline => &self.deadline_expired,
            WireError::Panic => &self.panics,
            WireError::Shutdown => &self.shutdown_rejects,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total typed rejections of every kind.
    pub fn rejected(&self) -> u64 {
        self.bad_frame
            + self.too_large
            + self.overflow
            + self.queue_full
            + self.deadline_expired
            + self.panics
            + self.shutdown_rejects
    }
}

/// Wakes the poll loop from any thread by writing one byte down a
/// self-pipe whose read end sits in the poll set.
struct Waker {
    pipe: Mutex<PipeWriter>,
}

impl Waker {
    fn wake(&self) {
        let mut w = self.pipe.lock().unwrap_or_else(|e| e.into_inner());
        // A full pipe already guarantees a pending wakeup; WouldBlock (and
        // any other failure) is safely ignorable.
        let _ = w.write(&[1]);
    }
}

/// The work a job carries to a worker: a materialized bitmap for grid
/// responses, or the raw framed-PBM body for stream responses (never
/// expanded to pixels on the server).
enum Payload {
    Grid(Bitmap),
    Stream {
        /// The complete frame body (PBM header + raster), parsed row by
        /// row on the worker.
        body: Vec<u8>,
        /// Route through the out-of-core band scheduler (the frame is
        /// above `max_pixels`).
        ooc: bool,
    },
}

/// One admitted job traveling from the poll loop to a worker.
struct Job {
    payload: Payload,
    deadline: Instant,
    resp: Responder,
}

enum Outcome {
    Labeled {
        components: usize,
        labels: Vec<u32>,
    },
    Streamed {
        records: Vec<RetiredComponent>,
        ooc: bool,
    },
    /// The job failed inside the worker for a reason that is the job's
    /// fault (e.g. a truncated raster discovered while streaming the
    /// buffered body). Answered as a typed `ERR`; no pool is rebuilt.
    Failed {
        code: WireError,
        detail: String,
    },
    Panicked,
    Expired,
}

/// A job's reply path: completions are posted to the poll loop's channel
/// and the loop is woken. `seq` lets the loop drop stale completions for
/// jobs it already timed out.
struct Responder {
    tx: mpsc::Sender<Completion>,
    token: u64,
    seq: u64,
    waker: Arc<Waker>,
}

impl Responder {
    fn send(&self, outcome: Outcome) {
        let _ = self.tx.send(Completion {
            token: self.token,
            seq: self.seq,
            outcome,
        });
        self.waker.wake();
    }
}

struct Completion {
    token: u64,
    seq: u64,
    outcome: Outcome,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    stats: ServerStats,
    draining: AtomicBool,
    stopped: AtomicBool,
    waker: Arc<Waker>,
}

/// Where a connection's state machine is between bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Nothing decided yet: the first byte picks v2 (hello, `H`) or v1
    /// (frame prefix, digit/whitespace).
    Greeting,
    /// Accumulating a frame length prefix (possibly zero digits so far).
    Prefix,
    /// Accumulating a frame body of known length.
    Body,
    /// A job is queued or running; input is stashed until it answers.
    InFlight,
}

/// Deferred success counters, applied when the response bytes have fully
/// reached the socket (so drain-time counts match what clients observed).
enum Credit {
    Grid,
    Stream { ooc: bool },
}

/// One nonblocking connection owned by the poll loop.
struct Conn {
    sock: TcpStream,
    token: u64,
    mode: ResponseMode,
    phase: Phase,
    prefix: PrefixParser,
    /// Partial hello line while `Greeting` decides v2.
    greet: Vec<u8>,
    /// Current frame body, filled to `body_len`.
    body: Vec<u8>,
    body_len: usize,
    /// Bytes received while a job was in flight, replayed afterward.
    stash: Vec<u8>,
    /// Pending response bytes and the flush cursor into them.
    out: Vec<u8>,
    out_at: usize,
    flush_credit: Vec<Credit>,
    /// Armed while mid-frame: the client must keep bytes coming.
    io_deadline: Option<Instant>,
    /// Armed while a job is in flight: the worker must answer by then.
    job_deadline: Option<Instant>,
    /// Armed at drain start as a backstop for unflushable connections.
    drain_deadline: Option<Instant>,
    seq: u64,
    job_rows: usize,
    job_cols: usize,
    read_eof: bool,
    close_after_flush: bool,
}

impl Conn {
    fn new(sock: TcpStream, token: u64) -> Conn {
        Conn {
            sock,
            token,
            mode: ResponseMode::Grid,
            phase: Phase::Greeting,
            prefix: PrefixParser::new(MAX_FRAME_BYTES),
            greet: Vec::new(),
            body: Vec::new(),
            body_len: 0,
            stash: Vec::new(),
            out: Vec::new(),
            out_at: 0,
            flush_credit: Vec::new(),
            io_deadline: None,
            job_deadline: None,
            drain_deadline: None,
            seq: 0,
            job_rows: 0,
            job_cols: 0,
            read_eof: false,
            close_after_flush: false,
        }
    }

    /// Whether the client is partway through sending a frame (or hello),
    /// which is when the stall deadline applies.
    fn mid_frame(&self) -> bool {
        match self.phase {
            Phase::Greeting => !self.greet.is_empty(),
            Phase::Prefix => self.prefix.declared().is_some(),
            Phase::Body => true,
            Phase::InFlight => false,
        }
    }

    fn has_output(&self) -> bool {
        self.out_at < self.out.len()
    }
}

/// The listening service. Dropping a `Server` without calling
/// [`Server::shutdown`] leaks its threads; shut it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    poll: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the poll loop, worker pool, and watchdog.
    /// Bind to port 0 for an ephemeral port ([`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        assert!(cfg.workers > 0, "a server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = io::pipe()?;
        set_nonblocking(wake_rx.as_raw_fd())?;
        set_nonblocking(wake_tx.as_raw_fd())?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_cap, cfg.queue_budget_bytes),
            cfg,
            stats: ServerStats::default(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            waker: Arc::new(Waker {
                pipe: Mutex::new(wake_tx),
            }),
        });

        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("slapd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let watchdog = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("slapd-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog")
        };

        let poll = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("slapd-poll".into())
                .spawn(move || poll_loop(&shared, listener, wake_rx))
                .expect("spawn poll loop")
        };

        Ok(Server {
            addr,
            shared,
            poll: Some(poll),
            workers,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live peek at the counters; the authoritative final snapshot is
    /// the return value of [`Server::shutdown`].
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.queue.peaks())
    }

    /// Graceful drain: stop accepting connections, answer `shutdown` to
    /// new jobs on live connections, finish every job already admitted,
    /// then stop all threads and return the final stats.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        // The poll loop closes the listener, finishes in-flight responses
        // (workers are still running), flushes, and exits.
        if let Some(h) = self.poll.take() {
            let _ = h.join();
        }
        // Now drain the queue: workers consume the backlog and exit.
        self.shared.queue.drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog.take() {
            h.thread().unpark();
            let _ = h.join();
        }
        self.shared.stats.snapshot(self.shared.queue.peaks())
    }
}

/// Writes a typed rejection into the connection's output buffer and counts
/// it immediately (matching the historical thread-per-conn accounting for
/// rejections; successes are deferred to flush time instead).
fn reject_to(shared: &Shared, conn: &mut Conn, code: WireError, detail: &str) {
    shared.stats.count_reject(code);
    let _ = protocol::write_err(&mut conn.out, code, detail);
}

/// Feeds received bytes through a connection's state machine: greeting
/// detection, prefix parsing, body accumulation, admission. Stops (and
/// stashes the remainder) when a job goes in flight; errors inside a fully
/// buffered frame body answer `ERR` and keep the stream synchronized,
/// while prefix/hello errors desync and close after flushing.
fn ingest(shared: &Arc<Shared>, done_tx: &mpsc::Sender<Completion>, conn: &mut Conn, bytes: &[u8]) {
    let mut i = 0;
    while i < bytes.len() {
        if conn.close_after_flush {
            return; // discard input after a fatal protocol error
        }
        match conn.phase {
            Phase::InFlight => {
                conn.stash.extend_from_slice(&bytes[i..]);
                return;
            }
            Phase::Greeting => {
                if conn.greet.is_empty() && bytes[i] != b'H' {
                    // v1 client: no hello, straight into frame framing.
                    conn.phase = Phase::Prefix;
                    continue;
                }
                let b = bytes[i];
                i += 1;
                if b == b'\n' {
                    let granted = std::str::from_utf8(&conn.greet)
                        .ok()
                        .and_then(protocol::parse_hello)
                        .map(|(_, mode)| mode);
                    match granted {
                        Some(mode) => {
                            conn.mode = mode;
                            conn.phase = Phase::Prefix;
                            conn.greet.clear();
                            let _ = protocol::write_hello(&mut conn.out, mode);
                        }
                        None => {
                            reject_to(shared, conn, WireError::BadFrame, "bad hello line");
                            conn.close_after_flush = true;
                            return;
                        }
                    }
                } else if conn.greet.len() >= protocol::MAX_HEADER_BYTES {
                    reject_to(shared, conn, WireError::BadFrame, "hello line too long");
                    conn.close_after_flush = true;
                    return;
                } else {
                    conn.greet.push(b);
                }
            }
            Phase::Prefix => {
                let b = bytes[i];
                i += 1;
                match conn.prefix.step(b) {
                    Ok(None) => {}
                    Ok(Some(len)) => {
                        conn.body.clear();
                        conn.body_len = len;
                        conn.phase = Phase::Body;
                        if len == 0 {
                            // An empty frame is a complete (vacuous) body:
                            // admit now so it fails header parsing cleanly.
                            admit(shared, done_tx, conn);
                        }
                    }
                    Err(e) => {
                        // Prefix corruption desyncs the byte stream: answer
                        // and close, exactly like the framed reader did.
                        let pe = PbmError::from(e);
                        reject_to(shared, conn, WireError::from_pbm(&pe), &pe.to_string());
                        conn.close_after_flush = true;
                        return;
                    }
                }
            }
            Phase::Body => {
                let want = conn.body_len - conn.body.len();
                let take = want.min(bytes.len() - i);
                conn.body.extend_from_slice(&bytes[i..i + take]);
                i += take;
                if conn.body.len() == conn.body_len {
                    conn.prefix.reset();
                    admit(shared, done_tx, conn);
                }
            }
        }
    }
}

/// Admits the completed frame in `conn.body`: guards, payload build, queue
/// push. Leaves the connection in `InFlight` on success or back in
/// `Prefix` (with a typed `ERR` queued) on rejection.
fn admit(shared: &Arc<Shared>, done_tx: &mpsc::Sender<Completion>, conn: &mut Conn) {
    let cfg = &shared.cfg;
    conn.phase = Phase::Prefix;
    conn.io_deadline = None;

    // Header parse over the buffered body. Failures here never desync the
    // framing — answer ERR and await the next frame.
    let (rows, cols) = match PbmRowReader::new(&conn.body[..]) {
        Ok(rd) => (rd.rows(), rd.cols()),
        Err(e) => {
            let (code, detail) = classify_job_error(&e);
            reject_to(shared, conn, code, &detail);
            return;
        }
    };
    // Admission guards, cheapest first, all before any job-sized
    // allocation.
    if rows > cfg.max_dim || cols > cfg.max_dim {
        let detail = format!("{rows}x{cols} exceeds max dimension {}", cfg.max_dim);
        reject_to(shared, conn, WireError::TooLarge, &detail);
        return;
    }
    // max_dim caps each side well below 2^32, so this product fits in u64.
    let pixels = rows as u64 * cols as u64;
    match conn.mode {
        ResponseMode::Grid => {
            if pixels >= u64::from(u32::MAX) {
                let detail = format!("{rows}x{cols} overflows the u32 label space");
                reject_to(shared, conn, WireError::Overflow, &detail);
                return;
            }
            if pixels > cfg.max_pixels {
                let detail = format!(
                    "{pixels} pixels exceeds grid budget {}; retry in stream mode \
                     (out-of-core, hard cap {} pixels)",
                    cfg.max_pixels, cfg.max_stream_pixels
                );
                reject_to(shared, conn, WireError::TooLarge, &detail);
                return;
            }
        }
        ResponseMode::Stream => {
            if pixels > cfg.max_stream_pixels {
                let detail = format!(
                    "{pixels} pixels exceeds stream budget {}",
                    cfg.max_stream_pixels
                );
                reject_to(shared, conn, WireError::TooLarge, &detail);
                return;
            }
        }
    }
    if shared.draining.load(Ordering::SeqCst) {
        reject_to(shared, conn, WireError::Shutdown, "server is draining");
        return;
    }

    let (payload, weight) = match conn.mode {
        ResponseMode::Grid => {
            // Materialize the bitmap from the buffered frame body. Failures
            // here (truncated raster, bad pixel bytes) do not desync.
            let mut rd = PbmRowReader::new(&conn.body[..]).expect("header parsed above");
            let mut img = Bitmap::new(rows, cols);
            let mut row_words = Vec::new();
            for r in 0..rows {
                match rd.next_row(&mut row_words) {
                    Ok(true) => img.set_row_words(r, &row_words),
                    Ok(false) => {
                        reject_to(shared, conn, WireError::BadFrame, "frame body ended early");
                        return;
                    }
                    Err(e) => {
                        let detail = PbmError::from_io(&e)
                            .map(|pe| pe.to_string())
                            .unwrap_or_else(|| e.to_string());
                        reject_to(shared, conn, WireError::BadFrame, &detail);
                        return;
                    }
                }
            }
            // Weight = bitmap words + the label grid the worker hands back.
            let weight = img.as_words().len() * 8 + (pixels as usize) * 4;
            (Payload::Grid(img), weight)
        }
        ResponseMode::Stream => {
            // The raster is validated by the worker as it streams the rows;
            // the server never holds more than the compressed body.
            let body = std::mem::take(&mut conn.body);
            let weight = body.len() + 64;
            (
                Payload::Stream {
                    body,
                    ooc: pixels > cfg.max_pixels,
                },
                weight,
            )
        }
    };

    conn.seq += 1;
    let job = Job {
        payload,
        deadline: Instant::now() + cfg.deadline,
        resp: Responder {
            tx: done_tx.clone(),
            token: conn.token,
            seq: conn.seq,
            waker: Arc::clone(&shared.waker),
        },
    };
    match shared.queue.try_push(job, weight) {
        Err((_, PushRejection::Full)) => {
            reject_to(
                shared,
                conn,
                WireError::QueueFull,
                "job queue is full; retry",
            );
        }
        Err((_, PushRejection::Draining)) => {
            reject_to(shared, conn, WireError::Shutdown, "server is draining");
        }
        Ok(()) => {
            conn.phase = Phase::InFlight;
            conn.job_rows = rows;
            conn.job_cols = cols;
            // Workers race the deadline; give them a grace period so their
            // own expiry report (or the watchdog's) normally wins.
            let wait = cfg.deadline + cfg.deadline / 4 + Duration::from_millis(50);
            conn.job_deadline = Some(Instant::now() + wait);
        }
    }
}

/// Maps a job-level `io::Error` (header parse, raster streaming) to its
/// wire code and single-line detail.
fn classify_job_error(e: &io::Error) -> (WireError, String) {
    match PbmError::from_io(e) {
        Some(pe) => (WireError::from_pbm(pe), pe.to_string()),
        None => (WireError::BadFrame, e.to_string()),
    }
}

/// Applies a worker completion to its connection: writes the response,
/// then replays any stashed bytes (which may admit the next job).
fn complete(
    shared: &Arc<Shared>,
    done_tx: &mpsc::Sender<Completion>,
    conn: &mut Conn,
    outcome: Outcome,
    scratch: &mut Vec<u8>,
) {
    conn.phase = Phase::Prefix;
    conn.job_deadline = None;
    match outcome {
        Outcome::Labeled { components, labels } => {
            let _ = protocol::write_ok(
                &mut conn.out,
                conn.job_rows,
                conn.job_cols,
                components,
                &labels,
                scratch,
            );
            conn.flush_credit.push(Credit::Grid);
        }
        Outcome::Streamed { records, ooc } => {
            let _ = protocol::write_stream_ok(
                &mut conn.out,
                conn.job_rows,
                conn.job_cols,
                &records,
                scratch,
            );
            conn.flush_credit.push(Credit::Stream { ooc });
        }
        Outcome::Failed { code, detail } => {
            reject_to(shared, conn, code, &detail);
        }
        Outcome::Panicked => {
            // The worker already counted the panic; answer the client.
            let _ = protocol::write_err(
                &mut conn.out,
                WireError::Panic,
                "job panicked; worker rebuilt",
            );
        }
        Outcome::Expired => {
            // The watchdog/worker already counted the expiry.
            let _ = protocol::write_err(
                &mut conn.out,
                WireError::Deadline,
                "job missed its deadline",
            );
        }
    }
    let stash = std::mem::take(&mut conn.stash);
    if !stash.is_empty() {
        ingest(shared, done_tx, conn, &stash);
    }
}

/// Pushes pending output to the socket. Success counters ride the flush:
/// they apply only once every buffered byte (the response included) has
/// reached the socket, so drained stats never exceed what clients could
/// observe. Returns `false` if the connection died.
fn flush_out(shared: &Shared, conn: &mut Conn) -> bool {
    while conn.out_at < conn.out.len() {
        match conn.sock.write(&conn.out[conn.out_at..]) {
            Ok(0) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Ok(n) => conn.out_at += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }
    conn.out.clear();
    conn.out_at = 0;
    for credit in conn.flush_credit.drain(..) {
        shared.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
        if let Credit::Stream { ooc } = credit {
            shared.stats.jobs_streamed.fetch_add(1, Ordering::Relaxed);
            if ooc {
                shared.stats.jobs_ooc.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    true
}

/// Reads everything currently available on the connection. Returns `false`
/// if the connection died on a transport error.
fn read_some(shared: &Arc<Shared>, done_tx: &mpsc::Sender<Completion>, conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if conn.phase == Phase::InFlight || conn.close_after_flush || conn.read_eof {
            break;
        }
        match conn.sock.read(&mut chunk) {
            Ok(0) => {
                conn.read_eof = true;
                break;
            }
            Ok(n) => {
                ingest(shared, done_tx, conn, &chunk[..n]);
                // Stall detection: the clock restarts on every byte of
                // progress and only runs while mid-frame.
                conn.io_deadline = conn
                    .mid_frame()
                    .then(|| Instant::now() + shared.cfg.io_timeout);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }
    if !conn.mid_frame() {
        conn.io_deadline = None;
    }
    flush_out(shared, conn)
}

/// Per-iteration housekeeping for one connection: deadline expiries, EOF
/// resolution, drain closure. Returns `false` when the connection should
/// be removed.
fn sweep_conn(
    shared: &Arc<Shared>,
    done_tx: &mpsc::Sender<Completion>,
    conn: &mut Conn,
    now: Instant,
    draining: bool,
) -> bool {
    // A stalled mid-frame client: same answer and same counter as the old
    // blocking read timeout.
    if let Some(d) = conn.io_deadline {
        if now >= d && conn.mid_frame() {
            shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            let _ = protocol::write_err(
                &mut conn.out,
                WireError::Deadline,
                "stream stalled mid-frame",
            );
            conn.io_deadline = None;
            conn.close_after_flush = true;
        }
    }
    // A worker that never answered within the grace window: reject typed,
    // invalidate the outstanding completion, and keep the connection.
    if conn.phase == Phase::InFlight {
        if let Some(d) = conn.job_deadline {
            if now >= d {
                conn.phase = Phase::Prefix;
                conn.job_deadline = None;
                reject_to(shared, conn, WireError::Deadline, "job missed its deadline");
                // Bump so the eventual completion for the abandoned job is
                // recognized as stale and dropped.
                conn.seq += 1;
                let stash = std::mem::take(&mut conn.stash);
                if !stash.is_empty() {
                    ingest(shared, done_tx, conn, &stash);
                }
            }
        }
    }
    // EOF resolution once nothing is in flight: a clean close between
    // frames, or a truncation error mid-frame (fatal, as it always was).
    if conn.read_eof && conn.phase != Phase::InFlight && !conn.close_after_flush {
        if conn.mid_frame() {
            let declared = if conn.phase == Phase::Body {
                conn.body_len
            } else {
                conn.prefix.declared().unwrap_or(0)
            };
            let missing = declared.saturating_sub(conn.body.len());
            let pe = PbmError::TruncatedFrame { declared, missing };
            reject_to(shared, conn, WireError::BadFrame, &pe.to_string());
        } else if conn.phase == Phase::Greeting && !conn.greet.is_empty() {
            reject_to(shared, conn, WireError::BadFrame, "hello line truncated");
        }
        conn.close_after_flush = true;
    }
    if draining {
        // Backstop: never let an unflushable connection hold the drain.
        let d = *conn
            .drain_deadline
            .get_or_insert(now + shared.cfg.io_timeout);
        if now >= d {
            return false;
        }
        if conn.phase != Phase::InFlight {
            conn.close_after_flush = true;
        }
    }
    if !flush_out(shared, conn) {
        return false;
    }
    if conn.close_after_flush && !conn.has_output() && conn.phase != Phase::InFlight {
        let _ = conn.sock.shutdown(std::net::Shutdown::Both);
        return false;
    }
    true
}

/// The readiness loop: accepts connections, pumps every state machine, and
/// dispatches worker completions — all on one thread.
fn poll_loop(shared: &Arc<Shared>, listener: TcpListener, wake_rx: PipeReader) {
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let mut listener = Some(listener);
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_token: u64 = 0;
    let mut scratch = Vec::new();
    let mut wake_rx = wake_rx;

    loop {
        // Worker completions first: they free connections to make
        // progress and carry response bytes to flush below.
        while let Ok(c) = done_rx.try_recv() {
            if let Some(conn) = conns.iter_mut().find(|k| k.token == c.token) {
                if conn.phase == Phase::InFlight && conn.seq == c.seq {
                    complete(shared, &done_tx, conn, c.outcome, &mut scratch);
                }
            }
        }

        let draining = shared.draining.load(Ordering::SeqCst);
        if draining {
            // Closing the listener refuses new connections immediately.
            listener = None;
        }

        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            if sweep_conn(shared, &done_tx, &mut conns[i], now, draining) {
                i += 1;
            } else {
                conns.swap_remove(i);
            }
        }

        if draining && conns.is_empty() {
            break;
        }

        // Poll set: wake pipe, listener, then one slot per connection.
        let mut fds = vec![PollFd::new(wake_rx.as_raw_fd(), POLLIN)];
        let listener_slot = listener.as_ref().map(|l| {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
            fds.len() - 1
        });
        let conn_base = fds.len();
        for conn in &conns {
            let mut events = 0i16;
            if conn.phase != Phase::InFlight && !conn.read_eof && !conn.close_after_flush {
                events |= POLLIN;
            }
            if conn.has_output() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.sock.as_raw_fd(), events));
        }

        // Sleep until readiness, a wakeup, or the nearest deadline; the
        // 250ms cap bounds any accounting drift without busy-waiting.
        let mut timeout = Duration::from_millis(250);
        for conn in &conns {
            for d in [conn.io_deadline, conn.job_deadline, conn.drain_deadline]
                .into_iter()
                .flatten()
            {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
        }
        let _ = poll_fds(&mut fds, Some(timeout));

        if fds[0].ready() {
            let mut buf = [0u8; 64];
            while matches!(wake_rx.read(&mut buf), Ok(n) if n > 0) {}
        }

        if let (Some(slot), Some(l)) = (listener_slot, listener.as_ref()) {
            if fds[slot].ready() {
                loop {
                    match l.accept() {
                        Ok((sock, _)) => {
                            shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                            if sock.set_nonblocking(true).is_err() {
                                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let _ = sock.set_nodelay(true);
                            next_token += 1;
                            conns.push(Conn::new(sock, next_token));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }

        for (slot, fd) in fds.iter().enumerate().skip(conn_base) {
            if !fd.ready() {
                continue;
            }
            // Tokens are assigned in push order and sweeps preserve no
            // order, so map the slot back to the connection by fd.
            let Some(idx) = conns.iter().position(|c| c.sock.as_raw_fd() == fd.fd) else {
                continue;
            };
            let _ = slot;
            let mut alive = true;
            if fd.revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                alive = read_some(shared, &done_tx, &mut conns[idx]);
            }
            if alive && fd.revents & POLLOUT != 0 {
                alive = flush_out(shared, &mut conns[idx]);
            }
            if !alive {
                conns.swap_remove(idx);
            }
        }
    }
}

thread_local! {
    /// True while this worker thread is inside a job's `catch_unwind`,
    /// so the global panic hook knows to stay quiet: the panic is
    /// contained and reported on the wire, not a server bug.
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_JOB.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// A worker's warm engine pool: fast and parallel whole-grid sessions
/// routed by job size, plus the out-of-core band scheduler session for
/// oversize stream jobs (the `OocSession` pool — one warm labeler per
/// worker, band buffers reused across jobs).
struct Engines {
    fast: Box<dyn LabelEngine>,
    parallel: Box<dyn LabelEngine>,
    ooc: OutOfCoreLabeler,
    grid: LabelGrid,
}

impl Engines {
    fn new(cfg: &ServeConfig) -> Engines {
        // A band must stay inside the u32 position space at the widest
        // admissible frame.
        let band_cap = ((u32::MAX as u64 - 1) / cfg.max_dim.max(1) as u64).max(1) as usize;
        Engines {
            fast: EngineKind::Fast.session(1),
            parallel: EngineKind::Parallel.session(cfg.engine_threads),
            ooc: OutOfCoreLabeler::new(cfg.ooc_band_rows.clamp(1, band_cap), 1),
            grid: LabelGrid::new_background(1, 1),
        }
    }

    fn run(&mut self, cfg: &ServeConfig, img: &Bitmap) -> (usize, Vec<u32>) {
        if let Some(hook) = &cfg.job_hook {
            hook(img);
        }
        let pixels = img.rows() as u64 * img.cols() as u64;
        if self.grid.rows() != img.rows() || self.grid.cols() != img.cols() {
            self.grid = LabelGrid::new_background(img.rows(), img.cols());
        }
        let engine = if pixels >= cfg.parallel_threshold_pixels && cfg.engine_threads > 1 {
            &mut self.parallel
        } else {
            &mut self.fast
        };
        let stats = engine.label_into(img, cfg.conn, &mut self.grid);
        (stats.components, self.grid.as_slice().to_vec())
    }

    /// Labels a stream job straight from its buffered frame body, never
    /// materializing the pixels: `label_stream` for in-core sizes, the
    /// out-of-core band scheduler above `max_pixels`. Returns the records
    /// plus the job's peak carried state (frontier or boundary runs).
    fn run_stream(
        &mut self,
        cfg: &ServeConfig,
        body: &[u8],
        ooc: bool,
    ) -> io::Result<(Vec<RetiredComponent>, u64)> {
        let mut rd = PbmRowReader::new(body)?;
        if ooc {
            let run = self.ooc.label_source(&mut rd, cfg.conn)?;
            Ok((run.components, run.stats.peak_carried_runs as u64))
        } else {
            let run = label_stream(&mut rd, cfg.conn)?;
            Ok((run.components, run.stats.peak_frontier_runs as u64))
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    install_quiet_panic_hook();
    let cfg = &shared.cfg;
    let mut engines = Engines::new(cfg);
    while let Some(job) = shared.queue.pop() {
        if Instant::now() > job.deadline {
            shared
                .stats
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            job.resp.send(Outcome::Expired);
            continue;
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            IN_JOB.with(|f| f.set(true));
            match &job.payload {
                Payload::Grid(img) => {
                    let (components, labels) = engines.run(cfg, img);
                    Outcome::Labeled { components, labels }
                }
                Payload::Stream { body, ooc } => match engines.run_stream(cfg, body, *ooc) {
                    Ok((records, peak)) => {
                        shared
                            .stats
                            .peak_carried_runs
                            .fetch_max(peak, Ordering::Relaxed);
                        Outcome::Streamed { records, ooc: *ooc }
                    }
                    Err(e) => {
                        let (code, detail) = classify_job_error(&e);
                        Outcome::Failed { code, detail }
                    }
                },
            }
        }));
        IN_JOB.with(|f| f.set(false));
        match result {
            Ok(outcome) => job.resp.send(outcome),
            Err(_) => {
                // The engine pool may hold torn state; rebuild it.
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .sessions_rebuilt
                    .fetch_add(1, Ordering::Relaxed);
                engines = Engines::new(cfg);
                job.resp.send(Outcome::Panicked);
            }
        }
    }
}

/// Sweeps the queue for jobs that expired before any worker reached them,
/// so a saturated queue still answers `deadline` promptly instead of
/// making clients wait out their full timeout.
fn watchdog_loop(shared: &Arc<Shared>) {
    let tick = (shared.cfg.deadline / 4).max(Duration::from_millis(5));
    while !shared.stopped.load(Ordering::SeqCst) {
        let now = Instant::now();
        shared.queue.reject_if(
            |job| now > job.deadline,
            |job| {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                job.resp.send(Outcome::Expired);
            },
        );
        thread::park_timeout(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Response, StreamResponse};
    use slap_image::pbm;
    use std::io::BufReader;

    fn test_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            deadline: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        }
    }

    fn checker(rows: usize, cols: usize) -> Bitmap {
        let mut img = Bitmap::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + c) % 2 == 0 {
                    img.set(r, c, true);
                }
            }
        }
        img
    }

    fn roundtrip_one(addr: SocketAddr, img: &Bitmap) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        pbm::write_framed(img, &mut stream).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        protocol::read_response(&mut reader).unwrap().unwrap()
    }

    /// Opens a stream-mode connection: hello sent, echo verified.
    fn stream_conn(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        protocol::write_hello(&mut stream, ResponseMode::Stream).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(
            protocol::read_hello(&mut reader).unwrap(),
            ResponseMode::Stream
        );
        (stream, reader)
    }

    #[test]
    fn labels_match_the_fast_engine_bit_for_bit() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let img = checker(17, 41);
        let resp = roundtrip_one(server.local_addr(), &img);
        let Response::Ok(ok) = resp else {
            panic!("expected OK, got {resp:?}");
        };
        let mut grid = LabelGrid::new_background(17, 41);
        let mut session = EngineKind::Fast.session(1);
        let stats = session.label_into(&img, Connectivity::Four, &mut grid);
        assert_eq!(ok.components, stats.components);
        assert_eq!(ok.labels, grid.as_slice());
        let final_stats = server.shutdown();
        assert_eq!(final_stats.jobs_ok, 1);
        assert_eq!(final_stats.rejected(), 0);
    }

    #[test]
    fn oversized_dims_get_typed_rejections_without_allocation() {
        let cfg = ServeConfig {
            max_dim: 64,
            max_pixels: 1 << 10,
            ..test_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).unwrap();
        let addr = server.local_addr();

        // Over max_dim: reject before reading the raster.
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = b"P4\n100000 2\n".to_vec();
        stream
            .write_all(format!("{}\n", body.len()).as_bytes())
            .unwrap();
        stream.write_all(&body).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        match protocol::read_response(&mut reader).unwrap().unwrap() {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::TooLarge),
            other => panic!("expected too-large, got {other:?}"),
        }
        // Over max_pixels but under max_dim: the detail names the cap and
        // the stream-mode escape hatch.
        let body = b"P4\n64 64\n".to_vec();
        stream
            .write_all(format!("{}\n", body.len()).as_bytes())
            .unwrap();
        stream.write_all(&body).unwrap();
        match protocol::read_response(&mut reader).unwrap().unwrap() {
            Response::Rejected { code, detail } => {
                assert_eq!(code, WireError::TooLarge);
                assert!(detail.contains("1024"), "cap in detail: {detail:?}");
                assert!(detail.contains("stream mode"), "retry hint: {detail:?}");
            }
            other => panic!("expected too-large, got {other:?}"),
        }
        // The connection is still healthy after both rejections.
        let img = checker(8, 8);
        pbm::write_framed(&img, &mut stream).unwrap();
        assert!(matches!(
            protocol::read_response(&mut reader).unwrap().unwrap(),
            Response::Ok(_)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.too_large, 2);
        assert_eq!(stats.jobs_ok, 1);
    }

    #[test]
    fn a_panicking_job_is_isolated_and_the_server_keeps_serving() {
        let cfg = ServeConfig {
            job_hook: Some(Arc::new(|img: &Bitmap| {
                assert!(img.rows() != 13, "chaos hook: unlucky height");
            })),
            ..test_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).unwrap();
        let addr = server.local_addr();
        match roundtrip_one(addr, &checker(13, 8)) {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::Panic),
            other => panic!("expected panic rejection, got {other:?}"),
        }
        // Same server, next job is fine.
        assert!(matches!(
            roundtrip_one(addr, &checker(12, 8)),
            Response::Ok(_)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.sessions_rebuilt, 1);
        assert_eq!(stats.jobs_ok, 1);
    }

    #[test]
    fn shutdown_drains_and_reports_rejections() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let addr = server.local_addr();
        assert!(matches!(
            roundtrip_one(addr, &checker(9, 9)),
            Response::Ok(_)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.jobs_ok, 1);
        assert_eq!(stats.connections, 1);
        // The listener is gone: connecting is refused, never a hang.
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn stream_mode_negotiates_and_returns_feature_records() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let img = checker(19, 37);
        let (mut stream, mut reader) = stream_conn(server.local_addr());
        pbm::write_framed(&img, &mut stream).unwrap();
        let resp = protocol::read_stream_response(&mut reader)
            .unwrap()
            .unwrap();
        let StreamResponse::Ok(job) = resp else {
            panic!("expected STREAM, got {resp:?}");
        };
        assert_eq!((job.rows, job.cols), (19, 37));
        let mut grid = LabelGrid::new_background(19, 37);
        let mut session = EngineKind::Fast.session(1);
        let stats = session.label_into(&img, Connectivity::Four, &mut grid);
        assert_eq!(job.components, stats.components);
        let foreground: u64 = (0..19)
            .flat_map(|r| (0..37).map(move |c| (r, c)))
            .filter(|&(r, c)| img.get(r, c))
            .count() as u64;
        assert_eq!(job.records.iter().map(|r| r.area).sum::<u64>(), foreground);
        let final_stats = server.shutdown();
        assert_eq!(final_stats.jobs_ok, 1);
        assert_eq!(final_stats.jobs_streamed, 1);
        assert_eq!(final_stats.jobs_ooc, 0);
        assert!(final_stats.peak_carried_runs > 0);
    }

    #[test]
    fn oversize_stream_jobs_route_out_of_core() {
        let cfg = ServeConfig {
            max_pixels: 256, // a 64×64 frame is 16× over the grid budget
            ..test_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).unwrap();
        let img = checker(64, 64);
        let (mut stream, mut reader) = stream_conn(server.local_addr());
        pbm::write_framed(&img, &mut stream).unwrap();
        let resp = protocol::read_stream_response(&mut reader)
            .unwrap()
            .unwrap();
        let StreamResponse::Ok(job) = resp else {
            panic!("expected STREAM, got {resp:?}");
        };
        let mut grid = LabelGrid::new_background(64, 64);
        let mut session = EngineKind::Fast.session(1);
        let stats = session.label_into(&img, Connectivity::Four, &mut grid);
        assert_eq!(job.components, stats.components);
        let final_stats = server.shutdown();
        assert_eq!(final_stats.jobs_ooc, 1);
        // The paper's carried-state bound, observable on the wire path.
        assert!(final_stats.peak_carried_runs <= 64 / 2 + 1);
    }

    #[test]
    fn v1_and_v2_clients_interleave_on_one_server() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let addr = server.local_addr();
        let img = checker(11, 23);
        assert!(matches!(roundtrip_one(addr, &img), Response::Ok(_)));
        let (mut stream, mut reader) = stream_conn(addr);
        pbm::write_framed(&img, &mut stream).unwrap();
        assert!(matches!(
            protocol::read_stream_response(&mut reader)
                .unwrap()
                .unwrap(),
            StreamResponse::Ok(_)
        ));
        assert!(matches!(roundtrip_one(addr, &img), Response::Ok(_)));
        let stats = server.shutdown();
        assert_eq!(stats.jobs_ok, 3);
        assert_eq!(stats.jobs_streamed, 1);
    }

    #[test]
    fn a_bad_hello_is_rejected_and_closed() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"HELLO slapd/2 sideways\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        match protocol::read_response(&mut reader).unwrap().unwrap() {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::BadFrame),
            other => panic!("expected bad-frame, got {other:?}"),
        }
        assert!(protocol::read_response(&mut reader).unwrap().is_none());
        let stats = server.shutdown();
        assert_eq!(stats.bad_frame, 1);
    }
}
