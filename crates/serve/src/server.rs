//! `slapd`: the fault-tolerant labeling server.
//!
//! The design is a small set of independent defenses layered in front of
//! the warm labeling engines:
//!
//! ```text
//!  acceptor ──► connection threads ──► bounded queue ──► worker pool
//!                  │  parse + guards       │  backpressure   │  warm engine
//!                  │  (typed ERR early)    │  + byte budget  │  sessions,
//!                  ▼                       ▼                 ▼  catch_unwind
//!               typed ERR            queue-full ERR     panic ⇒ rebuild
//! ```
//!
//! * **Admission guards** run before any allocation proportional to the
//!   job: dimension caps, `rows × cols` overflow, pixel budget.
//! * **Backpressure** is the bounded queue — when it is full the client
//!   gets a typed `queue-full` rejection immediately; the server never
//!   buffers unbounded work.
//! * **Deadlines** are wall-clock per job: the watchdog sweeps expired
//!   queued jobs, workers refuse to start expired work, and connection
//!   threads stop waiting past the deadline.
//! * **Panic isolation**: a panicking engine is caught with
//!   `catch_unwind`, the job answers `ERR panic`, the worker rebuilds its
//!   sessions, and the server keeps serving.
//! * **Graceful drain**: [`Server::shutdown`] stops accepting, rejects new
//!   jobs with `shutdown`, finishes everything in flight, and returns the
//!   final stats snapshot.

use crate::protocol::{self, WireError};
use crate::queue::{BoundedQueue, PushRejection};
use slap_cc::stream::RowSource;
use slap_cc::{Connectivity, EngineKind, LabelEngine};
use slap_image::pbm::{FramedPbmReader, PbmError, PbmRowReader};
use slap_image::{Bitmap, LabelGrid};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A pre-compute inspection hook, called with each admitted job's bitmap
/// on the worker thread before labeling. Tests use it to inject panics and
/// delays; production leaves it `None`.
pub type JobHook = Arc<dyn Fn(&Bitmap) + Send + Sync>;

/// Tunable limits and behavior for a [`Server`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Neighbor convention applied to every job.
    pub conn: Connectivity,
    /// Worker threads, each holding warm engine sessions.
    pub workers: usize,
    /// Maximum queued jobs (items) before `queue-full`.
    pub queue_cap: usize,
    /// Maximum bytes of queued job state (bitmaps + reserved label output)
    /// before `queue-full` — the memory budget.
    pub queue_budget_bytes: usize,
    /// Maximum rows and maximum cols per job.
    pub max_dim: usize,
    /// Maximum `rows × cols` per job.
    pub max_pixels: u64,
    /// Wall-clock budget per job, from admission to response.
    pub deadline: Duration,
    /// Socket read/write timeout — how long a client may stall mid-frame.
    pub io_timeout: Duration,
    /// Jobs at or above this many pixels run on the parallel engine;
    /// smaller jobs take the fast sequential engine.
    pub parallel_threshold_pixels: u64,
    /// Threads handed to the parallel engine session.
    pub engine_threads: usize,
    /// Optional pre-compute hook (see [`JobHook`]).
    pub job_hook: Option<JobHook>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            conn: Connectivity::Four,
            workers: 2,
            queue_cap: 64,
            queue_budget_bytes: 256 << 20,
            max_dim: 1 << 15,
            max_pixels: 1 << 26,
            deadline: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            parallel_threshold_pixels: 1 << 21,
            engine_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            job_hook: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("conn", &self.conn)
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .field("queue_budget_bytes", &self.queue_budget_bytes)
            .field("max_dim", &self.max_dim)
            .field("max_pixels", &self.max_pixels)
            .field("deadline", &self.deadline)
            .field("io_timeout", &self.io_timeout)
            .field("parallel_threshold_pixels", &self.parallel_threshold_pixels)
            .field("engine_threads", &self.engine_threads)
            .field("job_hook", &self.job_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

macro_rules! stats_fields {
    ($($(#[$doc:meta])* $name:ident,)*) => {
        /// Live server counters (lock-free, updated by every thread).
        #[derive(Debug, Default)]
        pub struct ServerStats {
            $($(#[$doc])* pub $name: AtomicU64,)*
        }

        /// A point-in-time copy of [`ServerStats`] plus queue high-water
        /// marks.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
            /// Most jobs queued at once.
            pub peak_queue_depth: u64,
            /// Most queued job bytes held at once.
            pub peak_queue_bytes: u64,
        }

        impl ServerStats {
            fn snapshot(&self, peaks: (usize, usize)) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                    peak_queue_depth: peaks.0 as u64,
                    peak_queue_bytes: peaks.1 as u64,
                }
            }
        }
    };
}

stats_fields! {
    /// Connections accepted.
    connections,
    /// Jobs labeled and answered `OK`.
    jobs_ok,
    /// `bad-frame` rejections (parse failures, garbage, truncation).
    bad_frame,
    /// `too-large` rejections (dimension or pixel budget).
    too_large,
    /// `overflow` rejections (`rows × cols` overflows label space).
    overflow,
    /// `queue-full` rejections (backpressure).
    queue_full,
    /// `deadline` rejections (expired in queue, stalled ingest, or slow
    /// compute).
    deadline_expired,
    /// Jobs that panicked inside the engine (each also rebuilds a worker).
    panics,
    /// `shutdown` rejections during drain.
    shutdown_rejects,
    /// Connections dropped on raw I/O errors (reset, broken pipe, stall).
    io_errors,
    /// Worker engine pools rebuilt after a panic.
    sessions_rebuilt,
}

impl ServerStats {
    fn count_reject(&self, code: WireError) {
        let counter = match code {
            WireError::BadFrame => &self.bad_frame,
            WireError::TooLarge => &self.too_large,
            WireError::Overflow => &self.overflow,
            WireError::QueueFull => &self.queue_full,
            WireError::Deadline => &self.deadline_expired,
            WireError::Panic => &self.panics,
            WireError::Shutdown => &self.shutdown_rejects,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total typed rejections of every kind.
    pub fn rejected(&self) -> u64 {
        self.bad_frame
            + self.too_large
            + self.overflow
            + self.queue_full
            + self.deadline_expired
            + self.panics
            + self.shutdown_rejects
    }
}

/// One admitted job traveling from a connection thread to a worker.
struct Job {
    img: Bitmap,
    deadline: Instant,
    resp: mpsc::SyncSender<Outcome>,
}

enum Outcome {
    Labeled { components: usize, labels: Vec<u32> },
    Panicked,
    Expired,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    stats: ServerStats,
    draining: AtomicBool,
    stopped: AtomicBool,
    /// Each live connection's thread plus a socket handle the drain path
    /// uses to half-close reads, waking threads parked between frames.
    conns: Mutex<Vec<(JoinHandle<()>, Option<TcpStream>)>>,
}

/// The listening service. Dropping a `Server` without calling
/// [`Server::shutdown`] leaks its threads; shut it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts the acceptor, worker pool, and watchdog.
    /// Bind to port 0 for an ephemeral port ([`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        assert!(cfg.workers > 0, "a server needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_cap, cfg.queue_budget_bytes),
            cfg,
            stats: ServerStats::default(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });

        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("slapd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        let watchdog = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("slapd-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog")
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("slapd-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live peek at the counters; the authoritative final snapshot is
    /// the return value of [`Server::shutdown`].
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.queue.peaks())
    }

    /// Graceful drain: stop accepting connections, answer `shutdown` to
    /// new jobs on live connections, finish every job already admitted,
    /// then stop all threads and return the final stats.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Poke the blocking accept so the acceptor notices the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads finish their in-flight job (workers are still
        // running) and exit; no new handles appear once the acceptor is
        // gone. Half-closing reads wakes threads idling between frames
        // without touching responses still being written.
        let conns =
            std::mem::take(&mut *self.shared.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for (h, sock) in conns {
            if let Some(sock) = sock {
                let _ = sock.shutdown(std::net::Shutdown::Read);
            }
            let _ = h.join();
        }
        // Now drain the queue: workers consume the backlog and exit.
        self.shared.queue.drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog.take() {
            h.thread().unpark();
            let _ = h.join();
        }
        self.shared.stats.snapshot(self.shared.queue.peaks())
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let drain_sock = stream.try_clone().ok();
                let per_conn = Arc::clone(shared);
                match thread::Builder::new()
                    .name("slapd-conn".into())
                    .spawn(move || handle_conn(&per_conn, stream))
                {
                    Ok(handle) => {
                        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
                        conns.retain(|(h, _)| !h.is_finished());
                        conns.push((handle, drain_sock));
                    }
                    Err(_) => {
                        shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Whether a framed-stream error leaves the byte stream unusable. Errors
/// inside a fully buffered frame body (bad header, truncated raster) do
/// not desync framing — the server answers `ERR` and reads the next frame.
/// Prefix and transport failures do.
fn stream_is_desynced(e: &io::Error) -> bool {
    match PbmError::from_io(e) {
        Some(
            PbmError::Io(_)
            | PbmError::TruncatedFrame { .. }
            | PbmError::BadLengthPrefix(_)
            | PbmError::LyingLengthPrefix { .. },
        ) => true,
        Some(_) => false,
        None => true,
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let cfg = &shared.cfg;
    let _ = stream.set_read_timeout(Some(cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(cfg.io_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut frames = FramedPbmReader::new(read_half);
    let mut writer = io::BufWriter::new(stream);
    let mut scratch = Vec::new();

    loop {
        match frames.next_frame() {
            Ok(None) => break, // clean close
            Ok(Some(frame)) => {
                if serve_frame(shared, frame, &mut writer, &mut scratch).is_err() {
                    shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            Err(e) => {
                if let Some(pe) = PbmError::from_io(&e) {
                    let code = WireError::from_pbm(pe);
                    shared.stats.count_reject(code);
                    let detail = pe.to_string();
                    let fatal = stream_is_desynced(&e);
                    let _ = protocol::write_err(&mut writer, code, &detail);
                    if !fatal {
                        continue;
                    }
                } else if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                {
                    // The client stalled mid-frame past the I/O deadline.
                    shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = protocol::write_err(
                        &mut writer,
                        WireError::Deadline,
                        "stream stalled mid-frame",
                    );
                } else {
                    shared.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                break; // the byte stream is desynced; close
            }
        }
    }
    let _ = writer.flush();
    // Send the FIN now: the drain path may still hold a clone of this
    // socket, which would otherwise keep the connection half-open (and a
    // well-behaved client waiting) until the next conns sweep.
    let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
}

/// Admits, runs, and answers one parsed frame. `Err` means the response
/// could not be written (client gone) — the connection closes.
fn serve_frame<W: Write>(
    shared: &Arc<Shared>,
    mut frame: PbmRowReader<&[u8]>,
    writer: &mut W,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    let cfg = &shared.cfg;
    let reject = |writer: &mut W, code: WireError, detail: &str| -> io::Result<()> {
        shared.stats.count_reject(code);
        protocol::write_err(writer, code, detail)
    };

    let (rows, cols) = (frame.rows(), frame.cols());
    // Admission guards, cheapest first, all before any job-sized
    // allocation.
    if rows > cfg.max_dim || cols > cfg.max_dim {
        return reject(
            writer,
            WireError::TooLarge,
            &format!("{rows}x{cols} exceeds max dimension {}", cfg.max_dim),
        );
    }
    // max_dim caps each side well below 2^32, so this product fits in u64.
    let pixels = rows as u64 * cols as u64;
    if pixels >= u64::from(u32::MAX) {
        return reject(
            writer,
            WireError::Overflow,
            &format!("{rows}x{cols} overflows the u32 label space"),
        );
    }
    if pixels > cfg.max_pixels {
        return reject(
            writer,
            WireError::TooLarge,
            &format!("{pixels} pixels exceeds budget {}", cfg.max_pixels),
        );
    }
    if shared.draining.load(Ordering::SeqCst) {
        return reject(writer, WireError::Shutdown, "server is draining");
    }

    // Materialize the bitmap from the buffered frame body. Failures here
    // (truncated raster, bad pixel bytes) do not desync the frame stream.
    let mut img = Bitmap::new(rows, cols);
    let mut row_words = Vec::new();
    for r in 0..rows {
        match frame.next_row(&mut row_words) {
            Ok(true) => img.set_row_words(r, &row_words),
            Ok(false) => {
                return reject(writer, WireError::BadFrame, "frame body ended early");
            }
            Err(e) => {
                let detail = PbmError::from_io(&e)
                    .map(|pe| pe.to_string())
                    .unwrap_or_else(|| e.to_string());
                return reject(writer, WireError::BadFrame, &detail);
            }
        }
    }

    // Weight = bitmap words + the label grid the worker will hand back.
    let weight = img.as_words().len() * 8 + (pixels as usize) * 4;
    let deadline = Instant::now() + cfg.deadline;
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        img,
        deadline,
        resp: tx,
    };
    match shared.queue.try_push(job, weight) {
        Err((_, PushRejection::Full)) => {
            return reject(writer, WireError::QueueFull, "job queue is full; retry");
        }
        Err((_, PushRejection::Draining)) => {
            return reject(writer, WireError::Shutdown, "server is draining");
        }
        Ok(()) => {}
    }

    // Workers race the deadline; give them a grace period so their own
    // expiry report (or the watchdog's) normally wins over this timeout.
    let wait = cfg.deadline + cfg.deadline / 4 + Duration::from_millis(50);
    match rx.recv_timeout(wait) {
        Ok(Outcome::Labeled { components, labels }) => {
            shared.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
            protocol::write_ok(writer, rows, cols, components, &labels, scratch)
        }
        Ok(Outcome::Panicked) => {
            // The worker already counted the panic; answer the client.
            protocol::write_err(writer, WireError::Panic, "job panicked; worker rebuilt")
        }
        Ok(Outcome::Expired) => {
            // The watchdog/worker already counted the expiry.
            protocol::write_err(writer, WireError::Deadline, "job missed its deadline")
        }
        Err(_) => reject(writer, WireError::Deadline, "job missed its deadline"),
    }
}

thread_local! {
    /// True while this worker thread is inside a job's `catch_unwind`,
    /// so the global panic hook knows to stay quiet: the panic is
    /// contained and reported on the wire, not a server bug.
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !IN_JOB.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// A worker's warm engine pool: one fast and one parallel session plus a
/// reusable label grid, routed by job size.
struct Engines {
    fast: Box<dyn LabelEngine>,
    parallel: Box<dyn LabelEngine>,
    grid: LabelGrid,
}

impl Engines {
    fn new(cfg: &ServeConfig) -> Engines {
        Engines {
            fast: EngineKind::Fast.session(1),
            parallel: EngineKind::Parallel.session(cfg.engine_threads),
            grid: LabelGrid::new_background(1, 1),
        }
    }

    fn run(&mut self, cfg: &ServeConfig, img: &Bitmap) -> (usize, Vec<u32>) {
        if let Some(hook) = &cfg.job_hook {
            hook(img);
        }
        let pixels = img.rows() as u64 * img.cols() as u64;
        if self.grid.rows() != img.rows() || self.grid.cols() != img.cols() {
            self.grid = LabelGrid::new_background(img.rows(), img.cols());
        }
        let engine = if pixels >= cfg.parallel_threshold_pixels && cfg.engine_threads > 1 {
            &mut self.parallel
        } else {
            &mut self.fast
        };
        let stats = engine.label_into(img, cfg.conn, &mut self.grid);
        (stats.components, self.grid.as_slice().to_vec())
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    install_quiet_panic_hook();
    let cfg = &shared.cfg;
    let mut engines = Engines::new(cfg);
    while let Some(job) = shared.queue.pop() {
        if Instant::now() > job.deadline {
            shared
                .stats
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.resp.send(Outcome::Expired);
            continue;
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            IN_JOB.with(|f| f.set(true));
            engines.run(cfg, &job.img)
        }));
        IN_JOB.with(|f| f.set(false));
        match result {
            Ok((components, labels)) => {
                let _ = job.resp.send(Outcome::Labeled { components, labels });
            }
            Err(_) => {
                // The engine pool may hold torn state; rebuild it.
                shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .sessions_rebuilt
                    .fetch_add(1, Ordering::Relaxed);
                engines = Engines::new(cfg);
                let _ = job.resp.send(Outcome::Panicked);
            }
        }
    }
}

/// Sweeps the queue for jobs that expired before any worker reached them,
/// so a saturated queue still answers `deadline` promptly instead of
/// making clients wait out their full timeout.
fn watchdog_loop(shared: &Arc<Shared>) {
    let tick = (shared.cfg.deadline / 4).max(Duration::from_millis(5));
    while !shared.stopped.load(Ordering::SeqCst) {
        let now = Instant::now();
        shared.queue.reject_if(
            |job| now > job.deadline,
            |job| {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                let _ = job.resp.send(Outcome::Expired);
            },
        );
        thread::park_timeout(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use slap_image::pbm;
    use std::io::BufReader;

    fn test_cfg() -> ServeConfig {
        ServeConfig {
            workers: 2,
            deadline: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        }
    }

    fn checker(rows: usize, cols: usize) -> Bitmap {
        let mut img = Bitmap::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if (r + c) % 2 == 0 {
                    img.set(r, c, true);
                }
            }
        }
        img
    }

    fn roundtrip_one(addr: SocketAddr, img: &Bitmap) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        pbm::write_framed(img, &mut stream).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        protocol::read_response(&mut reader).unwrap().unwrap()
    }

    #[test]
    fn labels_match_the_fast_engine_bit_for_bit() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let img = checker(17, 41);
        let resp = roundtrip_one(server.local_addr(), &img);
        let Response::Ok(ok) = resp else {
            panic!("expected OK, got {resp:?}");
        };
        let mut grid = LabelGrid::new_background(17, 41);
        let mut session = EngineKind::Fast.session(1);
        let stats = session.label_into(&img, Connectivity::Four, &mut grid);
        assert_eq!(ok.components, stats.components);
        assert_eq!(ok.labels, grid.as_slice());
        let final_stats = server.shutdown();
        assert_eq!(final_stats.jobs_ok, 1);
        assert_eq!(final_stats.rejected(), 0);
    }

    #[test]
    fn oversized_dims_get_typed_rejections_without_allocation() {
        let cfg = ServeConfig {
            max_dim: 64,
            max_pixels: 1 << 10,
            ..test_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).unwrap();
        let addr = server.local_addr();

        // Over max_dim: reject before reading the raster.
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = b"P4\n100000 2\n".to_vec();
        stream
            .write_all(format!("{}\n", body.len()).as_bytes())
            .unwrap();
        stream.write_all(&body).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        match protocol::read_response(&mut reader).unwrap().unwrap() {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::TooLarge),
            other => panic!("expected too-large, got {other:?}"),
        }
        // Over max_pixels but under max_dim.
        let body = b"P4\n64 64\n".to_vec();
        stream
            .write_all(format!("{}\n", body.len()).as_bytes())
            .unwrap();
        stream.write_all(&body).unwrap();
        match protocol::read_response(&mut reader).unwrap().unwrap() {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::TooLarge),
            other => panic!("expected too-large, got {other:?}"),
        }
        // The connection is still healthy after both rejections.
        let img = checker(8, 8);
        pbm::write_framed(&img, &mut stream).unwrap();
        assert!(matches!(
            protocol::read_response(&mut reader).unwrap().unwrap(),
            Response::Ok(_)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.too_large, 2);
        assert_eq!(stats.jobs_ok, 1);
    }

    #[test]
    fn a_panicking_job_is_isolated_and_the_server_keeps_serving() {
        let cfg = ServeConfig {
            job_hook: Some(Arc::new(|img: &Bitmap| {
                assert!(img.rows() != 13, "chaos hook: unlucky height");
            })),
            ..test_cfg()
        };
        let server = Server::bind("127.0.0.1:0", cfg).unwrap();
        let addr = server.local_addr();
        match roundtrip_one(addr, &checker(13, 8)) {
            Response::Rejected { code, .. } => assert_eq!(code, WireError::Panic),
            other => panic!("expected panic rejection, got {other:?}"),
        }
        // Same server, next job is fine.
        assert!(matches!(
            roundtrip_one(addr, &checker(12, 8)),
            Response::Ok(_)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.sessions_rebuilt, 1);
        assert_eq!(stats.jobs_ok, 1);
    }

    #[test]
    fn shutdown_drains_and_reports_rejections() {
        let server = Server::bind("127.0.0.1:0", test_cfg()).unwrap();
        let addr = server.local_addr();
        assert!(matches!(
            roundtrip_one(addr, &checker(9, 9)),
            Response::Ok(_)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.jobs_ok, 1);
        assert_eq!(stats.connections, 1);
        // The listener is gone: connecting is refused, never a hang.
        assert!(TcpStream::connect(addr).is_err());
    }
}
