//! `slapd`: a fault-tolerant TCP labeling service over the framed-PBM
//! wire format, plus its retrying client and a deterministic
//! fault-injection harness.
//!
//! The scan-line engines in `slap_cc` label one image at a time; this
//! crate turns them into a long-running service that survives hostile
//! inputs and load spikes:
//!
//! * [`server::Server`] — acceptor, bounded job queue with byte-budget
//!   backpressure, warm worker-held engine sessions routed by job size,
//!   per-job wall-clock deadlines with a watchdog, panic isolation with
//!   session rebuild, and graceful drain.
//! * [`protocol`] — the wire format: framed-PBM jobs in, `OK` label
//!   payloads, v2 `STREAM` feature-record responses, or a closed taxonomy
//!   of typed `ERR` codes out, with a versioned hello so v1 clients keep
//!   working untouched.
//! * [`wire`] — the shared length-prefixed [`wire::Frame`] codec (one
//!   implementation for request framing, PBM ingest, and stream records)
//!   and the fixed-width feature-record encoding.
//! * [`poll`] — the minimal raw-libc `poll(2)` shim behind the
//!   readiness-based connection core (idle keep-alives cost no thread).
//! * [`client::Client`] — connection pooling and jittered-exponential
//!   retry, safe because labeling is idempotent.
//! * [`chaos`] — seeded fault scripts ([`chaos::FaultyStream`]) for the
//!   integration suite: truncation, short ops, mid-frame disconnects,
//!   lying length prefixes, stalls, garbage, rasters truncated inside a
//!   consistent frame, and clients that vanish mid-response.
//!
//! Everything is `std`-only: threads, `TcpListener`, `Mutex`/`Condvar`,
//! and `mpsc` — no async runtime to depend on or to misbehave under load.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod poll;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod wire;

pub use chaos::{Delivery, DetRng, FaultClass, FaultyStream};
pub use client::{Client, ClientError, RetryPolicy};
pub use protocol::{JobOk, JobStream, Response, ResponseMode, StreamResponse, WireError};
pub use queue::{BoundedQueue, PushRejection};
pub use server::{JobHook, ServeConfig, Server, ServerStats, StatsSnapshot};
pub use wire::{Frame, FrameError, RECORD_BYTES};
