//! Shared wire plumbing for the `slapd` protocol: the single
//! length-prefixed [`Frame`] codec (re-exported from
//! [`slap_image::framing`], where the framed-PBM readers use the same
//! implementation) plus the fixed-width binary codec for
//! [`RetiredComponent`] feature records carried by protocol-v2 `STREAM`
//! responses.
//!
//! Every framed surface in the service — request framing, response record
//! framing, multi-image PBM ingest — parses through one implementation, so
//! the byte-soup property tests at the bottom of this module exercise the
//! hostile-input behavior of all of them at once.

pub use slap_image::framing::{Frame, FrameError, PrefixParser, MAX_FRAME_BYTES};
use slap_image::RetiredComponent;

/// Encoded size of one feature record: six `u32` position/bbox fields then
/// four `u64` accumulators, all little-endian.
pub const RECORD_BYTES: usize = 6 * 4 + 4 * 8;

/// Appends the little-endian fixed-width encoding of `rec` to `out`.
/// Field order: `min_pos_col`, `min_pos_row`, `min_row`, `max_row`,
/// `min_col`, `max_col` (u32 each), then `area`, `sum_row`, `sum_col`,
/// `perimeter` (u64 each).
pub fn encode_record(rec: &RetiredComponent, out: &mut Vec<u8>) {
    out.reserve(RECORD_BYTES);
    for v in [
        rec.min_pos_col,
        rec.min_pos_row,
        rec.min_row,
        rec.max_row,
        rec.min_col,
        rec.max_col,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [rec.area, rec.sum_row, rec.sum_col, rec.perimeter] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes one record from exactly [`RECORD_BYTES`] bytes; `None` if the
/// slice has any other length. Never panics on arbitrary byte content —
/// every 56-byte string decodes to *some* record (validity checks such as
/// `min_row <= max_row` belong to the consumer).
pub fn decode_record(bytes: &[u8]) -> Option<RetiredComponent> {
    if bytes.len() != RECORD_BYTES {
        return None;
    }
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
    let u64_at = |i: usize| {
        let at = 24 + i * 8;
        u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
    };
    Some(RetiredComponent {
        min_pos_col: u32_at(0),
        min_pos_row: u32_at(1),
        min_row: u32_at(2),
        max_row: u32_at(3),
        min_col: u32_at(4),
        max_col: u32_at(5),
        area: u64_at(0),
        sum_row: u64_at(1),
        sum_col: u64_at(2),
        perimeter: u64_at(3),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::DetRng;

    fn arbitrary_record(rng: &mut DetRng) -> RetiredComponent {
        RetiredComponent {
            min_pos_col: rng.next_u64() as u32,
            min_pos_row: rng.next_u64() as u32,
            area: rng.next_u64(),
            min_row: rng.next_u64() as u32,
            max_row: rng.next_u64() as u32,
            min_col: rng.next_u64() as u32,
            max_col: rng.next_u64() as u32,
            sum_row: rng.next_u64(),
            sum_col: rng.next_u64(),
            perimeter: rng.next_u64(),
        }
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        let mut rng = DetRng::new(0xfeed);
        let mut buf = Vec::new();
        for _ in 0..200 {
            let rec = arbitrary_record(&mut rng);
            buf.clear();
            encode_record(&rec, &mut buf);
            assert_eq!(buf.len(), RECORD_BYTES);
            assert_eq!(decode_record(&buf), Some(rec));
        }
    }

    #[test]
    fn decode_rejects_every_other_length() {
        for len in 0..RECORD_BYTES * 2 {
            if len == RECORD_BYTES {
                continue;
            }
            assert!(decode_record(&vec![0u8; len]).is_none(), "len {len}");
        }
    }

    #[test]
    fn byte_soup_never_panics_the_framing_stack() {
        // The no-panic property over the whole shared stack: arbitrary
        // bytes through the incremental prefix parser, the blocking frame
        // reader, and the record decoder. Every outcome is a typed value.
        let mut rng = DetRng::new(0x50fa);
        let mut soup = Vec::new();
        let mut body = Vec::new();
        for round in 0..400 {
            let len = rng.below(512) as usize;
            soup.clear();
            for _ in 0..len {
                // Bias toward digits and whitespace so the parser gets past
                // the prefix often enough to exercise the body path too.
                let b = match rng.below(4) {
                    0 => b'0' + rng.below(10) as u8,
                    1 => b"\n\r \t"[rng.below(4) as usize],
                    _ => rng.next_u64() as u8,
                };
                soup.push(b);
            }
            let mut parser = PrefixParser::new(MAX_FRAME_BYTES);
            for &b in &soup {
                if parser.step(b).is_err() {
                    break;
                }
            }
            let mut r = &soup[..];
            while let Ok(Some(got)) = Frame::read_into(&mut r, &mut body, 1 << 16) {
                assert_eq!(got, body.len(), "round {round}");
                let _ = decode_record(&body);
            }
        }
    }

    #[test]
    fn frames_of_records_concatenate_and_parse_back() {
        // The exact shape a STREAM response carries: back-to-back record
        // frames terminated by a zero-length frame.
        let mut rng = DetRng::new(0x7a11);
        let records: Vec<RetiredComponent> = (0..17).map(|_| arbitrary_record(&mut rng)).collect();
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for rec in &records {
            scratch.clear();
            encode_record(rec, &mut scratch);
            Frame::write(&mut wire, &scratch).unwrap();
        }
        Frame::write(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut body = Vec::new();
        let mut got = Vec::new();
        loop {
            let len = Frame::read_into(&mut r, &mut body, RECORD_BYTES)
                .expect("well-formed frames")
                .expect("terminator before EOF");
            if len == 0 {
                break;
            }
            got.push(decode_record(&body).expect("exact record length"));
        }
        assert_eq!(got, records);
    }
}
