//! A retrying `slapd` client.
//!
//! Labeling is pure — the same bitmap always yields the same grid — so
//! resubmitting a job is always safe. The client leans on that: any
//! transient failure (connection refused or reset, `queue-full`,
//! `deadline`, `shutdown`, a one-off `panic`) triggers a reconnect and
//! resubmit with jittered exponential backoff. Verdicts about the job
//! itself (`bad-frame`, `too-large`, `overflow`) surface immediately.
//!
//! The pooled connection is mode-aware: [`Client::label`] keeps a plain
//! v1 grid connection (no hello is ever sent, so v1 servers work
//! unchanged), while [`Client::label_stream`] negotiates protocol-v2
//! `stream` mode on connect and receives per-component feature records.
//! Switching between the two drops the pooled connection and dials a
//! fresh one in the right mode — a connection's response mode is fixed
//! at its hello.

use crate::chaos::DetRng;
use crate::protocol::{self, JobOk, JobStream, Response, ResponseMode, StreamResponse, WireError};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Retry and backoff tuning for a [`Client`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total submission attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter (±50% around the exponential
    /// delay) that keeps a fleet of retrying clients from thundering back
    /// in lockstep.
    pub jitter_seed: u64,
    /// Socket read/write timeout per attempt.
    pub io_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x5eed,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Why a [`Client::label`] call gave up.
#[derive(Debug)]
pub enum ClientError {
    /// A transport failure on the final attempt.
    Io(io::Error),
    /// The server rejected the job with a non-retryable verdict.
    Rejected {
        /// The typed rejection code.
        code: WireError,
        /// The server's one-line detail.
        detail: String,
    },
    /// Every attempt failed with a retryable condition.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last failure, rendered.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Rejected { code, detail } => {
                write!(f, "server rejected job ({code}): {detail}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum AttemptError {
    Io(io::Error),
    Rejected { code: WireError, detail: String },
}

impl AttemptError {
    fn retryable(&self) -> bool {
        match self {
            AttemptError::Io(_) => true,
            AttemptError::Rejected { code, .. } => code.retryable(),
        }
    }

    fn render(&self) -> String {
        match self {
            AttemptError::Io(e) => format!("transport error: {e}"),
            AttemptError::Rejected { code, detail } => format!("{code}: {detail}"),
        }
    }
}

/// A connection-pooling, retrying client for one `slapd` address.
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: DetRng,
    stream: Option<TcpStream>,
    mode: ResponseMode,
    frame: Vec<u8>,
    retries: u64,
}

impl Client {
    /// Creates a client for `addr` with the default policy. No I/O happens
    /// until the first [`Client::label`].
    pub fn connect(addr: SocketAddr) -> Client {
        Client::with_policy(addr, RetryPolicy::default())
    }

    /// Creates a client with an explicit retry policy.
    pub fn with_policy(addr: SocketAddr, policy: RetryPolicy) -> Client {
        let rng = DetRng::new(policy.jitter_seed);
        Client {
            addr,
            policy,
            rng,
            stream: None,
            mode: ResponseMode::Grid,
            frame: Vec::new(),
            retries: 0,
        }
    }

    /// Retries performed so far (reconnect + resubmit events, not counting
    /// each job's first attempt).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Labels `img` on the server, retrying transient failures per the
    /// policy. Returns the labeled grid or the reason the job is
    /// unservable. Uses a plain v1 grid connection; if the pooled
    /// connection was negotiated for streaming it is dropped first.
    pub fn label(&mut self, img: &slap_image::Bitmap) -> Result<JobOk, ClientError> {
        self.frame.clear();
        slap_image::pbm::write_framed(img, &mut self.frame)?;
        self.retry(Client::attempt_grid)
    }

    /// Labels `img` in protocol-v2 `stream` mode, retrying transient
    /// failures per the policy. Returns the per-component feature records
    /// instead of a label grid — the server never materializes the grid,
    /// so this is the path for frames above the server's grid budget.
    pub fn label_stream(&mut self, img: &slap_image::Bitmap) -> Result<JobStream, ClientError> {
        self.frame.clear();
        slap_image::pbm::write_framed(img, &mut self.frame)?;
        self.retry(Client::attempt_stream)
    }

    /// The shared retry loop: both response modes differ only in how one
    /// attempt submits the frame and parses the reply.
    fn retry<T>(
        &mut self,
        attempt_one: fn(&mut Client, &[u8]) -> Result<T, AttemptError>,
    ) -> Result<T, ClientError> {
        let mut last: Option<AttemptError> = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt));
                self.retries += 1;
            }
            let frame = std::mem::take(&mut self.frame);
            let outcome = attempt_one(self, &frame);
            self.frame = frame;
            match outcome {
                Ok(reply) => return Ok(reply),
                Err(e) if e.retryable() => {
                    // The stream may be desynced or dead; reconnect fresh.
                    self.stream = None;
                    last = Some(e);
                }
                Err(AttemptError::Rejected { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Err(AttemptError::Io(e)) => return Err(ClientError::Io(e)),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts,
            last: last.map(|e| e.render()).unwrap_or_default(),
        })
    }

    /// Ensures the pooled connection exists and was dialed for `mode`,
    /// reconnecting (and renegotiating) when the mode differs. Grid mode
    /// sends no hello at all, so v1 servers keep working.
    fn ensure_conn(&mut self, mode: ResponseMode) -> Result<(), AttemptError> {
        let io_err = AttemptError::Io;
        if self.mode != mode {
            self.stream = None;
        }
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr).map_err(io_err)?;
            stream
                .set_read_timeout(Some(self.policy.io_timeout))
                .map_err(io_err)?;
            stream
                .set_write_timeout(Some(self.policy.io_timeout))
                .map_err(io_err)?;
            let _ = stream.set_nodelay(true);
            if mode == ResponseMode::Stream {
                protocol::write_hello(&mut (&stream), mode).map_err(io_err)?;
                let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
                let echoed = protocol::read_hello(&mut reader).map_err(io_err)?;
                if echoed != ResponseMode::Stream {
                    return Err(AttemptError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server echoed mode {echoed}, wanted stream"),
                    )));
                }
            }
            self.stream = Some(stream);
            self.mode = mode;
        }
        Ok(())
    }

    fn attempt_grid(&mut self, frame: &[u8]) -> Result<JobOk, AttemptError> {
        let io_err = AttemptError::Io;
        self.ensure_conn(ResponseMode::Grid)?;
        let stream = self.stream.as_mut().expect("just connected");
        stream.write_all(frame).map_err(io_err)?;
        stream.flush().map_err(io_err)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        match protocol::read_response(&mut reader).map_err(io_err)? {
            None => Err(AttemptError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ))),
            Some(Response::Ok(ok)) => Ok(ok),
            Some(Response::Rejected { code, detail }) => {
                Err(AttemptError::Rejected { code, detail })
            }
        }
    }

    fn attempt_stream(&mut self, frame: &[u8]) -> Result<JobStream, AttemptError> {
        let io_err = AttemptError::Io;
        self.ensure_conn(ResponseMode::Stream)?;
        let stream = self.stream.as_mut().expect("just connected");
        stream.write_all(frame).map_err(io_err)?;
        stream.flush().map_err(io_err)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        match protocol::read_stream_response(&mut reader).map_err(io_err)? {
            None => Err(AttemptError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            ))),
            Some(StreamResponse::Ok(ok)) => Ok(ok),
            Some(StreamResponse::Rejected { code, detail }) => {
                Err(AttemptError::Rejected { code, detail })
            }
        }
    }

    /// Exponential backoff with ±50% deterministic jitter: attempt 1 waits
    /// around `base`, attempt 2 around `2·base`, ... capped at `max_delay`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let nominal = self
            .policy
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.policy.max_delay);
        let nanos = nominal.as_nanos() as u64;
        let jittered = nanos / 2 + self.rng.below(nanos.max(1));
        Duration::from_nanos(jittered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use slap_image::Bitmap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn blob(rows: usize, cols: usize) -> Bitmap {
        let mut img = Bitmap::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if r.abs_diff(rows / 2) + c.abs_diff(cols / 2) <= rows.min(cols) / 2 {
                    img.set(r, c, true);
                }
            }
        }
        img
    }

    #[test]
    fn backoff_grows_exponentially_with_jitter_in_band() {
        let mut client = Client::connect("127.0.0.1:1".parse().unwrap());
        for attempt in 1..=6u32 {
            let d = client.backoff(attempt);
            let nominal = Duration::from_millis(20)
                .saturating_mul(1 << (attempt - 1))
                .min(Duration::from_secs(2));
            assert!(d >= nominal / 2, "attempt {attempt}: {d:?} < half-band");
            assert!(d <= nominal * 3 / 2, "attempt {attempt}: {d:?} > band");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let seq = |seed: u64| -> Vec<Duration> {
            let mut c = Client::with_policy(
                "127.0.0.1:1".parse().unwrap(),
                RetryPolicy {
                    jitter_seed: seed,
                    ..RetryPolicy::default()
                },
            );
            (1..=4).map(|a| c.backoff(a)).collect()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    fn client_roundtrips_and_reuses_its_connection() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr());
        let img = blob(12, 20);
        for _ in 0..3 {
            let ok = client.label(&img).unwrap();
            assert_eq!((ok.rows, ok.cols), (12, 20));
            assert_eq!(ok.components, 1);
        }
        assert_eq!(client.retries(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.jobs_ok, 3);
        assert_eq!(stats.connections, 1, "one pooled connection");
    }

    #[test]
    fn label_stream_negotiates_and_returns_records() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr());
        let img = blob(12, 20);
        let foreground: u64 = (0..12)
            .map(|r| (0..20).filter(|&c| img.get(r, c)).count() as u64)
            .sum();
        for _ in 0..2 {
            let ok = client.label_stream(&img).unwrap();
            assert_eq!((ok.rows, ok.cols), (12, 20));
            assert_eq!(ok.components, 1);
            assert_eq!(ok.records.len(), 1);
            assert_eq!(ok.records[0].area, foreground);
        }
        assert_eq!(client.retries(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.jobs_streamed, 2);
        assert_eq!(stats.connections, 1, "stream conn is pooled too");
    }

    #[test]
    fn switching_modes_redials_in_the_right_mode() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr());
        let img = blob(10, 10);
        assert_eq!(client.label(&img).unwrap().components, 1);
        assert_eq!(client.label_stream(&img).unwrap().components, 1);
        assert_eq!(client.label(&img).unwrap().components, 1);
        assert_eq!(client.retries(), 0, "mode switches are not retries");
        let stats = server.shutdown();
        assert_eq!(stats.jobs_ok, 3);
        assert_eq!(stats.jobs_streamed, 1);
        assert_eq!(stats.connections, 3, "each switch dials fresh");
    }

    #[test]
    fn retryable_rejections_are_resubmitted_until_they_succeed() {
        // A hook that panics the first two times it sees a job: the
        // client should eat two `panic` rejections and then succeed.
        let flaky = Arc::new(AtomicU64::new(0));
        let hook_flaky = Arc::clone(&flaky);
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                job_hook: Some(Arc::new(move |_img| {
                    if hook_flaky.fetch_add(1, Ordering::SeqCst) < 2 {
                        panic!("chaos: transient failure");
                    }
                })),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::with_policy(
            server.local_addr(),
            RetryPolicy {
                base_delay: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        );
        let ok = client.label(&blob(10, 10)).unwrap();
        assert_eq!(ok.components, 1);
        assert_eq!(client.retries(), 2);
        let stats = server.shutdown();
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.jobs_ok, 1);
    }

    #[test]
    fn non_retryable_rejections_surface_immediately() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                max_dim: 8,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr());
        match client.label(&blob(16, 16)) {
            Err(ClientError::Rejected { code, .. }) => {
                assert_eq!(code, WireError::TooLarge);
            }
            other => panic!("expected too-large, got {other:?}"),
        }
        assert_eq!(client.retries(), 0, "verdicts are not retried");
        server.shutdown();
    }

    #[test]
    fn exhaustion_reports_the_last_failure() {
        // Nothing is listening on this port.
        let mut client = Client::with_policy(
            "127.0.0.1:9".parse().unwrap(),
            RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                ..RetryPolicy::default()
            },
        );
        match client.label(&blob(4, 4)) {
            Err(ClientError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 2);
                assert!(last.contains("transport error"), "{last}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
