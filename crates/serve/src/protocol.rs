//! The `slapd` wire protocol: framed-PBM jobs in, typed responses out.
//!
//! Requests reuse the existing framed-PBM format unchanged
//! ([`slap_image::pbm::write_framed`] / [`slap_image::pbm::FramedPbmReader`]):
//! a client connection is a sequence of `<decimal length>\n<raw P4 PBM>`
//! job frames. Responses are one record per job, in submission order:
//!
//! ```text
//! OK <rows> <cols> <components> <payload_len>\n<payload_len bytes>
//! ERR <code> <detail>\n
//! ```
//!
//! The `OK` payload is the label grid, row-major, one little-endian `u32`
//! per pixel (background = `u32::MAX`), bit-identical to the fast engine.
//! `ERR` codes are the closed [`WireError`] taxonomy — a client can branch
//! on the code (retry on `queue-full`, give up on `too-large`) without
//! parsing prose.
//!
//! # Protocol v2: negotiated response modes
//!
//! A v2 client opens its connection with a hello line:
//!
//! ```text
//! HELLO slapd/2 <mode>\n
//! ```
//!
//! where `<mode>` is `grid` or `stream` ([`ResponseMode`]); the server
//! echoes the hello back with the mode it granted, and every job on that
//! connection is answered in the granted mode. A connection whose first
//! byte is a frame length digit instead of `H` is a v1 client: no hello is
//! exchanged and responses stay whole-grid, so v1 clients work untouched.
//!
//! In `stream` mode the per-job response replaces the grid payload with
//! the retired-component feature records the scan-line engine produces —
//! `O(components)` bytes instead of `O(pixels)`:
//!
//! ```text
//! STREAM <rows> <cols>\n
//! <len>\n<len-byte record>    (0 or more, one per component)
//! 0\n                          (zero-length terminator frame)
//! END <components>\n
//! ```
//!
//! Each record frame body is the 56-byte little-endian encoding of one
//! [`RetiredComponent`] ([`crate::wire::encode_record`]); the `END` trailer
//! double-checks the count. Rejections are the same `ERR` records as v1 in
//! both modes.

use crate::wire::{decode_record, encode_record, Frame, FrameError, RECORD_BYTES};
use slap_image::pbm::PbmError;
use slap_image::RetiredComponent;
use std::io::{self, BufRead, Write};

/// The protocol generation spoken by this build: the `2` in
/// `HELLO slapd/2`.
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on an `OK` payload a client will buffer (bytes). The label grid
/// of the largest admissible job (`rows × cols < u32::MAX` pixels) fits; a
/// lying header above it is rejected before any allocation.
pub const MAX_PAYLOAD_BYTES: u64 = (u32::MAX as u64) * 4;

/// Cap on a response header line; anything longer is a protocol violation,
/// not a response.
pub(crate) const MAX_HEADER_BYTES: usize = 256;

/// How a connection wants its successful job responses encoded, negotiated
/// once per connection by the v2 hello.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ResponseMode {
    /// Whole label grids, one `u32` per pixel — the v1 format and the
    /// default when no hello is exchanged.
    #[default]
    Grid,
    /// Length-prefixed retired-component feature records: `O(components)`
    /// bytes per job, and the only mode in which frames above the grid
    /// pixel budget are routed out-of-core instead of rejected.
    Stream,
}

impl ResponseMode {
    /// The stable wire token for this mode.
    pub fn name(self) -> &'static str {
        match self {
            ResponseMode::Grid => "grid",
            ResponseMode::Stream => "stream",
        }
    }

    /// Parses a wire token as produced by [`ResponseMode::name`].
    pub fn parse(s: &str) -> Option<ResponseMode> {
        match s {
            "grid" => Some(ResponseMode::Grid),
            "stream" => Some(ResponseMode::Stream),
            _ => None,
        }
    }
}

impl std::fmt::Display for ResponseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Writes one hello line (`HELLO slapd/<version> <mode>`): the client's
/// opening request, and the server's echo granting a mode.
pub fn write_hello<W: Write>(w: &mut W, mode: ResponseMode) -> io::Result<()> {
    writeln!(w, "HELLO slapd/{PROTOCOL_VERSION} {}", mode.name())?;
    w.flush()
}

/// Parses a hello line (without its terminating newline) into the speaker's
/// protocol version and requested mode. `None` if the line is not a
/// well-formed hello.
pub fn parse_hello(line: &str) -> Option<(u32, ResponseMode)> {
    let mut parts = line.split(' ');
    if parts.next() != Some("HELLO") {
        return None;
    }
    let version = parts.next()?.strip_prefix("slapd/")?.parse::<u32>().ok()?;
    let mode = ResponseMode::parse(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    Some((version, mode))
}

/// Reads the server's hello echo and returns the granted mode. An `ERR`
/// line in place of the echo surfaces as `InvalidData` carrying the detail;
/// a clean close surfaces as `UnexpectedEof`.
pub fn read_hello<R: BufRead>(r: &mut R) -> io::Result<ResponseMode> {
    let line = read_header_line(r)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before the hello echo",
        )
    })?;
    parse_hello(&line).map(|(_, mode)| mode).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a hello echo, got {line:?}"),
        )
    })
}

/// The closed set of typed job-rejection codes `slapd` can answer with.
///
/// Every guard in the service maps to exactly one code, so the chaos suite
/// (and real clients) can assert on *which* defense fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireError {
    /// The job frame did not parse as framed PBM (bad magic, bad dims,
    /// truncated raster, lying length prefix, garbage bytes...).
    BadFrame,
    /// The image exceeds the server's dimension or pixel budget.
    TooLarge,
    /// `rows × cols` overflows the label space (`u32`) or `usize`.
    Overflow,
    /// The bounded job queue is full — backpressure, resubmit later.
    QueueFull,
    /// The job missed its wall-clock deadline (queued too long, stalled
    /// ingest, or slow compute).
    Deadline,
    /// The job panicked inside the engine; it was isolated and the worker
    /// session rebuilt. The server is still healthy.
    Panic,
    /// The server is draining and accepts no new jobs.
    Shutdown,
}

impl WireError {
    /// Every code, in wire order.
    pub const ALL: [WireError; 7] = [
        WireError::BadFrame,
        WireError::TooLarge,
        WireError::Overflow,
        WireError::QueueFull,
        WireError::Deadline,
        WireError::Panic,
        WireError::Shutdown,
    ];

    /// The stable wire token for this code.
    pub fn code(self) -> &'static str {
        match self {
            WireError::BadFrame => "bad-frame",
            WireError::TooLarge => "too-large",
            WireError::Overflow => "overflow",
            WireError::QueueFull => "queue-full",
            WireError::Deadline => "deadline",
            WireError::Panic => "panic",
            WireError::Shutdown => "shutdown",
        }
    }

    /// Parses a wire token as produced by [`WireError::code`].
    pub fn parse(s: &str) -> Option<WireError> {
        WireError::ALL.into_iter().find(|e| e.code() == s)
    }

    /// Whether an idempotent client should resubmit after this rejection:
    /// transient conditions (load, drain, a one-off panic) are retryable;
    /// verdicts about the job itself are not.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            WireError::QueueFull | WireError::Deadline | WireError::Panic | WireError::Shutdown
        )
    }

    /// Maps a structured PBM parse failure to its wire code: dimension
    /// overflow keeps its own code, every other malformation is `bad-frame`.
    pub fn from_pbm(e: &PbmError) -> WireError {
        match e {
            PbmError::DimsOverflow { .. } => WireError::Overflow,
            _ => WireError::BadFrame,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// A successful job reply: the labeled grid plus its summary numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOk {
    /// Image height.
    pub rows: usize,
    /// Image width.
    pub cols: usize,
    /// Connected components found.
    pub components: usize,
    /// Row-major per-pixel labels (background = `u32::MAX`), bit-identical
    /// to the fast engine's `LabelGrid`.
    pub labels: Vec<u32>,
}

/// One parsed server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The job was labeled.
    Ok(JobOk),
    /// The job was rejected with a typed code.
    Rejected {
        /// The typed rejection code.
        code: WireError,
        /// Human-readable detail (single line, diagnostic only).
        detail: String,
    },
}

/// A successful stream-mode job reply: per-component feature records
/// instead of a pixel grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStream {
    /// Image height.
    pub rows: usize,
    /// Image width.
    pub cols: usize,
    /// Connected components found (equals `records.len()`, double-checked
    /// against the `END` trailer on read).
    pub components: usize,
    /// One feature record per component, in retirement order.
    pub records: Vec<RetiredComponent>,
}

/// One parsed stream-mode server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamResponse {
    /// The job was labeled; features arrived as records.
    Ok(JobStream),
    /// The job was rejected with a typed code (same taxonomy as v1).
    Rejected {
        /// The typed rejection code.
        code: WireError,
        /// Human-readable detail (single line, diagnostic only).
        detail: String,
    },
}

/// Writes a `STREAM` response: header, one frame per record, the
/// zero-length terminator frame, and the `END` trailer. `scratch` is the
/// caller's reusable record-encoding buffer (cleared per record).
pub fn write_stream_ok<W: Write>(
    w: &mut W,
    rows: usize,
    cols: usize,
    records: &[RetiredComponent],
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    writeln!(w, "STREAM {rows} {cols}")?;
    for rec in records {
        scratch.clear();
        encode_record(rec, scratch);
        Frame::write(&mut *w, scratch)?;
    }
    Frame::write(&mut *w, b"")?;
    writeln!(w, "END {}", records.len())?;
    w.flush()
}

/// Reads one stream-mode server response. `Ok(None)` at a clean end of
/// stream. Record frames are bounded at [`RECORD_BYTES`] each and the
/// record count at `rows × cols` (a pixel can belong to at most one
/// component), so a hostile server cannot force unbounded allocation.
pub fn read_stream_response<R: BufRead>(r: &mut R) -> io::Result<Option<StreamResponse>> {
    let Some(line) = read_header_line(r)? else {
        return Ok(None);
    };
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{msg}: {line:?}"));
    let mut parts = line.splitn(3, ' ');
    match parts.next() {
        Some("STREAM") => {
            let mut num = |name: &str| -> io::Result<u64> {
                parts
                    .next()
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| bad(&format!("bad {name} in STREAM header")))
            };
            let rows = num("rows")?;
            let cols = num("cols")?;
            let max_records = rows
                .checked_mul(cols)
                .filter(|&px| px > 0)
                .ok_or_else(|| bad("absurd dims in STREAM header"))?;
            let mut records = Vec::new();
            let mut body = Vec::new();
            loop {
                let got = Frame::read_into(&mut *r, &mut body, RECORD_BYTES)
                    .map_err(frame_to_io)?
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream response truncated before its terminator",
                        )
                    })?;
                if got == 0 {
                    break;
                }
                let rec = decode_record(&body)
                    .ok_or_else(|| bad(&format!("record frame of {got} bytes")))?;
                if records.len() as u64 >= max_records {
                    return Err(bad("more records than pixels"));
                }
                records.push(rec);
            }
            let trailer =
                read_header_line(r)?.ok_or_else(|| bad("stream response truncated before END"))?;
            let count = trailer
                .strip_prefix("END ")
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad stream trailer: {trailer:?}"),
                    )
                })?;
            if count != records.len() {
                return Err(bad(&format!(
                    "END declares {count} records, {} arrived",
                    records.len()
                )));
            }
            Ok(Some(StreamResponse::Ok(JobStream {
                rows: rows as usize,
                cols: cols as usize,
                components: count,
                records,
            })))
        }
        Some("ERR") => {
            let code = parts
                .next()
                .and_then(WireError::parse)
                .ok_or_else(|| bad("unknown ERR code"))?;
            let detail = parts.next().unwrap_or("").to_string();
            Ok(Some(StreamResponse::Rejected { code, detail }))
        }
        _ => Err(bad("unrecognized stream response header")),
    }
}

/// Maps a framing failure on the record stream to the `io::Error` the
/// response readers speak.
fn frame_to_io(e: FrameError) -> io::Error {
    match e {
        FrameError::Io(inner) => inner,
        trunc @ FrameError::Truncated { .. } => {
            io::Error::new(io::ErrorKind::UnexpectedEof, trunc.to_string())
        }
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// Writes an `OK` response. `scratch` is the caller's reusable byte buffer
/// for the payload encoding (cleared here), so a warm connection thread
/// serializes without reallocating.
pub fn write_ok<W: Write>(
    w: &mut W,
    rows: usize,
    cols: usize,
    components: usize,
    labels: &[u32],
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    let payload_len = labels.len() * 4;
    writeln!(w, "OK {rows} {cols} {components} {payload_len}")?;
    scratch.clear();
    scratch.reserve(payload_len);
    for &label in labels {
        scratch.extend_from_slice(&label.to_le_bytes());
    }
    w.write_all(scratch)?;
    w.flush()
}

/// Writes an `ERR` response. Newlines in `detail` are flattened so the
/// record stays one line.
pub fn write_err<W: Write>(w: &mut W, code: WireError, detail: &str) -> io::Result<()> {
    let detail: String = detail
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    writeln!(w, "ERR {} {detail}", code.code())?;
    w.flush()
}

/// Reads one response header line (bytes up to `\n`, bounded). `Ok(None)`
/// at a clean end of stream before any byte.
pub(crate) fn read_header_line<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "response header truncated",
                    ))
                }
            }
            Ok(_) if b[0] == b'\n' => break,
            Ok(_) => {
                if line.len() >= MAX_HEADER_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response header too long",
                    ));
                }
                line.push(b[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response header is not UTF-8"))
}

/// Reads one server response. `Ok(None)` at a clean end of stream (the
/// server closed between responses). The payload is read in bounded chunks,
/// so a lying payload length costs only the bytes that actually arrive.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Option<Response>> {
    let Some(line) = read_header_line(r)? else {
        return Ok(None);
    };
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{msg}: {line:?}"));
    let mut parts = line.splitn(5, ' ');
    match parts.next() {
        Some("OK") => {
            let mut num = |name: &str| -> io::Result<u64> {
                parts
                    .next()
                    .and_then(|t| t.parse::<u64>().ok())
                    .ok_or_else(|| bad(&format!("bad {name} in OK header")))
            };
            let rows = num("rows")?;
            let cols = num("cols")?;
            let components = num("components")?;
            let payload_len = num("payload length")?;
            let pixels = rows
                .checked_mul(cols)
                .filter(|&px| px * 4 == payload_len && payload_len <= MAX_PAYLOAD_BYTES)
                .ok_or_else(|| bad("payload length disagrees with dims"))?;
            let mut labels = Vec::with_capacity(0);
            let mut chunk = [0u8; 64 * 1024];
            let mut remaining = payload_len as usize;
            let mut carry: Vec<u8> = Vec::with_capacity(4);
            labels.reserve(pixels.min(1 << 20) as usize);
            while remaining > 0 {
                let want = remaining.min(chunk.len());
                match r.read(&mut chunk[..want]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("response payload truncated: {remaining} bytes missing"),
                        ))
                    }
                    Ok(got) => {
                        remaining -= got;
                        let mut bytes = &chunk[..got];
                        // Finish a u32 straddling the previous chunk first.
                        while !carry.is_empty() && !bytes.is_empty() {
                            carry.push(bytes[0]);
                            bytes = &bytes[1..];
                            if carry.len() == 4 {
                                labels.push(u32::from_le_bytes([
                                    carry[0], carry[1], carry[2], carry[3],
                                ]));
                                carry.clear();
                            }
                        }
                        let whole = bytes.len() / 4 * 4;
                        for quad in bytes[..whole].chunks_exact(4) {
                            labels.push(u32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]));
                        }
                        carry.extend_from_slice(&bytes[whole..]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            debug_assert!(carry.is_empty(), "payload length is a multiple of 4");
            Ok(Some(Response::Ok(JobOk {
                rows: rows as usize,
                cols: cols as usize,
                components: components as usize,
                labels,
            })))
        }
        Some("ERR") => {
            let code = parts
                .next()
                .and_then(WireError::parse)
                .ok_or_else(|| bad("unknown ERR code"))?;
            let detail = parts.collect::<Vec<_>>().join(" ");
            Ok(Some(Response::Rejected { code, detail }))
        }
        _ => Err(bad("unrecognized response header")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_response_roundtrips() {
        let labels = vec![0u32, u32::MAX, 7, 0xdead_beef];
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_ok(&mut buf, 2, 2, 2, &labels, &mut scratch).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        match read_response(&mut r).unwrap().unwrap() {
            Response::Ok(ok) => {
                assert_eq!((ok.rows, ok.cols, ok.components), (2, 2, 2));
                assert_eq!(ok.labels, labels);
            }
            other => panic!("expected OK, got {other:?}"),
        }
        assert!(read_response(&mut r).unwrap().is_none(), "clean end");
    }

    #[test]
    fn err_response_roundtrips_every_code() {
        for code in WireError::ALL {
            let mut buf = Vec::new();
            write_err(&mut buf, code, "detail\nwith newline").unwrap();
            let mut r = io::BufReader::new(&buf[..]);
            match read_response(&mut r).unwrap().unwrap() {
                Response::Rejected { code: got, detail } => {
                    assert_eq!(got, code);
                    assert!(!detail.contains('\n'), "{detail:?}");
                }
                other => panic!("expected ERR, got {other:?}"),
            }
            assert_eq!(WireError::parse(code.code()), Some(code));
        }
        assert_eq!(WireError::parse("nope"), None);
    }

    #[test]
    fn lying_ok_header_is_rejected_without_allocation() {
        // Payload length that disagrees with dims.
        let mut r = io::BufReader::new(&b"OK 2 2 1 999\n"[..]);
        assert!(read_response(&mut r).is_err());
        // Dims product overflowing u64.
        let huge = format!("OK {} {} 1 16\n", u64::MAX, u64::MAX);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert!(read_response(&mut r).is_err());
        // Truncated payload costs only the bytes that arrived.
        let mut r = io::BufReader::new(&b"OK 2 2 1 16\n\x01\x00"[..]);
        let err = read_response(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_header_is_a_protocol_error() {
        let mut r = io::BufReader::new(&b"HELLO world\n"[..]);
        assert_eq!(
            read_response(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut r = io::BufReader::new(&b"ERR not-a-code x\n"[..]);
        assert!(read_response(&mut r).is_err());
    }

    #[test]
    fn retryable_codes_are_the_transient_ones() {
        assert!(WireError::QueueFull.retryable());
        assert!(WireError::Deadline.retryable());
        assert!(WireError::Shutdown.retryable());
        assert!(WireError::Panic.retryable());
        assert!(!WireError::BadFrame.retryable());
        assert!(!WireError::TooLarge.retryable());
        assert!(!WireError::Overflow.retryable());
    }

    #[test]
    fn hello_lines_roundtrip_both_modes() {
        for mode in [ResponseMode::Grid, ResponseMode::Stream] {
            let mut buf = Vec::new();
            write_hello(&mut buf, mode).unwrap();
            let line = std::str::from_utf8(&buf).unwrap().trim_end();
            assert_eq!(parse_hello(line), Some((PROTOCOL_VERSION, mode)));
            let mut r = io::BufReader::new(&buf[..]);
            assert_eq!(read_hello(&mut r).unwrap(), mode);
        }
        assert_eq!(parse_hello("HELLO slapd/2"), None);
        assert_eq!(parse_hello("HELLO slapd/x grid"), None);
        assert_eq!(parse_hello("HELLO other/2 grid"), None);
        assert_eq!(parse_hello("HELLO slapd/2 grid extra"), None);
        assert_eq!(parse_hello("OK 1 1 1 4"), None);
        assert_eq!(ResponseMode::parse("stream"), Some(ResponseMode::Stream));
        assert_eq!(ResponseMode::parse("nope"), None);
    }

    #[test]
    fn stream_response_roundtrips() {
        let records = vec![
            RetiredComponent {
                min_pos_col: 0,
                min_pos_row: 0,
                area: 3,
                min_row: 0,
                max_row: 1,
                min_col: 0,
                max_col: 1,
                sum_row: 1,
                sum_col: 1,
                perimeter: 8,
            },
            RetiredComponent {
                min_pos_col: 3,
                min_pos_row: 2,
                area: 1,
                min_row: 2,
                max_row: 2,
                min_col: 3,
                max_col: 3,
                sum_row: 2,
                sum_col: 3,
                perimeter: 4,
            },
        ];
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_stream_ok(&mut buf, 3, 4, &records, &mut scratch).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        match read_stream_response(&mut r).unwrap().unwrap() {
            StreamResponse::Ok(job) => {
                assert_eq!((job.rows, job.cols, job.components), (3, 4, 2));
                assert_eq!(job.records, records);
            }
            other => panic!("expected STREAM, got {other:?}"),
        }
        assert!(read_stream_response(&mut r).unwrap().is_none(), "clean end");
    }

    #[test]
    fn empty_stream_response_roundtrips() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_stream_ok(&mut buf, 5, 5, &[], &mut scratch).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        match read_stream_response(&mut r).unwrap().unwrap() {
            StreamResponse::Ok(job) => {
                assert_eq!(job.components, 0);
                assert!(job.records.is_empty());
            }
            other => panic!("expected STREAM, got {other:?}"),
        }
    }

    #[test]
    fn stream_errors_share_the_v1_taxonomy() {
        for code in WireError::ALL {
            let mut buf = Vec::new();
            write_err(&mut buf, code, "why it failed").unwrap();
            let mut r = io::BufReader::new(&buf[..]);
            match read_stream_response(&mut r).unwrap().unwrap() {
                StreamResponse::Rejected { code: got, detail } => {
                    assert_eq!(got, code);
                    assert_eq!(detail, "why it failed");
                }
                other => panic!("expected ERR, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_stream_responses_are_typed_errors() {
        // Truncated before the terminator frame.
        let mut r = io::BufReader::new(&b"STREAM 2 2\n"[..]);
        assert_eq!(
            read_stream_response(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // A record frame wider than RECORD_BYTES is an overflow, not an
        // allocation.
        let mut r = io::BufReader::new(&b"STREAM 2 2\n999999\nx"[..]);
        assert!(read_stream_response(&mut r).is_err());
        // A record frame of the wrong (short) length.
        let mut r = io::BufReader::new(&b"STREAM 2 2\n3\nabc0\nEND 1\n"[..]);
        assert!(read_stream_response(&mut r).is_err());
        // A lying END count.
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_stream_ok(&mut buf, 2, 2, &[], &mut scratch).unwrap();
        let lying = String::from_utf8(buf).unwrap().replace("END 0", "END 9");
        let mut r = io::BufReader::new(lying.as_bytes());
        assert!(read_stream_response(&mut r).is_err());
        // More records than pixels.
        let mut buf = Vec::new();
        let rec = RetiredComponent {
            min_pos_col: 0,
            min_pos_row: 0,
            area: 1,
            min_row: 0,
            max_row: 0,
            min_col: 0,
            max_col: 0,
            sum_row: 0,
            sum_col: 0,
            perimeter: 4,
        };
        write_stream_ok(&mut buf, 1, 1, &[rec, rec], &mut scratch).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert!(read_stream_response(&mut r).is_err());
    }

    #[test]
    fn pbm_taxonomy_maps_to_wire_codes() {
        assert_eq!(
            WireError::from_pbm(&PbmError::DimsOverflow { rows: 9, cols: 9 }),
            WireError::Overflow
        );
        assert_eq!(
            WireError::from_pbm(&PbmError::TruncatedHeader),
            WireError::BadFrame
        );
        assert_eq!(
            WireError::from_pbm(&PbmError::LyingLengthPrefix { declared: 1 }),
            WireError::BadFrame
        );
    }
}
